"""NF profiling (§3.2, Table 4).

The Placer estimates chain throughput from per-NF CPU cycle-cost *profiles*.
This package holds the default profile database (Table 4 values where the
paper gives them, calibrated values elsewhere), linear models for
size-dependent NFs (e.g. ACL cost grows with rule count), and a profiling
harness that reproduces the paper's 500-run stability measurements.
"""

from repro.profiles.models import LinearCostModel
from repro.profiles.defaults import (
    DEMUX_LB_CYCLES,
    NSH_ENCAP_DECAP_CYCLES,
    NFProfile,
    ProfileDatabase,
    default_profiles,
)
from repro.profiles.profiler import ProfileStats, Profiler

__all__ = [
    "LinearCostModel",
    "NFProfile",
    "ProfileDatabase",
    "default_profiles",
    "NSH_ENCAP_DECAP_CYCLES",
    "DEMUX_LB_CYCLES",
    "ProfileStats",
    "Profiler",
]
