"""Cost models for size/state-dependent NFs (§3.2).

"The cycle count of an NF may be a function of NF state or traffic. For
example, ACL processing may depend on table sizes; we profile cycle counts
for different sizes and use a linear model to predict the processing costs."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import ProfileError


@dataclass(frozen=True)
class LinearCostModel:
    """cycles(size) = base + slope * size, fit by least squares.

    ``reference_size`` is the state size the flat profile number corresponds
    to (e.g. Table 4's ACL row is at 1024 rules).
    """

    base: float
    slope: float
    reference_size: int

    def cycles(self, size: int) -> float:
        if size < 0:
            raise ProfileError(f"state size must be non-negative, got {size}")
        return self.base + self.slope * size

    @classmethod
    def fit(cls, points: Sequence[Tuple[int, float]], reference_size: int
            ) -> "LinearCostModel":
        """Least-squares fit over (size, cycles) profiling points."""
        if len(points) < 2:
            raise ProfileError("need at least two profiling points to fit")
        sizes = np.array([p[0] for p in points], dtype=float)
        costs = np.array([p[1] for p in points], dtype=float)
        design = np.vstack([np.ones_like(sizes), sizes]).T
        (base, slope), *_ = np.linalg.lstsq(design, costs, rcond=None)
        if slope < 0:
            # Profiling noise can produce a tiny negative slope; clamp —
            # NF cost never genuinely decreases with more state.
            slope = 0.0
            base = float(np.max(costs))
        return cls(base=float(base), slope=float(slope),
                   reference_size=reference_size)

    def profile_points(self, sizes: Sequence[int]) -> List[Tuple[int, float]]:
        """Evaluate the model at several sizes (for reporting/round-trips)."""
        return [(s, self.cycles(s)) for s in sizes]
