"""Profiling harness reproducing the paper's Table 4 methodology.

The paper profiles each NF over 500 runs under two worst-case workloads
(footnote 6) on same- and different-NUMA placements, and reports
mean/min/max cycles per packet. Our harness drives the *functional* BESS
modules (which account cycles per packet, including content-dependent
effects such as Dedup's) over generated traffic, and aggregates statistics.

A fast "model" mode samples the profile distribution directly — this is what
property tests and quick examples use; the Table 4 benchmark uses the
measured mode.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.exceptions import ProfileError
from repro.net.traffic import TrafficGenerator, long_lived_workload
from repro.profiles.defaults import ProfileDatabase, default_profiles


@dataclass(frozen=True)
class ProfileStats:
    """Aggregate of one profiling campaign (one Table 4 row)."""

    nf_class: str
    numa: str  # "same" | "diff"
    runs: int
    mean: float
    min: float
    max: float

    @property
    def worst_case_over_mean(self) -> float:
        """Paper: 'the worst-case cycle cost within 6.5% of the average'."""
        return (self.max - self.mean) / self.mean


class Profiler:
    """Runs profiling campaigns against NF implementations or models."""

    def __init__(self, database: Optional[ProfileDatabase] = None, seed: int = 11):
        self.database = database or default_profiles()
        self.seed = seed

    # -- model mode ---------------------------------------------------------

    def profile_model(self, nf_class: str, runs: int = 500,
                      numa_same: bool = False,
                      params: Optional[dict] = None) -> ProfileStats:
        """Sample the profile distribution (fast; no packets processed).

        Per-run costs are drawn from a clipped normal centred on the mean
        with the profile's bounded variance, matching the stability Table 4
        reports.
        """
        if runs < 2:
            raise ProfileError("need at least 2 runs for statistics")
        profile = self.database.get(nf_class)
        worst = profile.cost(params, numa_same=numa_same)
        mean = worst / (1.0 + profile.variance)
        rng = random.Random(f"{self.seed}/{nf_class}/{numa_same}")
        samples = []
        for _ in range(runs):
            value = rng.gauss(mean, mean * profile.variance / 2.5)
            samples.append(min(max(value, mean * (1 - profile.variance)), worst))
        return self._stats(nf_class, numa_same, samples)

    # -- measured mode --------------------------------------------------------

    def profile_measured(self, nf_class: str, runs: int = 50,
                         packets_per_run: int = 64,
                         numa_same: bool = False,
                         params: Optional[dict] = None,
                         workload: Optional[TrafficGenerator] = None
                         ) -> ProfileStats:
        """Drive the functional BESS module over generated traffic.

        Each run processes a batch of packets through a fresh module
        instance; the per-run cost is the mean of per-packet cycle
        accounting (which includes data-dependent effects).
        """
        from repro.bess.modules import make_nf_module  # lazy: avoid cycle

        if runs < 2:
            raise ProfileError("need at least 2 runs for statistics")
        workload = workload or long_lived_workload(seed=self.seed)
        per_run_means: List[float] = []
        for run in range(runs):
            module = make_nf_module(
                nf_class,
                params or {},
                database=self.database,
                numa_same=numa_same,
                seed=(self.seed, nf_class, run),
            )
            batch = list(workload.packets(packets_per_run))
            total_cycles = 0
            processed = 0
            for packet in batch:
                before = packet.metadata.cycles_consumed
                module.receive(packet)  # accounts cycles, then processes
                total_cycles += packet.metadata.cycles_consumed - before
                processed += 1
            if processed == 0:
                raise ProfileError(f"workload produced no packets for {nf_class}")
            per_run_means.append(total_cycles / processed)
        return self._stats(nf_class, numa_same, per_run_means)

    # -- table generation -----------------------------------------------------

    def table4(self, nf_specs: Optional[List] = None, runs: int = 500
               ) -> List[ProfileStats]:
        """Reproduce Table 4: (NF, params) x NUMA {same, diff} rows."""
        nf_specs = nf_specs or [
            ("Encrypt", None),
            ("Dedup", None),
            ("ACL", {"rules": 1024}),
            ("NAT", {"entries": 12000}),
        ]
        rows: List[ProfileStats] = []
        for nf_class, params in nf_specs:
            for numa_same in (True, False):
                rows.append(
                    self.profile_model(
                        nf_class, runs=runs, numa_same=numa_same, params=params
                    )
                )
        return rows

    @staticmethod
    def _stats(nf_class: str, numa_same: bool, samples: List[float]
               ) -> ProfileStats:
        return ProfileStats(
            nf_class=nf_class,
            numa="same" if numa_same else "diff",
            runs=len(samples),
            mean=sum(samples) / len(samples),
            min=min(samples),
            max=max(samples),
        )
