"""Default NF profile database.

Cycle costs come from the paper's Table 4 where published (Encrypt, Dedup,
ACL@1024, NAT@12000, each with NUMA-same and NUMA-different variants); the
remaining NFs carry calibrated values chosen to preserve the evaluation's
relative ordering (UrlFilter is HTML-payload-heavy, Tunnel/IPv4Fwd are
header-only, the SmartNIC runs ChaCha >10x faster than a server core, §5.3).

The Placer uses the **worst-case, NUMA-different** cost (§3.2 "profiles
assume worst-case cross-socket costs"), which is why measured throughput
usually lands slightly above prediction (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.exceptions import ProfileError
from repro.profiles.models import LinearCostModel

#: Meta-compiler coordination overheads measured in §5.3: NSH encap/decap
#: costs ~220 cycles at subgroup boundaries; steering packets to a replicated
#: subgroup costs ~180 cycles of load-balancing on the demux core.
NSH_ENCAP_DECAP_CYCLES = 220
DEMUX_LB_CYCLES = 180


@dataclass(frozen=True)
class NFProfile:
    """Per-NF cycle profile.

    ``cycles`` is the worst-case (max over profiling runs) NUMA-different
    cost at the reference state size; ``cycles_numa_same`` the same-socket
    variant. ``nic_cycles`` is the per-engine SmartNIC cost where an eBPF
    implementation exists. ``size_model`` predicts cost at other state sizes.
    ``variance`` bounds run-to-run wobble (Table 4 shows <6.5%).
    """

    nf_class: str
    cycles: float
    cycles_numa_same: Optional[float] = None
    mean_cycles: Optional[float] = None
    min_cycles: Optional[float] = None
    nic_cycles: Optional[float] = None
    size_model: Optional[LinearCostModel] = None
    size_param: Optional[str] = None  # which NF param carries the state size
    variance: float = 0.03
    from_paper: bool = False

    def cost(self, params: Optional[dict] = None, numa_same: bool = False) -> float:
        """Worst-case cycles/packet for an instance with ``params``."""
        base = self.cycles_numa_same if (numa_same and self.cycles_numa_same) else self.cycles
        if self.size_model and self.size_param and params:
            size = params.get(self.size_param)
            if size is not None:
                if isinstance(size, (list, tuple)):
                    size = len(size)
                scale = base / self.size_model.cycles(self.size_model.reference_size)
                return self.size_model.cycles(int(size)) * scale
        return base


def _acl_model() -> LinearCostModel:
    # Fit through profiling points bracketing Table 4's 1024-rule value
    # (linear scan ACL: ~3.4 cycles/rule over a ~580-cycle base).
    return LinearCostModel.fit(
        [(16, 634), (256, 1441), (1024, 4020), (4096, 14350)],
        reference_size=1024,
    )


def _nat_model() -> LinearCostModel:
    # Hash-table NAT: nearly flat in entry count (Table 4: 463-496 cycles at
    # 12k entries); slight growth from cache pressure.
    return LinearCostModel.fit(
        [(1000, 474), (12000, 496), (48000, 568)],
        reference_size=12000,
    )


def _table4(nf_class: str, mean_s: float, min_s: float, max_s: float,
            mean_d: float, min_d: float, max_d: float,
            size_model: Optional[LinearCostModel] = None,
            size_param: Optional[str] = None,
            nic_cycles: Optional[float] = None) -> NFProfile:
    """Build a profile from Table 4's (NUMA same, NUMA diff) rows."""
    return NFProfile(
        nf_class=nf_class,
        cycles=max_d,
        cycles_numa_same=max_s,
        mean_cycles=mean_d,
        min_cycles=min_d,
        nic_cycles=nic_cycles,
        size_model=size_model,
        size_param=size_param,
        variance=max(0.01, (max_d - mean_d) / mean_d),
        from_paper=True,
    )


def _calibrated(nf_class: str, cycles: float,
                nic_cycles: Optional[float] = None,
                variance: float = 0.03) -> NFProfile:
    return NFProfile(
        nf_class=nf_class,
        cycles=cycles,
        cycles_numa_same=cycles / 1.04,
        mean_cycles=cycles / 1.03,
        min_cycles=cycles / 1.06,
        nic_cycles=nic_cycles,
        variance=variance,
        from_paper=False,
    )


def _default_profile_list() -> Iterable[NFProfile]:
    return [
        # Table 4 rows (cycles/packet): mean/min/max for NUMA same and diff.
        _table4("Encrypt", 8593, 8405, 8777, 8950, 8755, 9123),
        _table4("Dedup", 30182, 29202, 30867, 31188, 29969, 33185),
        _table4("ACL", 3841, 3801, 4008, 4020, 3943, 4091,
                size_model=_acl_model(), size_param="rules",
                nic_cycles=5200),
        _table4("NAT", 463, 459, 477, 496, 491, 507,
                size_model=_nat_model(), size_param="entries"),
        # Calibrated profiles (see module docstring).
        _calibrated("Decrypt", 8890),
        _calibrated("FastEncrypt", 4350, nic_cycles=16000),
        _calibrated("Tunnel", 260, nic_cycles=450),
        _calibrated("Detunnel", 255, nic_cycles=450),
        _calibrated("IPv4Fwd", 310, nic_cycles=520),
        _calibrated("Limiter", 560),
        _calibrated("UrlFilter", 6480, variance=0.05),
        _calibrated("Monitor", 455),
        _calibrated("LB", 870, nic_cycles=1400),
        _calibrated("BPF", 705, nic_cycles=1150),
    ]


@dataclass
class ProfileDatabase:
    """Lookup of NF class -> profile; extensible, supports error injection.

    ``scale_error`` uniformly scales every server cost — the paper's §5.2
    sensitivity experiment reduces profiled costs by 1-10% to mimic
    profiling error; ``with_error(-0.05)`` reproduces a 5% under-estimate.
    """

    profiles: Dict[str, NFProfile] = field(default_factory=dict)
    scale_error: float = 0.0

    def register(self, profile: NFProfile) -> None:
        self.profiles[profile.nf_class] = profile

    def get(self, nf_class: str) -> NFProfile:
        profile = self.profiles.get(nf_class)
        if profile is None:
            raise ProfileError(
                f"no profile for NF {nf_class!r}; profiled NFs: "
                f"{sorted(self.profiles)}"
            )
        return profile

    def __contains__(self, nf_class: str) -> bool:
        return nf_class in self.profiles

    def server_cycles(self, nf_class: str, params: Optional[dict] = None,
                      numa_same: bool = False) -> float:
        """Worst-case server cycles/packet, with injected error applied."""
        cost = self.get(nf_class).cost(params, numa_same=numa_same)
        return cost * (1.0 + self.scale_error)

    def nic_cycles(self, nf_class: str) -> Optional[float]:
        """SmartNIC per-engine cycles/packet, or None if not offloadable."""
        return self.get(nf_class).nic_cycles

    def with_error(self, scale_error: float) -> "ProfileDatabase":
        """Copy with a relative error applied to all server costs."""
        if not -0.5 < scale_error < 0.5:
            raise ProfileError(f"implausible profile error {scale_error}")
        return ProfileDatabase(profiles=dict(self.profiles),
                               scale_error=scale_error)

    def uniform(self, cycles: float = 5000.0) -> "ProfileDatabase":
        """Every NF gets the same cost — the 'No Profiling' ablation (§5.3)."""
        flat = {}
        for name, profile in self.profiles.items():
            flat[name] = NFProfile(
                nf_class=name,
                cycles=cycles,
                cycles_numa_same=cycles,
                nic_cycles=cycles if profile.nic_cycles is not None else None,
            )
        return ProfileDatabase(profiles=flat)


def default_profiles() -> ProfileDatabase:
    """The library's default profile database."""
    db = ProfileDatabase()
    for profile in _default_profile_list():
        db.register(profile)
    return db
