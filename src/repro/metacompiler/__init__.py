"""The meta-compiler (§4): from NF-chain specs + placement to runnable code.

Given the Placer's placement configuration, the meta-compiler synthesizes
(a) NF chain routing — NSH service-path/index assignment plus per-platform
steering — and (b) code for every platform: a unified P4 program for the
PISA ToR, BESS pipeline scripts for servers, eBPF C for SmartNICs, and
OpenFlow rules (VLAN-encoded SPI/SI) for OF switches.
"""

from repro.metacompiler.nsh import ServicePath, assign_service_paths
from repro.metacompiler.routing import RoutingPlan, synthesize_routing
from repro.metacompiler.compiler import CompiledArtifacts, MetaCompiler
from repro.metacompiler.codestats import CodegenStats

__all__ = [
    "ServicePath",
    "assign_service_paths",
    "RoutingPlan",
    "synthesize_routing",
    "MetaCompiler",
    "CompiledArtifacts",
    "CodegenStats",
]
