"""Unified P4 program generation (§4.2, §A.2).

Takes the PISA compiler's unified pipeline (tables, dependencies, stage
allocation) plus the routing plan's steering entries and renders a single
P4 program: header declarations from the header library, the merged
parser, per-table declarations with actions, and a stage-ordered control
block. Per-NF *standalone* extended-P4 sources are also emitted (and can
be round-tripped through :mod:`repro.metacompiler.p4pre`).

Generated-line accounting distinguishes steering code (parser, steering/
encap/decap/split tables, control block) from NF tables — the §5.3
meta-compiler-benefit experiment reports both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.placement import ChainPlacement
from repro.exceptions import P4CompileError
from repro.metacompiler.routing import RoutingPlan
from repro.p4c.compiler import CompileResult, PISACompiler
from repro.p4c.ir import HEADER_LIBRARY, MatchType, P4Table, ParseTree


@dataclass
class P4GenResult:
    """Everything generated for the PISA switch."""

    program_text: str
    compile_result: CompileResult
    nf_sources: Dict[str, str] = field(default_factory=dict)
    steering_lines: int = 0
    nf_lines: int = 0

    @property
    def total_lines(self) -> int:
        return len(self.program_text.splitlines())


_STEERING_TABLE_MARKERS = (
    "lemur_steering", "_split", "_nsh_encap", "_nsh_decap", "_check",
)


def _is_steering_table(name: str) -> bool:
    return any(marker in name for marker in _STEERING_TABLE_MARKERS)


def generate_p4(
    chain_placements: Sequence[ChainPlacement],
    plan: RoutingPlan,
    compiler: PISACompiler,
) -> P4GenResult:
    """Compile + render the unified P4 program for the ToR."""
    pairs = [
        (cp.chain.graph, cp.switch_node_ids()) for cp in chain_placements
    ]
    result = compiler.compile(pairs)

    sections: List[Tuple[str, str]] = []  # (kind, text)
    sections.append(("steering", _render_headers(result.parser)))
    sections.append(("steering", _render_parser(result.parser)))

    for table in result.dag.tables:
        kind = "steering" if _is_steering_table(table.name) else "nf"
        sections.append((kind, _render_table(table)))

    sections.append(("steering", _render_steering_entries(plan)))
    sections.append(("steering", _render_control(result)))

    steering_lines = sum(
        len(text.splitlines()) for kind, text in sections if kind == "steering"
    )
    nf_lines = sum(
        len(text.splitlines()) for kind, text in sections if kind == "nf"
    )
    program_text = "\n".join(text for _kind, text in sections)

    nf_sources = _render_standalone_nfs(chain_placements)

    return P4GenResult(
        program_text=program_text,
        compile_result=result,
        nf_sources=nf_sources,
        steering_lines=steering_lines,
        nf_lines=nf_lines,
    )


# -- rendering helpers ---------------------------------------------------------

def _render_headers(parser: ParseTree) -> str:
    lines = ["// ---- headers (from Lemur's header library) ----"]
    for name in sorted(parser.headers):
        header = HEADER_LIBRARY.get(name)
        if header is None:
            continue
        lines.append(f"header_type {name}_t {{")
        lines.append("    fields {")
        for fname, bits in header.fields:
            lines.append(f"        {fname} : {bits};")
        lines.append("    }")
        lines.append("}")
        lines.append(f"header {name}_t {name};")
    lines.append("")
    return "\n".join(lines)


def _render_parser(parser: ParseTree) -> str:
    lines = ["// ---- unified parser (merged from NF-local parsers) ----"]
    by_state: Dict[str, List[Tuple[str, Optional[int], str]]] = {}
    for (frm, fieldname, value), to in sorted(
        parser.transitions.items(), key=lambda kv: str(kv[0])
    ):
        by_state.setdefault(frm, []).append((fieldname, value, to))
    for state in sorted(parser.headers):
        lines.append(f"parser parse_{state} {{")
        lines.append(f"    extract({state});")
        transitions = by_state.get(state, [])
        if transitions:
            select_field = transitions[0][0]
            lines.append(f"    return select(latest.{select_field}) {{")
            for _field, value, to in transitions:
                if value is None:
                    lines.append(f"        default : parse_{to};")
                else:
                    lines.append(f"        {value:#06x} : parse_{to};")
            lines.append("        default : ingress;")
            lines.append("    }")
        else:
            lines.append("    return ingress;")
        lines.append("}")
    lines.append("")
    return "\n".join(lines)


def _render_table(table: P4Table) -> str:
    match_kw = {
        MatchType.EXACT: "exact",
        MatchType.TERNARY: "ternary",
        MatchType.LPM: "lpm",
    }[table.match_type]
    lines = [f"// table {table.name} ({table.match_type.value}, "
             f"{table.size} entries)"]
    action = f"act_{table.name}"
    lines.append(f"action {action}() {{")
    for written in sorted(table.writes):
        lines.append(f"    modify_field({written}, /*runtime*/ 0);")
    lines.append("}")
    lines.append(f"table {table.name} {{")
    lines.append("    reads {")
    for read in sorted(table.reads):
        lines.append(f"        {read} : {match_kw};")
    lines.append("    }")
    lines.append(f"    actions {{ {action}; _drop; }}")
    lines.append(f"    size : {table.size};")
    lines.append("}")
    lines.append("")
    return "\n".join(lines)


def _render_steering_entries(plan: RoutingPlan) -> str:
    lines = ["// ---- ToR steering entries (NSH coordination, §4.1) ----"]
    for (spi, si), entry in sorted(plan.steering.items()):
        if entry.is_egress:
            lines.append(
                f"// (spi={spi}, si={si}) -> strip NSH, egress"
            )
            lines.append(
                f"table_add lemur_steering egress_action "
                f"{spi} {si} =>"
            )
        else:
            lines.append(
                f"table_add lemur_steering forward_action {spi} {si} => "
                f"{entry.next_device} {entry.next_spi} {entry.next_si}"
            )
    lines.append("")
    return "\n".join(lines)


def _render_control(result: CompileResult) -> str:
    lines = ["// ---- control: stage-ordered apply (compiler layout) ----",
             "control ingress {"]
    for stage_index, stage in enumerate(result.allocation.stages):
        lines.append(f"    // stage {stage_index + 1}")
        for table_name in stage:
            lines.append(f"    apply({table_name});")
    lines.append("}")
    lines.append("")
    return "\n".join(lines)


def _render_standalone_nfs(
    chain_placements: Sequence[ChainPlacement],
) -> Dict[str, str]:
    """Emit each placed P4 NF as a standalone extended-P4 source (§4.2)."""
    from repro.p4c.nflib import make_p4_nf

    sources: Dict[str, str] = {}
    for cp in chain_placements:
        for nid in sorted(cp.switch_node_ids()):
            node = cp.chain.graph.nodes[nid]
            instance = nid.replace(".", "_")
            p4nf = make_p4_nf(node.nf_class, instance, node.params)
            sources[instance] = render_standalone_nf(p4nf)
    return sources


def render_standalone_nf(p4nf) -> str:
    """Render one standalone NF in Lemur's extended-P4 syntax.

    The syntax mirrors §4.2: the developer lists headers from the library,
    describes the NF-local parser in a simple graph language, and writes
    tables; :mod:`repro.metacompiler.p4pre` parses it back.
    """
    lines = [f"@nf {p4nf.name}"]
    lines.append("headers { " + " ".join(sorted(p4nf.headers)) + " }")
    lines.append("parser {")
    for (frm, fieldname, value), to in sorted(
        p4nf.parse_tree.transitions.items(), key=lambda kv: str(kv[0])
    ):
        rendered = "default" if value is None else f"{value:#x}"
        lines.append(f"    {frm}.{fieldname} {rendered} -> {to}")
    lines.append("}")
    for table in p4nf.dag.tables:
        lines.append(f"table {table.name} {{")
        lines.append(f"    match_type: {table.match_type.value}")
        lines.append(f"    size: {table.size}")
        lines.append(f"    entry_bits: {table.entry_bits}")
        lines.append("    reads: " + " ".join(sorted(table.reads)))
        lines.append("    writes: " + " ".join(sorted(table.writes)))
        lines.append("}")
    if p4nf.dag.edges:
        lines.append("depends {")
        for a, b in sorted(p4nf.dag.edges):
            lines.append(f"    {a} -> {b}")
        lines.append("}")
    lines.append("control { " + " ".join(t.name for t in p4nf.dag.tables)
                 + " }")
    return "\n".join(lines) + "\n"
