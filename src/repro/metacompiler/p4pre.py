"""Pre-processor for Lemur's extended P4 syntax (§4.2).

NF developers write *standalone* P4 NFs: header usage, an NF-local parser
in a simple graph definition language, tables, and control flow. This
pre-processor parses that syntax back into the :class:`~repro.p4c.ir.P4NF`
IR the meta-compiler composes — the counterpart of
:func:`repro.metacompiler.p4gen.render_standalone_nf`, with which it
round-trips.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.exceptions import P4CompileError
from repro.p4c.ir import MatchType, P4NF, P4Table, ParseTree, TableDAG


def parse_standalone_nf(text: str) -> P4NF:
    """Parse one standalone extended-P4 NF source."""
    lines = [ln.rstrip() for ln in text.splitlines()]
    index = 0
    name: Optional[str] = None
    headers: set = set()
    parse_tree = ParseTree()
    tables: List[P4Table] = []
    edges: List[Tuple[str, str]] = []
    control: List[str] = []

    def err(message: str) -> P4CompileError:
        return P4CompileError(f"extended-P4 line {index + 1}: {message}")

    while index < len(lines):
        line = lines[index].strip()
        if not line or line.startswith("//") or line.startswith("#"):
            index += 1
            continue
        if line.startswith("@nf "):
            name = line[4:].strip()
            index += 1
        elif line.startswith("headers"):
            inner = _inline_block(line)
            headers = set(inner.split())
            index += 1
        elif line.startswith("parser"):
            index += 1
            while index < len(lines) and lines[index].strip() != "}":
                entry = lines[index].strip()
                if entry:
                    frm_field, value_s, arrow, to = _split_parser_line(entry)
                    if arrow != "->":
                        raise err(f"bad parser transition {entry!r}")
                    if "." not in frm_field:
                        raise err(f"bad select field {frm_field!r}")
                    frm, fieldname = frm_field.split(".", 1)
                    value = None if value_s == "default" else int(value_s, 0)
                    if frm not in parse_tree.headers:
                        parse_tree.headers.add(frm)
                    parse_tree.add_transition(frm, fieldname, value, to)
                index += 1
            index += 1  # closing brace
        elif line.startswith("table "):
            table_name = line[len("table "):].split("{")[0].strip()
            index += 1
            attrs: Dict[str, str] = {}
            while index < len(lines) and lines[index].strip() != "}":
                entry = lines[index].strip()
                if entry and ":" in entry:
                    key, _, value = entry.partition(":")
                    attrs[key.strip()] = value.strip()
                index += 1
            index += 1
            try:
                tables.append(
                    P4Table(
                        name=table_name,
                        match_type=MatchType(attrs.get("match_type", "exact")),
                        size=int(attrs.get("size", "64")),
                        entry_bits=int(attrs.get("entry_bits", "64")),
                        reads=frozenset(attrs.get("reads", "").split()),
                        writes=frozenset(attrs.get("writes", "").split()),
                    )
                )
            except ValueError as exc:
                raise err(f"bad table attribute: {exc}") from exc
        elif line.startswith("depends"):
            index += 1
            while index < len(lines) and lines[index].strip() != "}":
                entry = lines[index].strip()
                if entry:
                    parts = entry.split("->")
                    if len(parts) != 2:
                        raise err(f"bad dependency {entry!r}")
                    edges.append((parts[0].strip(), parts[1].strip()))
                index += 1
            index += 1
        elif line.startswith("control"):
            control = _inline_block(line).split()
            index += 1
        else:
            raise err(f"unrecognized statement {line!r}")

    if name is None:
        raise P4CompileError("extended-P4 source missing '@nf <name>'")
    if not tables:
        raise P4CompileError(f"NF {name!r} declares no tables")

    dag = TableDAG()
    for table in tables:
        dag.add_table(table)
    for a, b in edges:
        dag.add_edge(a, b)

    entry_tables = [control[0]] if control else [tables[0].name]
    exit_tables = [control[-1]] if control else [tables[-1].name]
    return P4NF(
        name=name,
        parse_tree=parse_tree,
        dag=dag,
        entry_tables=entry_tables,
        exit_tables=exit_tables,
        headers=headers or set(parse_tree.headers),
    )


def _inline_block(line: str) -> str:
    """Extract the ``...`` from ``keyword { ... }``."""
    open_idx = line.find("{")
    close_idx = line.rfind("}")
    if open_idx == -1 or close_idx == -1 or close_idx < open_idx:
        raise P4CompileError(f"expected inline block in {line!r}")
    return line[open_idx + 1:close_idx].strip()


def _split_parser_line(entry: str) -> Tuple[str, str, str, str]:
    parts = entry.split()
    if len(parts) != 4:
        raise P4CompileError(f"bad parser transition {entry!r}")
    return parts[0], parts[1], parts[2], parts[3]
