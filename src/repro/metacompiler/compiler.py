"""The MetaCompiler: placement → per-platform artifacts (§4).

``compile_placement`` takes a feasible :class:`Placement` and produces
everything needed to execute it: the NSH service paths, the routing plan,
the unified P4 program (PISA ToR) or OpenFlow rules (OF ToR), BESS
pipeline IRs per server, verified eBPF programs per SmartNIC, and the
code-generation statistics.

``compile_spec`` is the full front door: spec text → parse → place →
compile, mirroring Figure 1's flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chain.graph import NFChain, chains_from_spec
from repro.chain.slo import SLO
from repro.core.placement import Placement
from repro.exceptions import CompileError
from repro.hw.openflow import OpenFlowSwitchModel
from repro.hw.platform import Platform
from repro.hw.spec import topology_for
from repro.hw.topology import Topology
from repro.metacompiler.bessgen import BessScriptIR, generate_bess
from repro.metacompiler.codestats import CodegenStats, count_lines
from repro.metacompiler.ebpfgen import generate_ebpf
from repro.metacompiler.nsh import ServicePath, assign_service_paths
from repro.metacompiler.ofgen import generate_openflow, render_rules
from repro.metacompiler.p4gen import P4GenResult, generate_p4
from repro.metacompiler.routing import RoutingPlan, synthesize_routing
from repro.obs import get_registry
from repro.p4c.compiler import PISACompiler
from repro.profiles.defaults import ProfileDatabase, default_profiles


@dataclass
class CompiledArtifacts:
    """Everything the meta-compiler generated for one placement."""

    routing: RoutingPlan
    p4: Optional[P4GenResult] = None
    bess: Dict[str, BessScriptIR] = field(default_factory=dict)
    #: nic name -> (program, nf_specs)
    ebpf: Dict[str, tuple] = field(default_factory=dict)
    openflow_rules: List[tuple] = field(default_factory=list)
    openflow_text: str = ""
    stats: CodegenStats = field(default_factory=CodegenStats)

    @property
    def service_paths(self) -> List[ServicePath]:
        return self.routing.service_paths

    def device_fingerprints(self, switch_name: str) -> Dict[str, str]:
        """Digest of each device's generated program, keyed by device name.

        The digest covers exactly what a device executes — the unified P4
        program or rendered OpenFlow rules for the ToR, the rendered BESS
        script per server, the XDP source plus NF specs per SmartNIC — so
        two artifact sets that agree on a device's digest are
        behaviourally identical there. Delta redeploy
        (:meth:`repro.sim.runtime.DeployedRack.redeploy`) uses this to
        skip recompiling/reinstalling unchanged devices.
        """
        import hashlib

        def digest(*parts: str) -> str:
            h = hashlib.sha256()
            for part in parts:
                h.update(part.encode())
                h.update(b"\x00")
            return h.hexdigest()

        prints: Dict[str, str] = {}
        if self.p4 is not None:
            prints[switch_name] = digest("p4", self.p4.program_text)
        elif self.openflow_text:
            prints[switch_name] = digest("openflow", self.openflow_text)
        for server, script in self.bess.items():
            prints[server] = digest("bess", script.render())
        for nic, (program, nf_specs) in self.ebpf.items():
            prints[nic] = digest("ebpf", program.source, repr(nf_specs))
        return prints

    def write_to(self, directory) -> List[str]:
        """Write every generated artifact under ``directory``.

        Layout::

            p4/unified.p4            the ToR program
            p4/nfs/<instance>.p4     standalone extended-P4 NF sources
            bess/<server>.bess       per-server pipeline scripts
            ebpf/<nic>.c             XDP programs
            openflow/rules.txt       OF rule dump
            routing/paths.txt        SPI/SI service-path summary

        Returns the list of written paths (relative to ``directory``).
        """
        import pathlib

        root = pathlib.Path(directory)
        written: List[str] = []

        def emit(rel: str, text: str) -> None:
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
            written.append(rel)

        if self.p4 is not None:
            emit("p4/unified.p4", self.p4.program_text)
            for instance, source in sorted(self.p4.nf_sources.items()):
                emit(f"p4/nfs/{instance}.p4", source)
        for server, script in sorted(self.bess.items()):
            emit(f"bess/{server}.bess", script.render())
        for nic, (program, _specs) in sorted(self.ebpf.items()):
            emit(f"ebpf/{nic}.c", program.source)
        if self.openflow_text:
            emit("openflow/rules.txt", self.openflow_text)
        lines = [
            f"spi={p.spi} chain={p.chain_name} fraction={p.fraction:.4f} "
            + " | ".join(f"{h.device}[si={h.entry_si}]" for h in p.hops)
            for p in self.service_paths
        ]
        emit("routing/paths.txt", "\n".join(lines) + "\n")
        return written


def _manual_module_lines(script: BessScriptIR) -> int:
    """Source lines of the hand-written NF implementations a script uses."""
    import inspect

    from repro.bess.modules import MODULE_CLASSES

    classes = set()
    for sg in script.subgroups:
        for spec in sg.modules:
            cls = MODULE_CLASSES.get(spec.nf_class)
            if cls is not None:
                classes.add(cls)
    total = 0
    for cls in classes:
        total += count_lines(inspect.getsource(cls))
    return total


class MetaCompiler:
    """Generates and stitches cross-platform NF chain execution code."""

    def __init__(
        self,
        topology: Optional[Topology] = None,
        profiles: Optional[ProfileDatabase] = None,
    ):
        self.topology = topology or topology_for("paper-testbed").build()
        self.profiles = profiles or default_profiles()

    def compile_placement(self, placement: Placement) -> CompiledArtifacts:
        """Generate all per-platform code for a placement.

        Per-platform codegen wall-clock lands in the observability
        registry under ``metacompiler.codegen.seconds{platform=...}``,
        generated-line totals under ``metacompiler.codegen.lines``, and
        PISA stage usage under the ``metacompiler.p4.stages`` histogram.
        """
        if not placement.feasible:
            raise CompileError(
                "cannot compile an infeasible placement: "
                f"{placement.infeasible_reason}"
            )
        registry = get_registry()
        chain_placements = placement.chains
        with registry.timer("metacompiler.codegen.seconds",
                            platform="routing"):
            paths = assign_service_paths(chain_placements)
            plan = synthesize_routing(
                chain_placements, paths, self.topology.switch.name
            )
        registry.counter("metacompiler.service_paths").inc(
            len(plan.service_paths)
        )
        artifacts = CompiledArtifacts(routing=plan)
        stats = artifacts.stats

        switch = self.topology.switch
        if switch.platform is Platform.PISA:
            with registry.timer("metacompiler.codegen.seconds",
                                platform="p4"):
                compiler = PISACompiler(switch)  # type: ignore[arg-type]
                artifacts.p4 = generate_p4(chain_placements, plan, compiler)
            stats.auto_steering_lines += artifacts.p4.steering_lines
            stats.auto_nf_glue_lines += artifacts.p4.nf_lines
            stats.add_platform("p4", artifacts.p4.total_lines)
            for source in artifacts.p4.nf_sources.values():
                stats.manual_nf_lines += count_lines(source)
            registry.histogram("metacompiler.p4.stages").observe(
                artifacts.p4.compile_result.stage_count
            )
        elif isinstance(switch, OpenFlowSwitchModel):
            with registry.timer("metacompiler.codegen.seconds",
                                platform="openflow"):
                artifacts.openflow_rules = generate_openflow(
                    switch, chain_placements, plan
                )
                artifacts.openflow_text = render_rules(
                    artifacts.openflow_rules
                )
            lines = count_lines(artifacts.openflow_text)
            stats.auto_steering_lines += lines
            stats.add_platform("openflow", lines)
            registry.counter("metacompiler.openflow.rules").inc(
                len(artifacts.openflow_rules)
            )

        with registry.timer("metacompiler.codegen.seconds", platform="bess"):
            for server in self.topology.servers:
                if server.name in self.topology.failed_devices:
                    continue
                has_work = any(
                    sg.server == server.name
                    for cp in chain_placements for sg in cp.subgroups
                )
                if not has_work:
                    continue
                script = generate_bess(server.name, chain_placements, plan)
                artifacts.bess[server.name] = script
                text = script.render()
                lines = count_lines(text)
                stats.auto_steering_lines += lines
                stats.add_platform("bess", lines)
                # the NF module implementations themselves are manual code
                # (the paper's 1396 lines of C++ BESS modules): count each
                # placed NF class's implementation source once
                stats.manual_nf_lines += _manual_module_lines(script)

        with registry.timer("metacompiler.codegen.seconds", platform="ebpf"):
            for nic in self.topology.smartnics:
                if not plan.entries_for(nic.name):
                    continue
                program, nf_specs = generate_ebpf(
                    nic.name, chain_placements, plan
                )
                artifacts.ebpf[nic.name] = (program, nf_specs)
                lines = count_lines(program.source)
                stats.auto_steering_lines += count_lines(
                    program.sections[0].source
                )
                stats.auto_nf_glue_lines += lines - count_lines(
                    program.sections[0].source
                )
                stats.add_platform("ebpf", lines)

        for platform, lines in stats.per_platform.items():
            registry.counter(
                "metacompiler.codegen.lines", platform=platform
            ).inc(lines)
        return artifacts

    def compile_spec(
        self,
        spec_text: str,
        slos: Optional[Sequence[SLO]] = None,
        strategy: str = "lemur",
    ) -> Tuple[Placement, CompiledArtifacts]:
        """Figure 1 end to end: spec → Placer → meta-compiler."""
        from repro.core.placer import Placer, PlacerConfig, PlacementRequest

        chains = chains_from_spec(spec_text, slos)
        placer = Placer(
            topology=self.topology,
            profiles=self.profiles,
            config=PlacerConfig(strategy=strategy),
        )
        placement = placer.solve(PlacementRequest(chains=chains)).placement
        if not placement.feasible:
            raise CompileError(
                f"Placer found no feasible placement: "
                f"{placement.infeasible_reason}"
            )
        return placement, self.compile_placement(placement)
