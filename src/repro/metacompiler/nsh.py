"""NSH service-path assignment (§4.1).

Lemur tags packets with a Network Service Header: the service path index
(SPI) names a linear NF chain and the service index (SI) sequences NFs
within it. "The meta-compiler's first step, after placement, is to assign
SPI and SI values to nodes in the NF-graph." Branched chains decompose
into one service path per linearized route; shared prefixes receive the
same SI values by construction, and the branch decision selects the SPI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chain.graph import NFChain
from repro.core.placement import ChainPlacement, NodeAssignment
from repro.exceptions import CompileError

#: SI starts high and decrements along the path (RFC 8300 convention).
INITIAL_SI = 255


@dataclass
class Hop:
    """A maximal run of consecutive same-device NFs along a service path."""

    device: str
    platform: str
    node_ids: List[str] = field(default_factory=list)
    entry_si: int = INITIAL_SI


@dataclass
class ServicePath:
    """One linearized route of a chain with its SPI and hop structure."""

    spi: int
    chain_name: str
    node_ids: List[str] = field(default_factory=list)
    si_of: Dict[str, int] = field(default_factory=dict)
    hops: List[Hop] = field(default_factory=list)
    fraction: float = 1.0

    def hop_after(self, hop_index: int) -> Optional[Hop]:
        if hop_index + 1 < len(self.hops):
            return self.hops[hop_index + 1]
        return None


def assign_service_paths(
    chain_placements: Sequence[ChainPlacement],
    first_spi: int = 1,
) -> List[ServicePath]:
    """Assign SPI/SI across all chains' linearized routes.

    SPIs are globally unique; SI for the node at path position ``k`` is
    ``INITIAL_SI − k``, so shared branch prefixes agree on SI values
    across their sibling paths.
    """
    paths: List[ServicePath] = []
    spi = first_spi
    for cp in chain_placements:
        for linear in cp.chain.graph.linearize():
            if len(linear.node_ids) > INITIAL_SI:
                raise CompileError(
                    f"chain {cp.name}: path of {len(linear.node_ids)} NFs "
                    f"exceeds the 8-bit service index space"
                )
            path = ServicePath(
                spi=spi,
                chain_name=cp.name,
                node_ids=list(linear.node_ids),
                fraction=linear.fraction,
            )
            spi += 1
            for index, nid in enumerate(linear.node_ids):
                path.si_of[nid] = INITIAL_SI - index
            sg_of = {
                nid: sg.sg_id
                for sg in cp.subgroups for nid in sg.node_ids
            }
            path.hops = _hops_for(path, cp.assignment, sg_of)
            paths.append(path)
    return paths


def _hops_for(
    path: ServicePath,
    assignment: Dict[str, NodeAssignment],
    sg_of: Dict[str, str],
) -> List[Hop]:
    """Group consecutive same-device nodes into hops.

    Server hops additionally split at run-to-completion subgroup
    boundaries: a path through a merge node stays on the server but enters
    a new subgroup, which needs its own demux entry (its own SI).
    """
    hops: List[Hop] = []
    last_sg: Optional[str] = None
    for nid in path.node_ids:
        assign = assignment[nid]
        sg_id = sg_of.get(nid)
        same_hop = (
            hops
            and hops[-1].device == assign.device
            and (sg_id is None or sg_id == last_sg)
        )
        if same_hop:
            hops[-1].node_ids.append(nid)
        else:
            hops.append(
                Hop(
                    device=assign.device,
                    platform=assign.platform.value,
                    node_ids=[nid],
                    entry_si=path.si_of[nid],
                )
            )
        last_sg = sg_id
    return hops
