"""OpenFlow rule generation (§5.3).

For chains with NFs offloaded to an OpenFlow switch, generate flow rules
over the fixed pipeline. SPI/SI travel in the VLAN vid (OF switches lack
NSH); each hop's rules match the vid, apply the NF's table action, rewrite
the vid toward the next hop, and output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.placement import ChainPlacement
from repro.exceptions import CompileError, OpenFlowError
from repro.hw.openflow import OpenFlowSwitchModel
from repro.hw.platform import Platform
from repro.metacompiler.nsh import INITIAL_SI
from repro.metacompiler.routing import RoutingPlan
from repro.openflow.switch import encode_vid
from repro.openflow.tables import FlowRule

#: conventional port numbering in the generated rules
PORT_EGRESS = 1
PORT_SERVER = 2


def generate_openflow(
    switch: OpenFlowSwitchModel,
    chain_placements: Sequence[ChainPlacement],
    plan: RoutingPlan,
) -> List[Tuple[int, FlowRule]]:
    """Generate (table_id, rule) pairs realizing the routing plan.

    Rules fall into two families: *NF rules* executing offloaded NFs at
    their fixed table, and *steering rules* in the VLAN table that
    retag/forward packets between hops (the OF analogue of the PISA
    steering table).
    """
    rules: List[Tuple[int, FlowRule]] = []
    vlan_table = switch.tables[0]

    for path in plan.service_paths:
        cp = _placement_for(chain_placements, path.chain_name)
        for hop_index, hop in enumerate(path.hops):
            if hop.device != switch.name:
                continue
            # SI rides the low vid bits as a path *position* (255 - SI),
            # which fits the 6-bit slice for paths of up to 64 NFs.
            vid = encode_vid(path.spi, INITIAL_SI - hop.entry_si)
            nxt = path.hop_after(hop_index)
            # NF rules at their fixed tables, chained by goto order.
            last_table = None
            for nid in hop.node_ids:
                node = cp.chain.graph.nodes[nid]
                table = switch.table_for_nf(node.nf_class)
                if table is None:
                    raise OpenFlowError(
                        f"{node.nf_class} has no OpenFlow table"
                    )
                if last_table is not None and table.index < last_table:
                    raise OpenFlowError(
                        f"chain {cp.name}: NF order violates the fixed "
                        f"pipeline"
                    )
                last_table = table.index
                rules.append((
                    table.index,
                    FlowRule(
                        priority=200,
                        match={"vlan_vid": vid},
                        actions=_nf_actions(node.nf_class, node.params),
                    ),
                ))
            # steering rule: retag to the next hop and output.
            if nxt is None:
                actions = [("pop_vlan",), ("output", PORT_EGRESS)]
            else:
                next_vid = encode_vid(path.spi, INITIAL_SI - nxt.entry_si)
                actions = [("set_vlan", next_vid), ("output", PORT_SERVER)]
            rules.append((
                vlan_table.index,
                FlowRule(
                    priority=100,
                    match={"vlan_vid": vid},
                    actions=actions,
                ),
            ))
    return rules


def _nf_actions(nf_class: str, params: dict) -> List[tuple]:
    """Fixed-pipeline action encoding per offloadable NF (Table 3 OF dots)."""
    if nf_class == "ACL":
        rules = params.get("rules") or []
        drop = any(r.get("drop") for r in rules if isinstance(r, dict))
        return [("drop",)] if drop and not _has_permit(rules) else [("count",)]
    if nf_class == "Monitor":
        return [("count",)]
    if nf_class == "Tunnel":
        return [("push_vlan", int(params.get("vid", 100)))]
    if nf_class == "Detunnel":
        return [("pop_vlan",)]
    if nf_class == "IPv4Fwd":
        return [("count",)]  # forwarding decision rides the steering rule
    raise CompileError(f"NF {nf_class!r} cannot be encoded as OF actions")


def _has_permit(rules) -> bool:
    return any(not r.get("drop", False) for r in rules if isinstance(r, dict))


def render_rules(rules: Sequence[Tuple[int, FlowRule]]) -> str:
    """ovs-ofctl-style dump of the generated rule set."""
    return "\n".join(rule.render(table_id) for table_id, rule in rules) + "\n"


def _placement_for(chain_placements: Sequence[ChainPlacement], name: str
                   ) -> ChainPlacement:
    for cp in chain_placements:
        if cp.name == name:
            return cp
    raise CompileError(f"no placement for chain {name!r}")
