"""Auto-generated-code accounting (§5.3 "Meta-compiler Benefits").

The paper quantifies the meta-compiler's benefit by counting auto-
generated lines: "for NF chains {1, 2, 3, 4} more than a third of the
total code (about 820 out of 1700 lines) is auto-generated, with most of
the auto-generated code (600 lines) providing packet steering."

We count the same way: the *manual* side is the standalone NF sources a
developer writes (the per-NF extended-P4 files plus per-platform NF module
configuration); the *auto* side is everything the meta-compiler emits
(steering/encap/parser/control P4, BESS demux + scheduler scripts, eBPF
dispatchers, OF steering rules).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CodegenStats:
    """Line counts split by origin and purpose."""

    manual_nf_lines: int = 0
    auto_nf_glue_lines: int = 0       # generated per-NF table plumbing
    auto_steering_lines: int = 0      # routing/demux/encap/scheduler code
    per_platform: Dict[str, int] = field(default_factory=dict)

    @property
    def auto_lines(self) -> int:
        return self.auto_nf_glue_lines + self.auto_steering_lines

    @property
    def total_lines(self) -> int:
        return self.manual_nf_lines + self.auto_lines

    @property
    def auto_fraction(self) -> float:
        """Fraction of all code that the meta-compiler generated."""
        if self.total_lines == 0:
            return 0.0
        return self.auto_lines / self.total_lines

    @property
    def steering_fraction_of_auto(self) -> float:
        """How much of the generated code is packet steering."""
        if self.auto_lines == 0:
            return 0.0
        return self.auto_steering_lines / self.auto_lines

    def add_platform(self, platform: str, lines: int) -> None:
        self.per_platform[platform] = (
            self.per_platform.get(platform, 0) + lines
        )

    def report(self) -> str:
        return (
            f"code: {self.total_lines} lines total, "
            f"{self.auto_lines} auto-generated "
            f"({self.auto_fraction:.0%}); steering is "
            f"{self.steering_fraction_of_auto:.0%} of generated code; "
            f"per platform: {dict(sorted(self.per_platform.items()))}"
        )


def count_lines(text: str) -> int:
    """Non-empty, non-comment-only line count."""
    count = 0
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith(("#", "//", "/*", "*")):
            continue
        count += 1
    return count
