"""Cross-platform routing synthesis (§4.1).

Given service paths, produce the routing state every platform needs:

* the ToR's steering entries — for each (SPI, SI) arriving back at the
  switch, where does the packet go next?
* per-server demux registrations — which (SPI, SI) values map to which
  run-to-completion subgroup;
* encap directives — the (SPI, SI) a platform must write before handing
  the packet onward.

The ToR coordinates chain execution: all traffic enters and exits through
it, and bounces return to it between hops (the architectural novelty of
§1/§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.placement import ChainPlacement
from repro.exceptions import CompileError
from repro.metacompiler.nsh import Hop, ServicePath


@dataclass(frozen=True)
class SteeringEntry:
    """One ToR steering decision: packets tagged (spi, si) → next hop."""

    spi: int
    si: int
    next_device: str
    next_platform: str
    next_spi: int
    next_si: int
    is_egress: bool = False


@dataclass
class DemuxEntry:
    """Server-side demux: (spi, si) selects a subgroup (and its node run)."""

    spi: int
    si: int
    chain_name: str
    node_ids: Tuple[str, ...]
    next_spi: int
    next_si: int
    exits_isp: bool = False


@dataclass
class RoutingPlan:
    """All synthesized routing state, keyed by device."""

    service_paths: List[ServicePath] = field(default_factory=list)
    #: ToR steering: (spi, si) -> SteeringEntry
    steering: Dict[Tuple[int, int], SteeringEntry] = field(default_factory=dict)
    #: per-device demux entries (servers and SmartNICs)
    demux: Dict[str, List[DemuxEntry]] = field(default_factory=dict)
    #: chain name -> entry (spi, si) per linearized route, with fraction
    chain_entries: Dict[str, List[Tuple[int, int, float]]] = field(
        default_factory=dict
    )

    def entries_for(self, device: str) -> List[DemuxEntry]:
        return self.demux.get(device, [])


def synthesize_routing(
    chain_placements: Sequence[ChainPlacement],
    service_paths: Sequence[ServicePath],
    switch_name: str,
) -> RoutingPlan:
    """Build the routing plan from assigned service paths."""
    plan = RoutingPlan(service_paths=list(service_paths))
    by_chain: Dict[str, ChainPlacement] = {
        cp.name: cp for cp in chain_placements
    }

    for path in service_paths:
        cp = by_chain.get(path.chain_name)
        if cp is None:
            raise CompileError(f"no placement for chain {path.chain_name!r}")
        plan.chain_entries.setdefault(path.chain_name, []).append(
            (path.spi, path.si_of[path.node_ids[0]], path.fraction)
        )
        for hop_index, hop in enumerate(path.hops):
            nxt = path.hop_after(hop_index)
            next_device = nxt.device if nxt else switch_name
            next_platform = nxt.platform if nxt else "egress"
            next_spi = path.spi
            next_si = nxt.entry_si if nxt else 0

            if hop.device == switch_name:
                # switch hop: after its NFs run, steer to the next hop
                entry = SteeringEntry(
                    spi=path.spi,
                    si=hop.entry_si,
                    next_device=next_device,
                    next_platform=next_platform,
                    next_spi=next_spi,
                    next_si=next_si,
                    is_egress=nxt is None,
                )
                _add_steering(plan, entry)
            else:
                # off-switch hop: the device's demux consumes (spi, si);
                # its encap writes the next hop's values before returning
                # to the ToR.
                plan.demux.setdefault(hop.device, []).append(
                    DemuxEntry(
                        spi=path.spi,
                        si=hop.entry_si,
                        chain_name=path.chain_name,
                        node_ids=tuple(hop.node_ids),
                        next_spi=next_spi,
                        next_si=next_si,
                        exits_isp=nxt is None,
                    )
                )
                if nxt is None:
                    # returning traffic with SI 0 egresses at the ToR
                    _add_steering(
                        plan,
                        SteeringEntry(
                            spi=path.spi,
                            si=0,
                            next_device=switch_name,
                            next_platform="egress",
                            next_spi=path.spi,
                            next_si=0,
                            is_egress=True,
                        ),
                    )
    _dedupe_demux(plan)
    return plan


def _add_steering(plan: RoutingPlan, entry: SteeringEntry) -> None:
    key = (entry.spi, entry.si)
    existing = plan.steering.get(key)
    if existing is not None and existing != entry:
        raise CompileError(
            f"conflicting steering entries for (spi={entry.spi}, "
            f"si={entry.si}): {existing} vs {entry}"
        )
    plan.steering[key] = entry


def _dedupe_demux(plan: RoutingPlan) -> None:
    """Drop duplicate demux rows (shared path prefixes emit copies)."""
    for device, entries in plan.demux.items():
        seen = {}
        unique: List[DemuxEntry] = []
        for entry in entries:
            key = (entry.spi, entry.si)
            if key in seen:
                prior = seen[key]
                if (prior.node_ids, prior.next_spi, prior.next_si) != (
                    entry.node_ids, entry.next_spi, entry.next_si,
                ):
                    raise CompileError(
                        f"{device}: conflicting demux entries for {key}"
                    )
                continue
            seen[key] = entry
            unique.append(entry)
        plan.demux[device] = unique
