"""eBPF/C code generation for SmartNIC-placed NFs (§A.3).

"The NFs are programmed in C language and then compiled to the eBPF
target. [...] We solved these challenges by optimizing the code for 64-bit
implementation, using loop unrolling to avoid for (back-edge), and
inlining all function calls."

The generator emits one XDP program per SmartNIC: a dispatcher section
that demuxes on the NSH (SPI, SI) plus one section per offloaded NF. Loop
unrolling and call inlining are performed symbolically (the instruction
estimate grows accordingly), and the result must pass the offload
verifier before the placement is accepted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.placement import ChainPlacement
from repro.ebpf.program import EBPFProgram, EBPFSection
from repro.exceptions import CompileError
from repro.hw.platform import Platform
from repro.metacompiler.routing import RoutingPlan


@dataclass(frozen=True)
class _NFCodeModel:
    """Instruction/stack model of one NF's generated eBPF body."""

    base_instructions: int
    stack_bytes: int
    loops_unrolled: int = 0
    unroll_factor: int = 1
    calls_inlined: int = 0

    @property
    def instructions(self) -> int:
        return self.base_instructions * max(1, self.unroll_factor)


#: Calibrated per-NF code models. FastEncrypt unrolls the ChaCha block
#: rounds (the dominant, near-limit program); table-driven NFs use maps.
_CODE_MODELS: Dict[str, _NFCodeModel] = {
    "FastEncrypt": _NFCodeModel(
        base_instructions=180, stack_bytes=320,
        loops_unrolled=2, unroll_factor=20, calls_inlined=3,
    ),
    "ACL": _NFCodeModel(base_instructions=520, stack_bytes=96,
                        calls_inlined=1),
    "LB": _NFCodeModel(base_instructions=460, stack_bytes=80,
                       calls_inlined=2),
    "BPF": _NFCodeModel(base_instructions=380, stack_bytes=64),
    "Tunnel": _NFCodeModel(base_instructions=150, stack_bytes=32),
    "Detunnel": _NFCodeModel(base_instructions=140, stack_bytes=32),
    "IPv4Fwd": _NFCodeModel(base_instructions=290, stack_bytes=48,
                            calls_inlined=1),
}

_DISPATCHER_INSTRUCTIONS = 120
_DISPATCHER_STACK = 48


def generate_ebpf(
    nic_name: str,
    chain_placements: Sequence[ChainPlacement],
    plan: RoutingPlan,
) -> Tuple[EBPFProgram, List[Tuple[str, dict]]]:
    """Generate (and structurally describe) the NIC's XDP program.

    Returns the program plus the (nf_class, params) spec list the runtime
    uses to bind functional behaviour to sections.
    """
    entries = plan.entries_for(nic_name)
    node_info: Dict[str, Tuple[str, dict]] = {}
    for cp in chain_placements:
        for nid, assign in cp.assignment.items():
            if assign.platform is Platform.SMARTNIC and assign.device == nic_name:
                node = cp.chain.graph.nodes[nid]
                node_info[nid] = (node.nf_class, dict(node.params))

    program = EBPFProgram(name=f"{nic_name}_xdp")
    program.sections.append(
        EBPFSection(
            name="dispatcher",
            nf_class=None,
            instructions=_DISPATCHER_INSTRUCTIONS
            + 6 * max(0, len(entries) - 1),
            stack_bytes=_DISPATCHER_STACK,
            source=_dispatcher_source(nic_name, entries),
        )
    )

    nf_specs: List[Tuple[str, dict]] = []
    section_of_node: Dict[Tuple[str, ...], int] = {}
    for entry in entries:
        key = tuple(entry.node_ids)
        if key in section_of_node:
            continue
        if len(entry.node_ids) != 1:
            raise CompileError(
                f"{nic_name}: eBPF hops host exactly one NF, got "
                f"{entry.node_ids}"
            )
        nid = entry.node_ids[0]
        if nid not in node_info:
            raise CompileError(
                f"{nic_name}: demux entry references node {nid} not placed "
                f"on this NIC"
            )
        nf_class, params = node_info[nid]
        model = _CODE_MODELS.get(nf_class)
        if model is None:
            raise CompileError(
                f"no eBPF implementation for NF {nf_class!r} "
                f"(library: {sorted(_CODE_MODELS)})"
            )
        section_index = len(nf_specs)
        program.sections.append(
            EBPFSection(
                name=f"nf_{section_index}_{nf_class.lower()}",
                nf_class=nf_class,
                instructions=model.instructions,
                stack_bytes=model.stack_bytes,
                source=_nf_source(nf_class, model),
            )
        )
        program.unrolled_loops += model.loops_unrolled
        program.inlined_calls += model.calls_inlined
        nf_specs.append((nf_class, params))
        section_of_node[key] = section_index

    for entry in entries:
        section_index = section_of_node[tuple(entry.node_ids)]
        program.demux[(entry.spi, entry.si)] = (
            section_index, entry.next_spi, entry.next_si, entry.exits_isp,
        )
    return program, nf_specs


def _dispatcher_source(nic_name: str, entries) -> str:
    lines = [
        f"/* auto-generated XDP dispatcher for {nic_name} */",
        "SEC(\"xdp\")",
        "int lemur_xdp(struct xdp_md *ctx) {",
        "    struct nsh_hdr *nsh = parse_nsh(ctx);",
        "    if (!nsh) return XDP_DROP;",
        "    __u32 key = (nsh->spi << 8) | nsh->si;",
        "    switch (key) {",
    ]
    for entry in entries:
        key = (entry.spi << 8) | entry.si
        lines.append(
            f"    case {key:#x}: /* -> nf section, then "
            f"spi={entry.next_spi} si={entry.next_si} */"
        )
        lines.append(f"        return run_nf_{entry.spi}_{entry.si}(ctx, nsh);")
    lines.append("    default: return XDP_DROP;")
    lines.append("    }")
    lines.append("}")
    return "\n".join(lines)


def _nf_source(nf_class: str, model: _NFCodeModel) -> str:
    lines = [
        f"/* {nf_class}: 64-bit optimized, {model.loops_unrolled} loop(s) "
        f"unrolled x{model.unroll_factor}, {model.calls_inlined} call(s) "
        f"inlined */",
        f"static __always_inline int nf_{nf_class.lower()}"
        "(struct xdp_md *ctx, struct nsh_hdr *nsh) {",
    ]
    if model.unroll_factor > 1:
        for round_index in range(model.unroll_factor):
            lines.append(
                f"    block_round_{round_index}(state); "
                "/* unrolled: no back-edge */"
            )
    else:
        lines.append("    /* map lookup + header rewrite */")
        lines.append(f"    struct entry *e = bpf_map_lookup_elem("
                     f"&{nf_class.lower()}_map, &key);")
        lines.append("    if (!e) return XDP_DROP;")
    lines.append("    return XDP_TX;")
    lines.append("}")
    return "\n".join(lines)
