"""Command-line interface: ``python -m repro`` / ``lemur-repro``.

Subcommands mirror an operator's workflow:

* ``place``   — place a spec file's chains and print the placement;
* ``compile`` — place + meta-compile, dumping chosen artifacts;
* ``trace``   — run packets through the deployed rack and show NF trails;
* ``stats``   — trace a placement and dump the observability metrics:
  placer stage timings, codegen times, per-device packet/drop/cycle
  counters, and the per-hop latency breakdown;
* ``traffic`` — replay high-volume synthesized flows through the rack in
  batches and compare delivered rates against the LP's assignments;
* ``chaos``   — replay traffic under a seeded fault-injection timeline
  with the SLO guard reacting (graceful degradation, then auto-replan)
  and print the per-phase SLO compliance table;
* ``lifecycle`` — replay a chain arrival/scale/departure timeline with
  admission control, incremental placement, and delta redeploy; print
  per-event admission decisions and the per-phase SLO table;
* ``serve``   — run the always-on control-plane daemon: a live rack
  behind a typed HTTP command API (arrive/scale/depart/fault/snapshot)
  with a journal + checkpoint crash-recovery story;
* ``sweep``   — regenerate a Figure-2-style δ panel at the terminal;
* ``profile`` — print the Table 4 profiling statistics.

Exit codes are uniform across the report-producing subcommands:
0 — success, every SLO predicate held; 2 — the run completed but SLOs
were violated (or the placement was infeasible); 1 — usage or internal
error.

Example::

    python -m repro place examples/specs/pop.lemur --tmin 2 1 --tmax 40 40
    python -m repro compile examples/specs/pop.lemur --dump p4
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.placer import (
    Placer,
    PlacerConfig,
    PlacementRequest,
    available_strategies,
)
from repro.exceptions import ReproError, TopologyError
from repro.hw.multirack import MultiRackTopology
from repro.hw.spec import TopologySpec, topology_for
from repro.metacompiler.compiler import MetaCompiler
from repro.profiles.defaults import default_profiles
from repro.units import gbps


#: shared --help epilog: the uniform exit-code contract.
_EXIT_CODES = (
    "exit codes: 0 success (SLOs met); 2 SLO non-compliance or "
    "infeasible placement; 1 usage or internal error"
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Lemur reproduction: place and compile NF chains "
                    "across heterogeneous hardware.",
        epilog=_EXIT_CODES,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_topology_args(p):
        p.add_argument("--smartnic", action="store_true",
                       help="attach the 40G eBPF SmartNIC")
        p.add_argument("--openflow", action="store_true",
                       help="use an OpenFlow ToR instead of the PISA switch")
        p.add_argument("--servers", type=int, default=0,
                       help="use N eight-core servers (default: the "
                            "paper's one 2x8-core server)")
        p.add_argument("--metron", action="store_true",
                       help="enable Metron-style ToR core steering")
        p.add_argument("--racks", type=int, default=0, metavar="N",
                       help="replicate the flag-built rack into an N-rack "
                            "star fabric (satellites linked to r0 over "
                            "40G/50µs inter-rack links)")
        p.add_argument("--topology", default=None, metavar="FILE",
                       help="declarative TopologySpec JSON file "
                            "('-' for stdin); wins over every other "
                            "topology flag")
        p.add_argument("--preset", default=None, metavar="NAME",
                       help="named topology preset "
                            "(see repro.hw.spec.available_topologies(), "
                            "e.g. 'paper-testbed', 'two-rack')")

    def add_spec_args(p):
        p.add_argument("spec", help="chain spec file ('-' for stdin)")
        p.add_argument("--tmin", type=float, nargs="*", default=[],
                       help="per-chain minimum rate (Gbps)")
        p.add_argument("--tmax", type=float, nargs="*", default=[],
                       help="per-chain burst cap (Gbps)")
        p.add_argument("--dmax", type=float, nargs="*", default=[],
                       help="per-chain delay bound (µs)")
        p.add_argument("--strategy", default="lemur",
                       choices=available_strategies())
        p.add_argument("--fair", action="store_true",
                       help="split burst headroom max-min fairly instead "
                            "of maximizing aggregate marginal throughput")

    def add_latency_args(p):
        p.add_argument("--queueing", choices=("none", "mm1"),
                       default="none",
                       help="utilization-dependent queueing delay model "
                            "stamped on every forwarded packet "
                            "(default: none, fixed costs only)")
        p.add_argument("--objective",
                       choices=("throughput", "tail_latency"),
                       default="throughput",
                       help="placement objective: 'tail_latency' caps "
                            "per-device utilization so queueing delay "
                            "stays bounded and rejects chains whose "
                            "queueing-aware tail exceeds their d_max")
        p.add_argument("--latency-slo", type=float, default=0.0,
                       metavar="US",
                       help="p99 latency bound in µs applied to every "
                            "chain without an explicit --dmax entry "
                            "(0: unbounded)")

    place_cmd = sub.add_parser("place", help="place chains, print result")
    add_spec_args(place_cmd)
    add_topology_args(place_cmd)
    place_cmd.add_argument("--reserve", type=int, default=0,
                           help="hold back N cores per server for failover")

    compile_cmd = sub.add_parser("compile",
                                 help="place + generate platform code")
    add_spec_args(compile_cmd)
    add_topology_args(compile_cmd)
    compile_cmd.add_argument(
        "--dump", choices=["p4", "bess", "ebpf", "openflow", "paths", "none"],
        default="none", help="artifact family to print in full",
    )
    compile_cmd.add_argument(
        "--out", default=None, metavar="DIR",
        help="write all generated artifacts into DIR",
    )

    trace_cmd = sub.add_parser("trace",
                               help="execute packets through the rack")
    add_spec_args(trace_cmd)
    add_topology_args(trace_cmd)
    trace_cmd.add_argument("--packets", type=int, default=16)

    stats_cmd = sub.add_parser(
        "stats",
        help="trace a placement and report the full metrics surface",
    )
    add_spec_args(stats_cmd)
    add_topology_args(stats_cmd)
    add_latency_args(stats_cmd)
    stats_cmd.add_argument("--packets", type=int, default=32)
    stats_cmd.add_argument("--json", action="store_true",
                           help="emit one JSON document instead of text")

    traffic_cmd = sub.add_parser(
        "traffic",
        help="replay high-volume synthesized traffic through the rack",
        epilog=_EXIT_CODES,
    )
    add_spec_args(traffic_cmd)
    add_topology_args(traffic_cmd)
    add_latency_args(traffic_cmd)
    traffic_cmd.add_argument("--packets", type=int, default=2048,
                             help="packets injected per chain")
    traffic_cmd.add_argument("--flows", type=int, default=64,
                             help="distinct flows synthesized per chain")
    traffic_cmd.add_argument("--batch", type=int, default=64,
                             help="packets per injected batch")
    traffic_cmd.add_argument("--vectorized", action="store_true",
                             help="use the columnar fast path "
                                  "(bit-identical to scalar replay)")
    traffic_cmd.add_argument("--shards", type=int, default=1,
                             help="replay chains across N worker processes "
                                  "(deterministic metrics merge-back)")
    traffic_cmd.add_argument("--pool", choices=("keep", "per-run"),
                             default="keep",
                             help="worker-pool policy for --shards: 'keep' "
                                  "reuses the persistent pool with warm "
                                  "racks, 'per-run' spawns one per run")
    traffic_cmd.add_argument("--seed", type=int, default=23,
                             help="rack drop-hash seed")
    traffic_cmd.add_argument("--json", action="store_true",
                             help="emit the report as one JSON document")
    traffic_cmd.add_argument("--out", default=None, metavar="FILE",
                             help="also write the report to FILE "
                                  "(.json suffix selects JSON)")

    chaos_cmd = sub.add_parser(
        "chaos",
        help="replay traffic under a fault timeline with the SLO guard "
             "(degrade, then auto-replan) and report per-phase compliance",
        epilog=_EXIT_CODES,
    )
    add_spec_args(chaos_cmd)
    add_topology_args(chaos_cmd)
    add_latency_args(chaos_cmd)
    chaos_cmd.add_argument("--packets", type=int, default=512,
                           help="packets injected per chain")
    chaos_cmd.add_argument("--flows", type=int, default=32,
                           help="distinct flows synthesized per chain")
    chaos_cmd.add_argument("--batch", type=int, default=32,
                           help="packets per injected batch")
    chaos_cmd.add_argument("--timeline", default=None, metavar="FILE",
                           help="JSON fault timeline ('-' for stdin)")
    chaos_cmd.add_argument("--fail", action="append", default=[],
                           metavar="DEV@PKT",
                           help="fail DEV at packet offset PKT (repeatable)")
    chaos_cmd.add_argument("--recover", action="append", default=[],
                           metavar="DEV@PKT",
                           help="recover DEV at packet offset PKT")
    chaos_cmd.add_argument("--degrade", action="append", default=[],
                           metavar="SRV@PKT:FRAC",
                           help="lose FRAC of SRV's link capacity at PKT")
    chaos_cmd.add_argument("--lose-cores", action="append", default=[],
                           metavar="SRV@PKT:N",
                           help="kill N of SRV's cores at packet offset PKT")
    chaos_cmd.add_argument("--window", type=int, default=128,
                           help="guard evaluation window (packets per chain)")
    chaos_cmd.add_argument("--threshold", type=float, default=1.0,
                           help="violation threshold as a fraction of t_min")
    chaos_cmd.add_argument("--latency-quantile", type=float, default=0.99,
                           help="windowed latency quantile the guard "
                                "checks against each chain's d_max "
                                "(0: disable tail-latency violations)")
    chaos_cmd.add_argument("--max-replans", type=int, default=3,
                           help="replan budget before the guard gives up")
    chaos_cmd.add_argument("--no-degrade-first", action="store_true",
                           help="skip graceful degradation, replan directly")
    chaos_cmd.add_argument("--seed", type=int, default=23,
                           help="chaos seed (drop hash + timeline)")
    chaos_cmd.add_argument("--jobs", type=int, default=1, metavar="N",
                           help="also run N-1 replica processes and require "
                                "byte-identical reports (determinism check)")
    chaos_cmd.add_argument("--pool", choices=("keep", "per-run"),
                           default="keep",
                           help="worker-pool policy for --jobs replicas: "
                                "'keep' reuses the persistent pool, "
                                "'per-run' spawns one per run")
    chaos_cmd.add_argument("--json", action="store_true",
                           help="emit the report as one JSON document")
    chaos_cmd.add_argument("--out", default=None, metavar="FILE",
                           help="also write the report to FILE "
                                "(.json suffix selects JSON)")

    lifecycle_cmd = sub.add_parser(
        "lifecycle",
        help="replay a chain arrival/scale/departure timeline with "
             "admission control, incremental placement, and delta "
             "redeploy; report per-event decisions and per-phase SLOs",
        epilog=_EXIT_CODES,
    )
    add_spec_args(lifecycle_cmd)
    add_topology_args(lifecycle_cmd)
    add_latency_args(lifecycle_cmd)
    lifecycle_cmd.add_argument("--packets", type=int, default=256,
                               help="packets injected per chain per phase")
    lifecycle_cmd.add_argument("--flows", type=int, default=32,
                               help="distinct flows synthesized per chain")
    lifecycle_cmd.add_argument("--batch", type=int, default=32,
                               help="packets per injected batch")
    lifecycle_cmd.add_argument("--timeline", default=None, metavar="FILE",
                               help="JSON lifecycle timeline "
                                    "('-' for stdin)")
    lifecycle_cmd.add_argument("--arrive", action="append", default=[],
                               metavar="NAME@TICK:TMIN[:TMAX]=NFS",
                               help="admit chain NAME (body NFS, e.g. "
                                    "'ACL -> IPv4Fwd') at TICK with "
                                    "t_min TMIN Gbps (repeatable)")
    lifecycle_cmd.add_argument("--scale", action="append", default=[],
                               metavar="NAME@TICK:TMIN",
                               help="rescale NAME's t_min to TMIN Gbps "
                                    "at TICK")
    lifecycle_cmd.add_argument("--depart", action="append", default=[],
                               metavar="NAME@TICK",
                               help="retire chain NAME at TICK")
    lifecycle_cmd.add_argument("--random", type=int, default=0, metavar="N",
                               help="append N seeded random events")
    lifecycle_cmd.add_argument("--full-resolve", action="store_true",
                               help="re-solve every event from scratch "
                                    "instead of warm-starting from the "
                                    "running placement")
    lifecycle_cmd.add_argument("--seed", type=int, default=23,
                               help="lifecycle seed (timeline + rack)")
    lifecycle_cmd.add_argument("--jobs", type=int, default=1, metavar="N",
                               help="also run N-1 replica processes and "
                                    "require byte-identical reports")
    lifecycle_cmd.add_argument("--pool", choices=("keep", "per-run"),
                               default="keep",
                               help="worker-pool policy for --jobs "
                                    "replicas: 'keep' reuses the "
                                    "persistent pool, 'per-run' spawns "
                                    "one per run")
    lifecycle_cmd.add_argument("--json", action="store_true",
                               help="emit the report as one JSON document")
    lifecycle_cmd.add_argument("--out", default=None, metavar="FILE",
                               help="also write the report to FILE "
                                    "(.json suffix selects JSON)")

    serve_cmd = sub.add_parser(
        "serve",
        help="run the always-on control-plane daemon: typed HTTP command "
             "API over a live rack, with journal + checkpoint crash "
             "recovery (restart on the same --state-dir to recover)",
        epilog=_EXIT_CODES,
    )
    add_spec_args(serve_cmd)
    add_topology_args(serve_cmd)
    add_latency_args(serve_cmd)
    serve_cmd.add_argument("--state-dir", required=True, metavar="DIR",
                           help="journal/checkpoint directory; restarting "
                                "on a populated DIR crash-recovers the "
                                "rack before accepting commands")
    serve_cmd.add_argument("--host", default="127.0.0.1",
                           help="HTTP bind address")
    serve_cmd.add_argument("--port", type=int, default=0,
                           help="HTTP port (default: an ephemeral port, "
                                "printed in the ready line)")
    serve_cmd.add_argument("--packets", type=int, default=64,
                           help="packets injected per chain per applied "
                                "command (one deterministic phase each)")
    serve_cmd.add_argument("--flows", type=int, default=32,
                           help="distinct flows synthesized per chain")
    serve_cmd.add_argument("--batch", type=int, default=32,
                           help="packets per injected batch")
    serve_cmd.add_argument("--seed", type=int, default=23,
                           help="rack drop-hash seed")
    serve_cmd.add_argument("--checkpoint-every", type=int, default=8,
                           help="checkpoint the rack every N applied "
                                "commands (0: only at graceful shutdown)")
    serve_cmd.add_argument("--pool", choices=("keep", "per-run"),
                           default="keep",
                           help="rack execution: 'keep' hosts the live "
                                "rack in a persistent worker-pool "
                                "session, 'per-run' keeps it in-process")
    serve_cmd.add_argument("--json", action="store_true",
                           help="emit the final report as JSON at exit")
    serve_cmd.add_argument("--out", default=None, metavar="FILE",
                           help="also write the final report to FILE "
                                "(.json suffix selects JSON)")

    sweep_cmd = sub.add_parser("sweep", help="run a Figure-2-style δ panel")
    sweep_cmd.add_argument("chains", type=int, nargs="+",
                           help="canonical chain indices, e.g. 1 2 3")
    sweep_cmd.add_argument("--deltas", type=float, nargs="*",
                           default=[0.5, 1.0, 1.5, 2.0])
    sweep_cmd.add_argument("--no-measure", action="store_true")
    sweep_cmd.add_argument("--jobs", type=int, default=1, metavar="N",
                           help="fan (scheme, δ) cells over N worker "
                                "processes (default: serial)")
    sweep_cmd.add_argument("--cache", action=argparse.BooleanOptionalAction,
                           default=True,
                           help="memoize placements by problem fingerprint "
                                "(--no-cache disables)")

    profile_cmd = sub.add_parser("profile",
                                 help="print Table 4 profiling statistics")
    profile_cmd.add_argument("--runs", type=int, default=500)
    return parser


def _topology_spec(args) -> Optional[TopologySpec]:
    """The declarative topology a command selected, or None for the
    legacy single-rack flag bridge (which the run specs keep carrying)."""
    if getattr(args, "topology", None) and getattr(args, "preset", None):
        raise TopologyError(
            "--topology and --preset both name a topology; pick one"
        )
    if getattr(args, "topology", None):
        return TopologySpec.parse_json(_read_spec(args.topology))
    if getattr(args, "preset", None):
        return topology_for(args.preset)
    if getattr(args, "racks", 0) and args.racks > 1:
        return TopologySpec.from_flags(
            with_smartnic=args.smartnic,
            with_openflow=args.openflow,
            servers=args.servers,
            metron=args.metron,
            racks=args.racks,
        )
    return None


def _topology(args):
    """Build the selected topology (single- or multi-rack)."""
    spec = _topology_spec(args)
    if spec is None:
        spec = TopologySpec.from_flags(
            with_smartnic=args.smartnic,
            with_openflow=args.openflow,
            servers=args.servers,
            metron=args.metron,
        )
    return spec.build()


def _single_rack_topology(args, command: str):
    """Like :func:`_topology` but for subcommands that drive exactly one
    rack's compiled artifacts."""
    topology = _topology(args)
    if isinstance(topology, MultiRackTopology):
        raise TopologyError(
            f"'{command}' drives one rack; use place/traffic/chaos/"
            "lifecycle/serve for a multi-rack fabric"
        )
    return topology


def _read_spec(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def _slos(args, n_chains: int) -> List[SLO]:
    # --latency-slo is the blanket d_max; explicit --dmax entries win.
    default_d_max = getattr(args, "latency_slo", 0.0) or float("inf")
    slos = []
    for index in range(n_chains):
        t_min = gbps(args.tmin[index]) if index < len(args.tmin) else 0.0
        t_max = gbps(args.tmax[index]) if index < len(args.tmax) \
            else float("inf")
        d_max = args.dmax[index] if index < len(args.dmax) else default_d_max
        slos.append(SLO(t_min=t_min, t_max=t_max, d_max=d_max))
    return slos


def _load_chains(args):
    text = _read_spec(args.spec)
    chains = chains_from_spec(text)
    slos = _slos(args, len(chains))
    return [chain.with_slo(slo) for chain, slo in zip(chains, slos)]


def cmd_place(args) -> int:
    chains = _load_chains(args)
    topology = _topology(args)
    config = PlacerConfig(
        strategy=args.strategy,
        rate_objective="max_min" if args.fair else "marginal",
    )
    if isinstance(topology, MultiRackTopology):
        from repro.core.hierarchy import MultiRackPlacer

        placer = MultiRackPlacer(
            fabric=topology, profiles=default_profiles(), config=config,
        )
        report = placer.solve(PlacementRequest.multi_rack(chains=chains))
        print(f"placed in {report.seconds * 1000:.1f} ms")
        print(report.placement.describe())
        return 0 if report.placement.feasible else 2
    placer = Placer(
        topology=topology, profiles=default_profiles(), config=config,
    )
    report = placer.solve(PlacementRequest(
        chains=chains, reserve_cores=args.reserve,
    ))
    print(f"placed in {report.seconds * 1000:.1f} ms")
    print(report.placement.describe())
    return 0 if report.placement.feasible else 2


def cmd_compile(args) -> int:
    chains = _load_chains(args)
    topology = _single_rack_topology(args, "compile")
    placer = Placer(
        topology=topology, profiles=default_profiles(),
        config=PlacerConfig(
            strategy=args.strategy,
            rate_objective="max_min" if args.fair else "marginal",
        ),
    )
    placement = placer.solve(PlacementRequest(chains=chains)).placement
    if not placement.feasible:
        print(f"infeasible: {placement.infeasible_reason}", file=sys.stderr)
        return 2
    meta = MetaCompiler(topology=topology, profiles=placer.profiles)
    artifacts = meta.compile_placement(placement)
    print(artifacts.stats.report())
    if getattr(args, "out", None):
        written = artifacts.write_to(args.out)
        print(f"wrote {len(written)} artifact file(s) under {args.out}")
    if args.dump == "p4" and artifacts.p4:
        print(artifacts.p4.program_text)
    elif args.dump == "bess":
        for server, script in artifacts.bess.items():
            print(f"# ==== {server} ====")
            print(script.render())
    elif args.dump == "ebpf":
        for nic, (program, _specs) in artifacts.ebpf.items():
            print(f"// ==== {nic} ({program.instructions} insns) ====")
            print(program.source)
    elif args.dump == "openflow":
        print(artifacts.openflow_text)
    elif args.dump == "paths":
        for path in artifacts.service_paths:
            hops = " | ".join(
                f"{h.device}[si={h.entry_si}]" for h in path.hops
            )
            print(f"spi={path.spi} ({path.chain_name}, "
                  f"{path.fraction:.0%}): {hops}")
    return 0


def cmd_trace(args) -> int:
    from repro.sim.runtime import DeployedRack

    chains = _load_chains(args)
    topology = _single_rack_topology(args, "trace")
    placer = Placer(topology=topology, profiles=default_profiles(),
                    config=PlacerConfig(strategy=args.strategy))
    placement = placer.solve(PlacementRequest(chains=chains)).placement
    if not placement.feasible:
        print(f"infeasible: {placement.infeasible_reason}", file=sys.stderr)
        return 2
    meta = MetaCompiler(topology=topology, profiles=placer.profiles)
    artifacts = meta.compile_placement(placement)
    rack = DeployedRack(topology, artifacts, placer.profiles)
    traces = rack.trace_chains(placement, packets_per_chain=args.packets)
    for name, trace in traces.items():
        print(f"{name}: {trace.delivered}/{trace.injected} delivered; "
              f"avg latency {trace.avg_latency_us:.2f} us; "
              f"trail: {' -> '.join(trace.nf_trail)}")
    return 0


def cmd_stats(args) -> int:
    import json

    from repro.obs import MetricsRegistry, render_text, set_registry
    from repro.sim.runtime import DeployedRack

    # a fresh registry so the report covers exactly this run
    registry = set_registry(MetricsRegistry())
    chains = _load_chains(args)
    topology = _single_rack_topology(args, "stats")
    placer = Placer(
        topology=topology, profiles=default_profiles(),
        config=PlacerConfig(
            strategy=args.strategy,
            rate_objective="max_min" if args.fair else "marginal",
        ),
    )
    report = placer.solve(PlacementRequest(
        chains=chains, objective=args.objective,
    ))
    placement, seconds = report.placement, report.seconds
    if not placement.feasible:
        print(f"infeasible: {placement.infeasible_reason}", file=sys.stderr)
        return 2
    meta = MetaCompiler(topology=topology, profiles=placer.profiles)
    artifacts = meta.compile_placement(placement)
    rack = DeployedRack(topology, artifacts, placer.profiles,
                        registry=registry)
    if args.queueing != "none":
        from repro.sim.traffic import configure_rack_queueing
        configure_rack_queueing(rack, placement, args.queueing)
    traces = rack.trace_chains(placement, packets_per_chain=args.packets)

    chain_reports = {
        name: {
            "injected": trace.injected,
            "delivered": trace.delivered,
            "dropped": trace.dropped,
            "avg_latency_us": trace.avg_latency_us,
            "latency_breakdown_us": trace.latency_breakdown,
            "hops": [
                {
                    "position": hop.position,
                    "device": hop.device,
                    "platform": hop.platform,
                    "packets": hop.packets,
                    "cycles": hop.cycles,
                    "avg_exec_us": hop.avg_exec_us,
                }
                for hop in trace.hops
            ],
        }
        for name, trace in traces.items()
    }
    if args.json:
        print(json.dumps({
            "placer_wall_clock_ms": seconds * 1000,
            "chains": chain_reports,
            "devices": rack.device_stats(),
            "metrics": registry.snapshot(),
        }, indent=2))
        return 0

    print(f"placer wall-clock: {seconds * 1000:.1f} ms")
    print()
    print("== chains ==")
    for name, report in chain_reports.items():
        breakdown = report["latency_breakdown_us"]
        print(f"{name}: {report['delivered']}/{report['injected']} "
              f"delivered, {report['dropped']} dropped; "
              f"avg latency {report['avg_latency_us']:.2f} us "
              f"(exec {breakdown.get('exec_us', 0.0):.2f} + "
              f"queue {breakdown.get('queue_us', 0.0):.2f} + "
              f"bounce {breakdown.get('bounce_us', 0.0):.2f} + "
              f"switch {breakdown.get('switch_us', 0.0):.2f})")
        for hop in report["hops"]:
            print(f"    hop {hop['position']}: {hop['device']} "
                  f"[{hop['platform']}] {hop['packets']} pkts, "
                  f"{hop['cycles']} cycles, "
                  f"avg exec {hop['avg_exec_us']:.3f} us")
    print()
    print("== devices ==")
    for device, stats in rack.device_stats().items():
        drops = stats.get("drops") or {}
        drop_text = (
            ", ".join(f"{k}={v:g}" for k, v in sorted(drops.items()))
            or "none"
        )
        print(f"{device} [{stats['platform']}]: "
              f"in={stats['packets_in']:g} out={stats['packets_out']:g} "
              f"cycles={stats['cycles']:g} drops: {drop_text}")
        for module, mstats in sorted(stats.get("modules", {}).items()):
            print(f"    {module}: rx={mstats['rx']} tx={mstats['tx']} "
                  f"dropped={mstats['dropped']} cycles={mstats['cycles']}")
    print()
    print("== metrics ==")
    print(render_text(registry))
    return 0


def cmd_traffic(args) -> int:
    from repro.cli_report import emit_report
    from repro.exceptions import PlacementError
    from repro.sim.traffic import TrafficSpec, run_traffic

    text = _read_spec(args.spec)
    n_chains = len(chains_from_spec(text))
    slos = tuple(
        (slo.t_min, slo.t_max, slo.d_max)
        for slo in _slos(args, n_chains)
    )
    spec = TrafficSpec(
        spec_text=text,
        slos=slos,
        topology=_topology_spec(args),
        packets_per_chain=args.packets,
        flows_per_chain=args.flows,
        batch_size=args.batch,
        vectorized=args.vectorized,
        shards=args.shards,
        seed=args.seed,
        strategy=args.strategy,
        with_smartnic=args.smartnic,
        with_openflow=args.openflow,
        servers=args.servers,
        metron=args.metron,
        pool=args.pool,
        queueing=args.queueing,
        objective=args.objective,
    )
    try:
        report = run_traffic(spec)
    except PlacementError as exc:
        print(f"infeasible: {exc}", file=sys.stderr)
        return 2
    return emit_report(report, out=args.out, as_json=args.json)


def _parse_event(value: str, action: str, with_severity: bool):
    """Decode ``DEV@PKT`` / ``DEV@PKT:SEVERITY`` CLI event shorthand."""
    from repro.exceptions import FaultInjectionError
    from repro.sim.faults import FaultEvent

    try:
        target, _, when = value.partition("@")
        severity = 1.0
        if with_severity:
            offset_text, _, severity_text = when.partition(":")
            severity = float(severity_text)
        else:
            offset_text = when
        return FaultEvent(
            at_packet=int(offset_text),
            action=action,
            target=target,
            severity=severity,
        )
    except ValueError as exc:
        shape = "DEV@PKT:SEVERITY" if with_severity else "DEV@PKT"
        raise FaultInjectionError(
            f"--{action.replace('_', '-')} wants {shape}, got {value!r}: {exc}"
        ) from exc


def cmd_chaos(args) -> int:
    from repro.obs import MetricsRegistry, render_text, set_registry
    from repro.sim.faults import (
        ChaosSpec,
        FaultTimeline,
        GuardConfig,
        run_chaos_checked,
    )

    text = _read_spec(args.spec)
    n_chains = len(chains_from_spec(text))
    slos = tuple(
        (slo.t_min, slo.t_max, slo.d_max)
        for slo in _slos(args, n_chains)
    )
    events = []
    if args.timeline:
        events.extend(
            FaultTimeline.parse_json(_read_spec(args.timeline)).events
        )
    events.extend(_parse_event(v, "fail", False) for v in args.fail)
    events.extend(_parse_event(v, "recover", False) for v in args.recover)
    events.extend(_parse_event(v, "degrade_link", True)
                  for v in args.degrade)
    events.extend(_parse_event(v, "lose_cores", True)
                  for v in args.lose_cores)
    spec = ChaosSpec(
        spec_text=text,
        slos=slos,
        topology=_topology_spec(args),
        timeline=FaultTimeline(events=tuple(events), seed=args.seed),
        packets_per_chain=args.packets,
        flows_per_chain=args.flows,
        batch_size=args.batch,
        guard=GuardConfig(
            window_packets=args.window,
            threshold=args.threshold,
            degrade_first=not args.no_degrade_first,
            max_replans=args.max_replans,
            latency_quantile=args.latency_quantile,
        ),
        seed=args.seed,
        strategy=args.strategy,
        with_smartnic=args.smartnic,
        with_openflow=args.openflow,
        servers=args.servers,
        metron=args.metron,
        queueing=args.queueing,
        objective=args.objective,
    )
    # a fresh registry so the metrics section covers exactly this run
    registry = set_registry(MetricsRegistry())
    report = run_chaos_checked(spec, jobs=args.jobs, registry=registry,
                               pool=args.pool)
    from repro.cli_report import emit_report

    return emit_report(
        report,
        out=args.out,
        as_json=args.json,
        sections=(("metrics", render_text(registry)),),
    )


def _parse_lifecycle_event(value: str, action: str):
    """Decode the ``NAME@TICK[...]`` lifecycle CLI shorthand.

    Shapes (rates in Gbps, converted to the engine's Mbps):
    ``--arrive NAME@TICK:TMIN[:TMAX]=NF -> NF``,
    ``--scale NAME@TICK:TMIN``, ``--depart NAME@TICK``.
    """
    from repro.exceptions import LifecycleError
    from repro.sim.lifecycle import ChainEvent

    shapes = {
        "arrive": "NAME@TICK:TMIN[:TMAX]=NFS",
        "scale": "NAME@TICK:TMIN",
        "depart": "NAME@TICK",
    }
    try:
        spec_body = ""
        if action == "arrive":
            value, _, spec_body = value.partition("=")
            if not spec_body.strip():
                raise ValueError("missing '=NFS' chain body")
        name, _, when = value.partition("@")
        t_min = 0.0
        t_max = float("inf")
        if action == "depart":
            tick = int(when)
        else:
            tick_text, _, rates = when.partition(":")
            tick = int(tick_text)
            t_min_text, _, t_max_text = rates.partition(":")
            t_min = gbps(float(t_min_text))
            if t_max_text:
                t_max = gbps(float(t_max_text))
        return ChainEvent(
            at=tick,
            action=action,
            chain=name,
            spec=f"chain {name}: {spec_body.strip()}" if spec_body else "",
            t_min_mbps=t_min,
            t_max_mbps=t_max,
        )
    except ValueError as exc:
        raise LifecycleError(
            f"--{action} wants {shapes[action]}, got {value!r}: {exc}"
        ) from exc


def cmd_lifecycle(args) -> int:
    from repro.cli_report import emit_report
    from repro.obs import MetricsRegistry, render_text, set_registry
    from repro.sim.lifecycle import (
        LifecycleSpec,
        LifecycleTimeline,
        run_lifecycle_checked,
    )

    text = _read_spec(args.spec)
    initial = chains_from_spec(text)
    slos = tuple(
        (slo.t_min, slo.t_max, slo.d_max)
        for slo in _slos(args, len(initial))
    )
    events = []
    if args.timeline:
        events.extend(
            LifecycleTimeline.parse_json(_read_spec(args.timeline)).events
        )
    events.extend(_parse_lifecycle_event(v, "arrive") for v in args.arrive)
    events.extend(_parse_lifecycle_event(v, "scale") for v in args.scale)
    events.extend(_parse_lifecycle_event(v, "depart") for v in args.depart)
    if args.random:
        events.extend(LifecycleTimeline.random(
            args.seed, args.random,
            base_names=[chain.name for chain in initial],
        ).events)
    spec = LifecycleSpec(
        spec_text=text,
        slos=slos,
        topology=_topology_spec(args),
        timeline=LifecycleTimeline(events=tuple(events), seed=args.seed),
        packets_per_phase=args.packets,
        flows_per_chain=args.flows,
        batch_size=args.batch,
        seed=args.seed,
        strategy=args.strategy,
        full_resolve=args.full_resolve,
        with_smartnic=args.smartnic,
        with_openflow=args.openflow,
        servers=args.servers,
        queueing=args.queueing,
        objective=args.objective,
    )
    # a fresh registry so the metrics section covers exactly this run
    registry = set_registry(MetricsRegistry())
    report = run_lifecycle_checked(spec, jobs=args.jobs, registry=registry,
                                   pool=args.pool)
    return emit_report(
        report,
        out=args.out,
        as_json=args.json,
        sections=(("metrics", render_text(registry)),),
    )


def cmd_serve(args) -> int:
    from repro.cli_report import emit_report
    from repro.serve import ServeConfig, run_server

    text = _read_spec(args.spec)
    n_chains = len(chains_from_spec(text))
    slos = tuple(
        (slo.t_min, slo.t_max, slo.d_max)
        for slo in _slos(args, n_chains)
    )
    config = ServeConfig(
        spec_text=text,
        slos=slos,
        topology=_topology_spec(args),
        packets_per_phase=args.packets,
        flows_per_chain=args.flows,
        batch_size=args.batch,
        seed=args.seed,
        strategy=args.strategy,
        checkpoint_every=args.checkpoint_every,
        with_smartnic=args.smartnic,
        with_openflow=args.openflow,
        servers=args.servers,
        pool=args.pool,
        queueing=args.queueing,
        objective=args.objective,
    )

    def ready(url: str) -> None:
        # the machine-parsable ready line the smoke harness waits for
        print(f"repro-serve listening on {url}", flush=True)

    report = run_server(
        config, args.state_dir,
        host=args.host, port=args.port, ready=ready,
    )
    return emit_report(report, out=args.out, as_json=args.json)


def cmd_sweep(args) -> int:
    from repro.experiments.runner import SweepSpec, run_sweep
    from repro.experiments.schemes import SCHEMES
    from repro.obs import scoped_registry

    schemes = {k: v for k, v in SCHEMES.items() if k != "Optimal"}
    spec = SweepSpec(
        chain_indices=args.chains,
        deltas=tuple(args.deltas),
        schemes=schemes,
        measure=not args.no_measure,
        jobs=args.jobs,
        cache=args.cache,
    )
    # Counters merged back from pool workers land in this registry, so
    # the hit/miss line is accurate in both serial and parallel mode.
    with scoped_registry() as registry:
        sweep = run_sweep(spec)
        hits = registry.counter_value(
            "placement_cache.lookups", result="hit")
        misses = registry.counter_value(
            "placement_cache.lookups", result="miss")
    print(sweep.print_table())
    if args.cache:
        print(f"placement cache: {hits:.0f} hits / {misses:.0f} misses "
              f"across {len(spec.cells())} cells")
    return 0


def cmd_profile(args) -> int:
    from repro.experiments.figures import table4_rows

    print("\n".join(table4_rows(runs=args.runs)))
    return 0


_COMMANDS = {
    "place": cmd_place,
    "compile": cmd_compile,
    "trace": cmd_trace,
    "stats": cmd_stats,
    "traffic": cmd_traffic,
    "chaos": cmd_chaos,
    "lifecycle": cmd_lifecycle,
    "serve": cmd_serve,
    "sweep": cmd_sweep,
    "profile": cmd_profile,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 0 for --help and 2 for usage errors; 2 is
        # reserved for SLO non-compliance, so usage errors map to 1.
        return 0 if not exc.code else 1
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        return 0  # output piped into a closed reader (e.g. `| head`)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
