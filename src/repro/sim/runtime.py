"""Deployed-rack runtime: execute generated code on real packets.

Ties the substrates together the way the testbed does: the ToR runtime
classifies ingress traffic onto service paths and coordinates execution
(§4.1), BESS pipelines built from generated IR run on servers, verified
eBPF programs run on SmartNICs, and generated rules run on an OpenFlow
ToR. Used to validate that generated routing visits every NF of a chain
in order across platforms.

Observability: every injected packet updates the rack's
:class:`~repro.obs.MetricsRegistry` — per-device packets in/out, drops by
reason, and cycles charged — and carries a per-hop latency breakdown
(exec / bounce / switch-transit) in its metadata, which ``trace_chains``
aggregates into :class:`~repro.sim.measurement.PacketTraceResult`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bess.module import Pipeline
from repro.bess.modules import make_nf_module
from repro.bess.nsh_modules import PortInc, PortOut, SubgroupDemux
from repro.bess.pipeline import build_bess_pipeline
from repro.chain.graph import NFChain
from repro.core.placement import ChainPlacement, Placement
from repro.core.rates import SWITCH_TRANSIT_US
from repro.ebpf.nic import SmartNICRuntime, XDPAction
from repro.exceptions import DataplaneError
from repro.hw.openflow import OpenFlowSwitchModel
from repro.hw.platform import Platform
from repro.hw.topology import Topology
from repro.metacompiler.compiler import CompiledArtifacts
from repro.metacompiler.nsh import INITIAL_SI, ServicePath
from repro.net.packet import Packet
from repro.obs import MetricsRegistry, get_registry
from repro.openflow.switch import OpenFlowRuntime, decode_vid, encode_vid
from repro.profiles.defaults import ProfileDatabase, default_profiles
from repro.sim.columns import (
    ColumnarRunResult,
    HopColumn,
    PacketColumns,
    _FinishedBlock,
    vector_fault_mask,
)
from repro.sim.measurement import HopStat, PacketTraceResult, QueueingModel
from repro.units import SIM_PACKET_BYTES

_MAX_EVENTS = 1000

#: Bound on the per-rack flow-classification cache; reaching it clears the
#: cache (simple and allocation-free — a rack outliving 64k flows is a
#: soak test, not a correctness concern).
_FLOW_CACHE_MAX = 65536


@dataclass
class RunResult:
    """One :meth:`DeployedRack.run` call's outcome.

    ``outputs`` has one entry per injected packet, in input order: the
    delivered packet, or ``None`` where it was dropped.
    """

    outputs: List[Optional[Packet]]

    @property
    def delivered(self) -> int:
        return sum(1 for packet in self.outputs if packet is not None)

    @property
    def dropped(self) -> int:
        return len(self.outputs) - self.delivered

    def __len__(self) -> int:
        return len(self.outputs)

    def __iter__(self):
        return iter(self.outputs)


@dataclass
class RedeployResult:
    """What one :meth:`DeployedRack.redeploy` call touched.

    Devices whose generated program digest is unchanged are ``reused``:
    their runtimes — including stateful NF tables and seeded RNG streams
    — survive the redeploy untouched. Only ``rebuilt`` devices get a
    fresh runtime, and ``removed`` devices (no longer hosting any
    subgroup) are torn down.
    """

    rebuilt: List[str]
    reused: List[str]
    removed: List[str]


@dataclass
class _ServerRuntime:
    pipeline: Pipeline
    port_inc: PortInc
    port_out: PortOut


@dataclass
class _HopProbe:
    """One probed (device, coordinates, template-bytes) hop outcome.

    The columnar dataplane runs a single clone of a flow's template through
    the real platform runtime, then undoes every counter the run charged.
    What remains is this record: the transformed output template, the next
    service-path coordinates, and the counter deltas to replay — multiplied
    by however many packets of that signature traverse the hop.
    """

    survived: bool
    template: Optional[Packet] = None
    next_spi: int = 0
    next_si: int = 0
    #: fixed per-packet ``cycles_consumed`` delta (infra charges like NSH
    #: encap/decap; RNG-sampled NF costs are replayed per packet instead)
    pkt_cycles: int = 0
    #: (module, rx, tx, dropped, cycles) counter deltas, one probe's worth
    module_deltas: List[tuple] = field(default_factory=list)
    #: modules that drew one RNG cost sample for the probe packet — the
    #: column replay must draw once per member packet in arrival order
    rng_modules: List[object] = field(default_factory=list)
    #: (rx, tx, drops, cycles_charged) runtime-level deltas (OF/NIC)
    runtime_deltas: Tuple[int, int, int, int] = (0, 0, 0, 0)
    #: (FlowRule, match-time packet length) pairs the OF pipeline matched
    of_rules: List[tuple] = field(default_factory=list)


@dataclass
class _InterRackHop:
    """Per-chain inter-rack ingress hop (geo-distributed fabrics).

    A chain homed away from its ingress rack crosses a fabric link before
    this rack ever sees its packets: ``crossings`` × ``latency_us`` (the
    round trip by default) rides on every delivered packet as the
    ``interrack_us`` latency component, and when the link is saturated a
    ``drop_fraction`` of packets never arrives. Drops hash the injection
    sequence against ``link_seed`` (the rack seed salted with the link
    name) exactly like device faults, so scalar and columnar runs — and
    repeated runs — agree bit for bit.
    """

    link: str
    latency_us: float  # one-way
    drop_fraction: float = 0.0
    crossings: int = 2
    queue_factor: float = 0.0
    link_seed: int = 0
    extra_us: float = 0.0


def _freeze_template(packet: Packet) -> Packet:
    """Normalize a probe output into a flow template: per-packet charges
    live in the columns, never on the shared template."""
    meta = packet.metadata
    meta.seq = None
    meta.cycles_consumed = 0
    meta.cycles_by_device = {}
    return packet


class DeployedRack:
    """A rack with compiled artifacts installed on every device."""

    def __init__(
        self,
        topology: Topology,
        artifacts: CompiledArtifacts,
        profiles: Optional[ProfileDatabase] = None,
        seed: int = 23,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.topology = topology
        self.profiles = profiles or default_profiles()
        self.seed = seed
        self.obs = registry if registry is not None else get_registry()

        #: device name -> clock used to convert that device's cycles to time.
        self._freq_by_device: Dict[str, float] = {
            server.name: server.freq_hz for server in topology.servers
        }
        self._freq_by_device.update(
            {nic.name: nic.freq_hz for nic in topology.smartnics}
        )
        self._fallback_freq = (
            topology.servers[0].freq_hz if topology.servers else 1.7e9
        )

        self.servers: Dict[str, _ServerRuntime] = {}
        for server_name, ir in artifacts.bess.items():
            self.servers[server_name] = self._build_server(server_name, ir)

        self.nics: Dict[str, SmartNICRuntime] = {}
        for nic_name, (program, nf_specs) in artifacts.ebpf.items():
            self.nics[nic_name] = self._build_nic(nic_name, program, nf_specs)

        self.of_runtime: Optional[OpenFlowRuntime] = None
        if isinstance(topology.switch, OpenFlowSwitchModel):
            self.of_runtime = self._build_of_switch(artifacts)

        #: functional modules for switch-placed NFs, keyed by node id
        self._switch_modules: Dict[str, object] = {}

        #: columnar probe memo: (kind, device, spi, si, template bytes) ->
        #: :class:`_HopProbe`; cleared whenever routing changes.
        self._hop_probes: Dict[tuple, _HopProbe] = {}
        #: (server, spi, si) -> is every pipeline module reachable at those
        #: coordinates vector-safe? (static closure walk, memoized)
        self._route_safety: Dict[tuple, bool] = {}

        #: monotonic per-rack injection sequence (stamped into packet
        #: metadata; batched device runtimes use it to map emitted packets
        #: back to their inputs).
        self._next_seq = 0

        # -- fault state (chaos engineering hooks) ------------------------
        #: devices currently failed: every packet routed to them is dropped
        #: with reason ``device_failed`` (the link is down, so the packet
        #: never arrives — no packets_in / cycles are charged).
        self._fault_failed: set = set()
        #: device name -> fraction of its packets dropped with reason
        #: ``link_degraded`` (capacity shortfall under link degradation or
        #: core loss). Drops are decided by a deterministic hash of the
        #: packet's injection sequence, so outcomes are identical across
        #: repeated runs and across the per-packet/batched paths.
        self._fault_loss: Dict[str, float] = {}
        #: chain name -> inter-rack ingress hop (remote chains only); see
        #: :meth:`set_interrack_hop`.
        self._interrack: Dict[str, _InterRackHop] = {}

        # -- queueing-aware delay model -----------------------------------
        #: the configured utilization-dependent delay model; the default
        #: identity model stamps queue_us == 0.0 everywhere, preserving
        #: the fixed-cost latency numbers bit-for-bit.
        self.queueing = QueueingModel()
        #: device name -> precomputed delay factor (only devices with a
        #: strictly positive factor are present, so the common lookup in
        #: the stamping hot paths is one dict miss).
        self._queue_factor: Dict[str, float] = {}

        # -- pre-resolved instruments (batch fast path) -------------------
        # Counter objects are resolved once per device here instead of a
        # dict-labelled registry lookup per packet per hop.
        obs = self.obs
        self._flow_cache_hit = obs.counter(
            "rack.flow_cache.lookups", result="hit"
        )
        self._flow_cache_miss = obs.counter(
            "rack.flow_cache.lookups", result="miss"
        )
        self._dev_counters: Dict[str, tuple] = {}
        self._ensure_dev_counters(
            [topology.switch.name, *self.servers, *self.nics]
        )
        #: chain name -> dict of pre-resolved chain-scoped instruments
        self._chain_inst: Dict[str, dict] = {}
        #: (chain, device, reason) -> (chain-drop counter, device-drop counter)
        self._drop_counters: Dict[tuple, tuple] = {}

        self._install_routing(artifacts)

    # -- device builders & delta redeploy ----------------------------------------

    def _build_server(self, server_name: str, ir) -> _ServerRuntime:
        pipeline, port_inc, port_out, _sched = build_bess_pipeline(
            ir, self.profiles, seed=self.seed,
            freq_hz=self.topology.server(server_name).freq_hz,
        )
        return _ServerRuntime(
            pipeline=pipeline, port_inc=port_inc, port_out=port_out
        )

    def _build_nic(self, nic_name: str, program, nf_specs) -> SmartNICRuntime:
        runtime = SmartNICRuntime(
            self.topology.smartnic(nic_name), self.profiles, seed=self.seed
        )
        runtime.load(program, nf_specs)
        return runtime

    def _build_of_switch(self, artifacts: CompiledArtifacts) -> OpenFlowRuntime:
        runtime = OpenFlowRuntime(self.topology.switch)
        runtime.install_all(artifacts.openflow_rules)
        return runtime

    def _install_routing(self, artifacts: CompiledArtifacts) -> None:
        """Point the rack's routing state at ``artifacts``.

        Rebuilding these lookup tables is cheap (linear in service paths)
        and always done on redeploy; the expensive per-device runtimes are
        handled separately so unchanged ones can be reused.
        """
        self.artifacts = artifacts
        self.paths_by_spi: Dict[int, ServicePath] = {
            path.spi: path for path in artifacts.routing.service_paths
        }
        #: (chain name, node-id route) -> service path; replaces the old
        #: O(paths × packets) linear scan in :meth:`classify`.
        self._path_by_route: Dict[Tuple[str, Tuple[str, ...]], ServicePath] = {
            (path.chain_name, tuple(path.node_ids)): path
            for path in artifacts.routing.service_paths
        }
        #: spi -> {entry_si -> hop index}; kills the per-event linear hop
        #: scan in the inject loop.
        self._hop_index: Dict[int, Dict[int, int]] = {
            path.spi: {hop.entry_si: i for i, hop in enumerate(path.hops)}
            for path in artifacts.routing.service_paths
        }
        #: per-flow classification memo: (chain, vlan vid, 5-tuple) -> path.
        #: The key covers every packet field the chain-DAG walk reads, so a
        #: hit is exact, not probabilistic.
        self._flow_paths: Dict[tuple, ServicePath] = {}

        # columnar memos bind probe outcomes to the installed programs and
        # routes; any artifact change invalidates them wholesale
        self._hop_probes.clear()
        self._route_safety.clear()

        #: (spi, entry_si) -> VLAN vid for OF switch hops; replaces the old
        #: O(paths × hops) ``_of_coordinates`` scan per switch pass with a
        #: lookup built once here (the OF rule generator already encoded
        #: these same coordinates, so encoding cannot fail at runtime).
        self._of_vid: Dict[Tuple[int, int], int] = {}
        if self.of_runtime is not None:
            switch_name = self.topology.switch.name
            for path in artifacts.routing.service_paths:
                for hop in path.hops:
                    if hop.device == switch_name:
                        self._of_vid[(path.spi, hop.entry_si)] = encode_vid(
                            path.spi, INITIAL_SI - hop.entry_si
                        )

    def _ensure_dev_counters(self, names) -> None:
        obs = self.obs
        for name in names:
            if name not in self._dev_counters:
                self._dev_counters[name] = (
                    obs.counter("rack.device.packets_in", device=name),
                    obs.counter("rack.device.packets_out", device=name),
                    obs.counter("rack.device.cycles", device=name),
                )

    def redeploy(self, artifacts: CompiledArtifacts) -> RedeployResult:
        """Install a new artifact set, rebuilding only changed devices.

        Per-device program digests (:meth:`CompiledArtifacts.\
device_fingerprints`) decide what happens to each device:

        * digest unchanged → the existing runtime is **reused** as-is,
          preserving stateful NF tables and seeded RNG streams — no
          recompile, no reinstall;
        * digest changed or device newly hosts work → a fresh runtime is
          **built** from the new artifacts;
        * device no longer hosts any subgroup → its runtime is
          **removed**.

        Rack-global routing tables (service paths, hop indices, the flow
        classification memo) are always refreshed — they are cheap and
        must match the new artifact set. Fault state and the injection
        sequence counter survive, so a chaos timeline can span redeploys.
        Per-device counts land on the observability counter
        ``rack.redeploy.devices{action=rebuilt|reused|removed}``.
        """
        switch_name = self.topology.switch.name
        old = self.artifacts.device_fingerprints(switch_name)
        new = artifacts.device_fingerprints(switch_name)
        rebuilt: List[str] = []
        reused: List[str] = []
        removed: List[str] = []

        for name, ir in artifacts.bess.items():
            if name in self.servers and old.get(name) == new[name]:
                reused.append(name)
            else:
                self.servers[name] = self._build_server(name, ir)
                rebuilt.append(name)
        for name in [n for n in self.servers if n not in artifacts.bess]:
            del self.servers[name]
            removed.append(name)

        for name, (program, nf_specs) in artifacts.ebpf.items():
            if name in self.nics and old.get(name) == new[name]:
                reused.append(name)
            else:
                self.nics[name] = self._build_nic(name, program, nf_specs)
                rebuilt.append(name)
        for name in [n for n in self.nics if n not in artifacts.ebpf]:
            del self.nics[name]
            removed.append(name)

        if new.get(switch_name) != old.get(switch_name):
            # reloading the ToR program resets switch-placed NF state
            self._switch_modules.clear()
            if isinstance(self.topology.switch, OpenFlowSwitchModel):
                self.of_runtime = self._build_of_switch(artifacts)
            if new.get(switch_name) is not None:
                rebuilt.append(switch_name)
            else:
                removed.append(switch_name)
        elif new.get(switch_name) is not None:
            reused.append(switch_name)

        self._install_routing(artifacts)
        self._ensure_dev_counters([switch_name, *self.servers, *self.nics])
        for action, names in (
            ("rebuilt", rebuilt), ("reused", reused), ("removed", removed)
        ):
            if names:
                self.obs.counter(
                    "rack.redeploy.devices", action=action
                ).inc(len(names))
        return RedeployResult(
            rebuilt=sorted(rebuilt),
            reused=sorted(reused),
            removed=sorted(removed),
        )

    def rebind_registry(self, registry: MetricsRegistry) -> None:
        """Point every pre-resolved instrument at ``registry``.

        The persistent worker runtime reuses one rack across dispatches,
        but each dispatch records into its own scoped registry (whose
        state is shipped back and merged by the parent) — so the cached
        counter objects resolved at deploy time must be re-resolved
        against the new registry.
        """
        self.obs = registry
        self._flow_cache_hit = registry.counter(
            "rack.flow_cache.lookups", result="hit"
        )
        self._flow_cache_miss = registry.counter(
            "rack.flow_cache.lookups", result="miss"
        )
        self._dev_counters = {}
        self._ensure_dev_counters(
            [self.topology.switch.name, *self.servers, *self.nics]
        )
        self._chain_inst = {}
        self._drop_counters = {}

    def reset_state(self,
                    registry: Optional[MetricsRegistry] = None) -> None:
        """Restore the rack to its just-deployed condition.

        The warm-rack contract of :mod:`repro.runtime` is that a cached
        rack dispatched again behaves **byte-identically** to a rack
        freshly built from the same artifacts — reports *and* merged
        metrics. Device runtimes are therefore re-instantiated from the
        installed artifacts (fresh stateful-NF tables, re-seeded RNG
        streams, zeroed module counters) — deterministic by construction
        because it is the same code path as a cold deploy — while
        everything derived purely from the artifacts (routing tables, hop
        indexes, OF vid maps, route-safety memos) is kept. The injection
        sequence, fault state, flow-classification memo, and columnar
        probe cache (which holds references to the old module objects)
        are cleared.
        """
        for name, ir in self.artifacts.bess.items():
            self.servers[name] = self._build_server(name, ir)
        for name, (program, nf_specs) in self.artifacts.ebpf.items():
            self.nics[name] = self._build_nic(name, program, nf_specs)
        if self.of_runtime is not None:
            self.of_runtime = self._build_of_switch(self.artifacts)
        self._switch_modules.clear()
        self._hop_probes.clear()
        self._flow_paths.clear()
        self._next_seq = 0
        self._fault_failed.clear()
        self._fault_loss.clear()
        # queueing factors reset to the cold-deploy identity; engines that
        # enable queueing re-apply it right after taking the warm rack
        self.queueing = QueueingModel()
        self._queue_factor = {}
        self.rebind_registry(registry if registry is not None else self.obs)

    # -- fault injection ---------------------------------------------------------

    def set_device_failed(self, device: str, failed: bool = True) -> None:
        """Fail (or recover) a device: failed devices drop every packet.

        The ToR cannot be failed — it is the rack's coordinator; chaos
        timelines validate this before the run.
        """
        if device == self.topology.switch.name:
            raise DataplaneError("cannot fail the ToR switch")
        self.topology.device(device)  # validates existence
        if failed:
            self._fault_failed.add(device)
        else:
            self._fault_failed.discard(device)

    def set_drop_fraction(self, device: str, fraction: float) -> None:
        """Drop ``fraction`` of the device's packets (capacity shortfall)."""
        if not 0.0 <= fraction <= 1.0:
            raise DataplaneError(
                f"drop fraction must be within [0, 1], got {fraction}"
            )
        if fraction > 0.0:
            self._fault_loss[device] = fraction
        else:
            self._fault_loss.pop(device, None)

    def clear_faults(self) -> None:
        self._fault_failed.clear()
        self._fault_loss.clear()

    # -- inter-rack fabric hop ---------------------------------------------------

    def set_interrack_hop(
        self,
        chain: str,
        link: str,
        latency_us: float,
        *,
        drop_fraction: float = 0.0,
        crossings: int = 2,
        queue_factor: float = 0.0,
    ) -> None:
        """Route a chain's traffic across an inter-rack link into this rack.

        Every delivered packet of ``chain`` carries an extra
        ``interrack_us = crossings * latency_us * (1 + queue_factor)``
        latency component (default ``crossings=2``: out to the home rack
        and back to the ingress). ``drop_fraction`` models link capacity
        shortfall: that fraction of the chain's packets is dropped at the
        fabric ingress (reason ``interrack_capacity``) before any rack
        device sees them, decided by the same deterministic seq hash as
        device faults, salted with the link name.
        """
        if latency_us < 0:
            raise DataplaneError("inter-rack latency_us must be >= 0")
        if not 0.0 <= drop_fraction <= 1.0:
            raise DataplaneError(
                f"drop fraction must be within [0, 1], got {drop_fraction}"
            )
        if crossings < 1:
            raise DataplaneError("inter-rack crossings must be >= 1")
        link_seed = (self.seed + zlib.crc32(link.encode("utf-8"))) & 0x7FFFFFFF
        self._interrack[chain] = _InterRackHop(
            link=link,
            latency_us=latency_us,
            drop_fraction=drop_fraction,
            crossings=crossings,
            queue_factor=queue_factor,
            link_seed=link_seed,
            extra_us=crossings * latency_us * (1.0 + queue_factor),
        )

    def clear_interrack_hops(self) -> None:
        self._interrack.clear()

    def _link_drop(self, hop: _InterRackHop, seq: int) -> bool:
        """Same hash as :meth:`_fault_reason`, salted with the link seed
        (bit-exact twin of ``vector_fault_mask(seq, link_seed, loss)``)."""
        loss = hop.drop_fraction
        if not loss:
            return False
        x = (seq * 2654435761 + hop.link_seed * 40503 + 0x9E3779B9) & 0xFFFFFFFF
        x ^= x >> 16
        x = (x * 0x45D9F3B) & 0xFFFFFFFF
        x ^= x >> 16
        return x / 4294967296.0 < loss

    def _interrack_filter_scalar(self, chain: str, hop: _InterRackHop,
                                 entries: list) -> list:
        """Apply the fabric-ingress hop to a scalar batch: count every
        packet onto the link, drop the hash-selected ones (their seqs
        simply never reach ``results``, so outputs carry ``None``)."""
        self.obs.counter("interrack.packets", link=hop.link).inc(len(entries))
        if not hop.drop_fraction:
            return entries
        kept = []
        dropped = 0
        for packet, path in entries:
            if self._link_drop(hop, packet.metadata.seq):
                dropped += 1
            else:
                kept.append((packet, path))
        if dropped:
            for counter in self._drop_counter_pair(
                chain, hop.link, "interrack_capacity"
            ):
                counter.inc(dropped)
            self.obs.counter("interrack.drops", link=hop.link).inc(dropped)
        return kept

    def _interrack_filter_columns(self, chain: str, hop: _InterRackHop,
                                  columns: PacketColumns) -> PacketColumns:
        """Columnar twin of :meth:`_interrack_filter_scalar`."""
        self.obs.counter("interrack.packets", link=hop.link).inc(len(columns))
        if not hop.drop_fraction:
            return columns
        keep = ~vector_fault_mask(
            columns.seq, hop.link_seed, hop.drop_fraction
        )
        dropped = int(len(columns) - keep.sum())
        if not dropped:
            return columns
        for counter in self._drop_counter_pair(
            chain, hop.link, "interrack_capacity"
        ):
            counter.inc(dropped)
        self.obs.counter("interrack.drops", link=hop.link).inc(dropped)
        return columns.compress(keep)

    # -- queueing-aware delay ----------------------------------------------------

    def configure_queueing(
        self,
        model: QueueingModel,
        utilization: Optional[Dict[str, float]] = None,
    ) -> None:
        """Install the delay model plus per-device utilizations.

        ``utilization`` maps device name -> offered-load fraction (from
        the placement's assigned rates, never wall clock — determinism).
        Subsequent scalar and columnar stamps charge each device's exec
        contribution an extra ``contribution * delay_factor(rho)`` as
        ``queue_us``. Factors are precomputed here so the per-packet cost
        is one dict lookup.
        """
        self.queueing = model
        self._queue_factor = {}
        for device, rho in sorted((utilization or {}).items()):
            factor = model.delay_factor(rho)
            if factor > 0.0:
                self._queue_factor[device] = factor

    def _fault_reason(self, device: str, seq: int) -> Optional[str]:
        """Why a packet headed for ``device`` is dropped, or None.

        The partial-loss decision hashes the packet's injection sequence
        (never wall clock or a shared RNG stream), so a given (seed, seq)
        always resolves the same way — the chaos report's determinism
        across runs and batching modes rests on this.
        """
        if device in self._fault_failed:
            return "device_failed"
        loss = self._fault_loss.get(device)
        if not loss:
            return None
        x = (seq * 2654435761 + self.seed * 40503 + 0x9E3779B9) & 0xFFFFFFFF
        x ^= x >> 16
        x = (x * 0x45D9F3B) & 0xFFFFFFFF
        x ^= x >> 16
        if x / 4294967296.0 < loss:
            return "link_degraded"
        return None

    # -- observability helpers ---------------------------------------------------

    def device_freq(self, device: str) -> float:
        return self._freq_by_device.get(device, self._fallback_freq)

    def _count_device(self, counter: str, device: str, n: int = 1) -> None:
        self.obs.counter(f"rack.device.{counter}", device=device).inc(n)

    def _chain_instruments(self, chain: str) -> dict:
        """Chain-scoped instruments, resolved once per chain name."""
        inst = self._chain_inst.get(chain)
        if inst is None:
            obs = self.obs
            inst = self._chain_inst[chain] = {
                "injected": obs.counter("rack.packets.injected", chain=chain),
                "delivered": obs.counter(
                    "rack.packets.delivered", chain=chain
                ),
                "latency": obs.histogram("rack.latency_us", chain=chain),
                "exec_us": obs.histogram(
                    "rack.latency_component_us", chain=chain,
                    component="exec_us",
                ),
                "queue_us": obs.histogram(
                    "rack.latency_component_us", chain=chain,
                    component="queue_us",
                ),
                "bounce_us": obs.histogram(
                    "rack.latency_component_us", chain=chain,
                    component="bounce_us",
                ),
                "switch_us": obs.histogram(
                    "rack.latency_component_us", chain=chain,
                    component="switch_us",
                ),
            }
        return inst

    def _drop_counter_pair(self, chain: str, device: str, reason: str
                           ) -> tuple:
        key = (chain, device, reason)
        pair = self._drop_counters.get(key)
        if pair is None:
            pair = self._drop_counters[key] = (
                self.obs.counter(
                    "rack.packets.dropped", chain=chain, reason=reason
                ),
                self.obs.counter(
                    "rack.device.drops", device=device, reason=reason
                ),
            )
        return pair

    def _cycles_counter(self, device: str):
        entry = self._dev_counters.get(device)
        if entry is not None:
            return entry[2]
        return self.obs.counter("rack.device.cycles", device=device)

    # -- classification ---------------------------------------------------------

    def classify(self, chain_placement: ChainPlacement, packet: Packet
                 ) -> ServicePath:
        """Pick the service path a packet takes through a chain.

        Memoized per flow: the chain-DAG walk and branch hash run once per
        (chain, vlan vid, packed flow key) — covering every field the walk
        reads — and subsequent packets of the flow hit the cache
        (``rack.flow_cache.lookups{result=hit|miss}``, mirroring the
        placement-cache idiom).
        """
        vlan = packet.vlan
        key = (
            chain_placement.name,
            vlan.vid if vlan is not None else None,
            packet.flow_key_bytes(),
        )
        path = self._flow_paths.get(key)
        if path is not None:
            self._flow_cache_hit.inc()
            return path
        self._flow_cache_miss.inc()
        path = self._classify_walk(chain_placement, packet)
        if len(self._flow_paths) >= _FLOW_CACHE_MAX:
            self._flow_paths.clear()
        self._flow_paths[key] = path
        return path

    def _classify_walk(self, chain_placement: ChainPlacement, packet: Packet
                       ) -> ServicePath:
        """The uncached chain-DAG walk (§4.1).

        Evaluates branch-arm conditions against the packet (vlan tag /
        5-tuple fields); unconditional splits choose by a stable flow hash
        weighted with the operators' split estimates. This is the switch's
        initial SPI/SI classification.
        """
        graph = chain_placement.chain.graph
        node_path: List[str] = []
        (current,) = graph.entry_nodes()
        while True:
            node_path.append(current)
            edges = graph.out_edges(current)
            if not edges:
                break
            if len(edges) == 1:
                current = edges[0].dst
                continue
            conditioned = [e for e in edges if e.condition]
            chosen = None
            for edge in conditioned:
                if _edge_condition_matches(edge.condition, packet):
                    chosen = edge
                    break
            if chosen is None:
                unconditioned = [e for e in edges if not e.condition]
                pool = unconditioned or edges
                digest = packet.flow_digest()
                total = sum(e.fraction for e in pool)
                point = (digest % 10_000) / 10_000 * total
                acc = 0.0
                chosen = pool[-1]
                for edge in pool:
                    acc += edge.fraction
                    if point < acc:
                        chosen = edge
                        break
            current = chosen.dst
        path = self._path_by_route.get(
            (chain_placement.name, tuple(node_path))
        )
        if path is not None:
            return path
        raise DataplaneError(
            f"no service path matches route {node_path} of chain "
            f"{chain_placement.name}"
        )

    # -- event loop ---------------------------------------------------------------

    def run(self, chain_placement: ChainPlacement,
            packets: List[Packet]) -> RunResult:
        """Run packets through their chain; the single injection entry point.

        ``outputs`` has one entry per input, in input order: the delivered
        packet, or ``None`` where it was dropped. Classification, hop
        resolution, device dispatch, and observability updates are
        amortized across the batch; a single packet is simply a batch of
        one.

        Per-packet semantics are batch-size independent: the batch is
        partitioned into maximal *consecutive* runs of packets sharing a
        service path, and each run is processed to completion before the
        next starts, so every module sees packets in global injection
        order and per-module RNG streams and NF state evolve exactly as
        under serial injection.
        """
        if not packets:
            return RunResult(outputs=[])
        name = chain_placement.name
        classify = self.classify
        entries = []
        next_seq = self._next_seq
        for packet in packets:
            path = classify(chain_placement, packet)
            packet.metadata.chain_id = name
            packet.metadata.seq = next_seq
            next_seq += 1
            entries.append((packet, path))
        self._next_seq = next_seq
        self._chain_instruments(name)["injected"].inc(len(packets))

        results: Dict[int, Optional[Packet]] = {}
        hop = self._interrack.get(name)
        live_entries = entries
        if hop is not None:
            live_entries = self._interrack_filter_scalar(name, hop, entries)
        start = 0
        total = len(live_entries)
        while start < total:
            path = live_entries[start][1]
            end = start + 1
            while end < total and live_entries[end][1] is path:
                end += 1
            block = [packet for packet, _ in live_entries[start:end]]
            self._run_block(
                chain_placement, block, path.spi,
                path.si_of[path.node_ids[0]], 0, 1, results, _MAX_EVENTS,
            )
            start = end
        return RunResult(outputs=[
            results.get(packet.metadata.seq) for packet, _ in entries
        ])

    # -- legacy entry points (thin delegates, kept for one release) ----------------

    def inject(self, chain_placement: ChainPlacement, packet: Packet
               ) -> Optional[Packet]:
        """Run one packet through its chain: :meth:`run` with a batch of
        one. Returns the packet on egress, ``None`` if dropped anywhere."""
        return self.run(chain_placement, [packet]).outputs[0]

    def inject_batch(self, chain_placement: ChainPlacement,
                     packets: List[Packet]) -> List[Optional[Packet]]:
        """Batched injection: see :meth:`run` (this returns its outputs)."""
        return self.run(chain_placement, packets).outputs

    # -- columnar (vectorized) event loop ------------------------------------------

    def run_columns(self, chain_placement: ChainPlacement,
                    columns: PacketColumns) -> ColumnarRunResult:
        """Columnar counterpart of :meth:`run` — the vectorized fast path.

        ``columns`` is consumed: its sequence/label arrays are assigned in
        place. Counter-for-counter and bit-for-bit equivalent to cloning
        the templates and calling :meth:`run`: each hop through vector-safe
        code is *probed* once per (device, coordinates, template bytes) —
        one real clone through the platform runtime — and the observed
        effect is replayed across the whole column arithmetically.
        Anything the probe model cannot express (stateful NFs, multi-emit
        pipelines, classification-cache pressure) falls back to the scalar
        block loop via :meth:`PacketColumns.materialize_packets`.
        """
        name = chain_placement.name
        n = len(columns)
        seq_base = self._next_seq
        result = ColumnarRunResult(chain_id=name, count=n, seq_base=seq_base)
        if n == 0:
            return result
        uniq, first_pos = np.unique(columns.sig, return_index=True)
        usigs = [int(s) for s in uniq]
        dirty = any(
            columns.templates[s].metadata.cycles_consumed
            or columns.templates[s].metadata.cycles_by_device
            or columns.templates[s].metadata.drop_flag
            for s in usigs
        )
        if dirty or len(self._flow_paths) + len(usigs) >= _FLOW_CACHE_MAX:
            # pre-charged templates and a classification cache about to
            # clear mid-batch are scalar-path territory: replicate exactly
            packets, _records = columns.materialize_packets()
            scalar_run = self.run(chain_placement, packets)
            result.scalar = {
                seq_base + i: packet
                for i, packet in enumerate(scalar_run.outputs)
            }
            return result
        path_of: Dict[int, ServicePath] = {}
        for pos in np.argsort(first_pos).tolist():
            sig = usigs[pos]
            path_of[sig] = self.classify(
                chain_placement, columns.templates[sig]
            )
        # classify() counted one hit-or-miss per distinct flow; the other
        # packets of each flow are cache hits by definition
        clones = n - len(usigs)
        if clones:
            self._flow_cache_hit.inc(clones)
        columns.seq = np.arange(seq_base, seq_base + n, dtype=np.int64)
        self._next_seq = seq_base + n
        self._chain_instruments(name)["injected"].inc(n)

        hop = self._interrack.get(name)
        if hop is not None:
            columns = self._interrack_filter_columns(name, hop, columns)
            n = len(columns)
            if n == 0:
                return result

        # partition into maximal consecutive same-service-path runs, as the
        # scalar loop does, so module state/RNG evolve in injection order
        paths: List[ServicePath] = []
        path_ids: Dict[int, int] = {}
        pid_of_sig: Dict[int, int] = {}
        for sig in usigs:
            path = path_of[sig]
            pid = path_ids.get(id(path))
            if pid is None:
                pid = path_ids[id(path)] = len(paths)
                paths.append(path)
            pid_of_sig[sig] = pid
        pid_uniq = np.asarray([pid_of_sig[s] for s in usigs])
        pid_arr = pid_uniq[np.searchsorted(uniq, columns.sig)]
        change = np.flatnonzero(pid_arr[1:] != pid_arr[:-1]) + 1
        bounds = [0, *change.tolist(), n]
        single = len(bounds) == 2
        for b0, b1 in zip(bounds, bounds[1:]):
            path = paths[int(pid_arr[b0])]
            block = columns if single else columns.slice(b0, b1)
            self._run_block_columns(
                chain_placement, block, path.spi,
                path.si_of[path.node_ids[0]], 0, 1, result, _MAX_EVENTS,
            )
        return result

    def _run_block_columns(self, cp: ChainPlacement, cols: PacketColumns,
                           spi: int, si: int, excursions: int,
                           switch_passes: int, result: ColumnarRunResult,
                           budget: int) -> None:
        """Columnar :meth:`_run_block`: the same hop loop, whole-column ops.

        Probes run *before* any counter or fault-state side effect, so a
        non-vectorizable discovery can still hand the block to the scalar
        loop at the top of the current hop with nothing double-counted.
        """
        name = cp.name
        switch_name = self.topology.switch.name
        while budget > 0:
            budget -= 1
            path = self.paths_by_spi.get(spi)
            if path is None:
                raise DataplaneError(f"unknown SPI {spi}")
            if si == 0:
                self._finish_columns(cp, cols, excursions, switch_passes,
                                     result)
                return
            cols.spi.fill(spi)
            cols.si.fill(si)
            hop_index = self._hop_index_for(path, si)
            hop = path.hops[hop_index]
            nxt = path.hop_after(hop_index)

            if hop.device == switch_name:
                probes = self._probe_column_switch(cp, hop, cols, spi, si)
                if probes is None:
                    self._fallback_block_columns(
                        cp, cols, spi, si, excursions, switch_passes,
                        result, budget + 1,
                    )
                    return
                uniq, inv = np.unique(cols.sig, return_inverse=True)
                usigs = [int(s) for s in uniq]
                in_c, out_c, _ = self._dev_counters[hop.device]
                in_c.inc(len(cols))
                self._replay_probes(probes, usigs, np.bincount(inv),
                                    runtime=self.of_runtime)
                surv = np.asarray(
                    [probes[s].survived for s in usigs], dtype=bool
                )[inv]
                dropped = len(cols) - int(surv.sum())
                if dropped:
                    reason = ("openflow_rule" if self.of_runtime is not None
                              else "switch_nf")
                    for counter in self._drop_counter_pair(
                        name, hop.device, reason
                    ):
                        counter.inc(dropped)
                    cols = cols.compress(surv)
                out_c.inc(len(cols))
                if not len(cols):
                    return
                live_sigs = {int(s) for s in cols.sig}
                for sig in live_sigs:
                    cols.templates[sig] = probes[sig].template
                if any(probes[s].pkt_cycles for s in live_sigs):
                    u2, i2 = np.unique(cols.sig, return_inverse=True)
                    charged = np.asarray(
                        [probes[int(s)].pkt_cycles for s in u2],
                        dtype=np.int64,
                    )[i2]
                    cols.cycles = cols.cycles + charged
                cols.hops.append(HopColumn(
                    hop.device, hop.platform,
                    np.zeros(len(cols), dtype=np.int64),
                    np.zeros(len(cols), dtype=np.float64),
                ))
                if nxt is None:
                    self._finish_columns(cp, cols, excursions,
                                         switch_passes, result)
                    return
                spi, si = path.spi, nxt.entry_si
                continue

            # -- server / SmartNIC hop ------------------------------------
            # float-order corner: revisiting a device would interleave with
            # earlier charges in cycles_by_device insertion order; rare
            # enough to take the scalar path
            revisit = hop.device in cols.device_cycles
            if hop.platform == Platform.SERVER.value:
                server_rt = self.servers.get(hop.device)
                if (revisit or server_rt is None
                        or not self._server_route_safe(hop.device, spi, si)):
                    self._fallback_block_columns(
                        cp, cols, spi, si, excursions, switch_passes,
                        result, budget + 1,
                    )
                    return
                reason = "server_pipeline"
                runtime = None
            elif hop.platform == Platform.SMARTNIC.value:
                runtime = self.nics.get(hop.device)
                loaded = runtime is not None and runtime.program is not None
                entry = runtime.route_entry(spi, si) if loaded else None
                if (revisit or not loaded
                        or (entry is not None
                            and not entry[0].vector_safe)):
                    self._fallback_block_columns(
                        cp, cols, spi, si, excursions, switch_passes,
                        result, budget + 1,
                    )
                    return
                reason = "nic_program"
            else:
                raise DataplaneError(
                    f"unexpected hop platform {hop.platform}"
                )

            probes = {}
            for sig in {int(s) for s in cols.sig}:
                if runtime is None:
                    probe = self._probe_server_sig(
                        server_rt, hop.device, spi, si, cols.templates[sig]
                    )
                else:
                    probe = self._probe_nic_sig(
                        runtime, hop.device, spi, si, cols.templates[sig]
                    )
                if probe is None:
                    self._fallback_block_columns(
                        cp, cols, spi, si, excursions, switch_passes,
                        result, budget + 1,
                    )
                    return
                probes[sig] = probe

            excursions += 1
            switch_passes += 1
            if self._fault_failed or self._fault_loss:
                if hop.device in self._fault_failed:
                    for counter in self._drop_counter_pair(
                        name, hop.device, "device_failed"
                    ):
                        counter.inc(len(cols))
                    return
                loss = self._fault_loss.get(hop.device)
                if loss:
                    drop = vector_fault_mask(cols.seq, self.seed, loss)
                    ndrop = int(drop.sum())
                    if ndrop:
                        for counter in self._drop_counter_pair(
                            name, hop.device, "link_degraded"
                        ):
                            counter.inc(ndrop)
                        cols = cols.compress(~drop)
                        if not len(cols):
                            return

            in_c, out_c, _ = self._dev_counters[hop.device]
            in_c.inc(len(cols))
            uniq, inv = np.unique(cols.sig, return_inverse=True)
            usigs = [int(s) for s in uniq]
            self._replay_probes(probes, usigs, np.bincount(inv),
                                runtime=runtime)
            charged = np.asarray(
                [probes[s].pkt_cycles for s in usigs], dtype=np.int64
            )[inv]
            if any(probes[s].rng_modules for s in usigs):
                charged = charged + self._replay_rng(
                    probes, [int(s) for s in cols.sig]
                )
            surv = np.asarray(
                [probes[s].survived for s in usigs], dtype=bool
            )[inv]
            n_surv = int(surv.sum())
            dropped = len(cols) - n_surv
            if dropped:
                for counter in self._drop_counter_pair(
                    name, hop.device, reason
                ):
                    counter.inc(dropped)
            charged_surv = charged[surv] if dropped else charged
            total = int(charged_surv.sum())
            if total:
                self._cycles_counter(hop.device).inc(total)
            out_c.inc(n_surv)
            if not n_surv:
                return
            if dropped:
                cols = cols.compress(surv)
            cols.cycles = cols.cycles + charged_surv
            cols.charge_device(hop.device, charged_surv)
            freq = self.device_freq(hop.device)
            cols.hops.append(HopColumn(
                hop.device, hop.platform, charged_surv,
                charged_surv / freq * 1e6,
            ))
            u2, i2 = np.unique(cols.sig, return_inverse=True)
            usigs2 = [int(s) for s in u2]
            for sig in usigs2:
                cols.templates[sig] = probes[sig].template
            nspi = np.asarray(
                [probes[s].next_spi for s in usigs2], dtype=np.int64
            )[i2]
            nsi = np.asarray(
                [probes[s].next_si for s in usigs2], dtype=np.int64
            )[i2]
            if len(usigs2) == 1 or bool(
                np.all((nspi == nspi[0]) & (nsi == nsi[0]))
            ):
                spi, si = int(nspi[0]), int(nsi[0])
                continue
            # Divergent next coordinates: recurse on consecutive
            # same-coordinate runs, as the scalar loop does.
            change = np.flatnonzero(
                (nspi[1:] != nspi[:-1]) | (nsi[1:] != nsi[:-1])
            ) + 1
            bounds = [0, *change.tolist(), len(cols)]
            for b0, b1 in zip(bounds, bounds[1:]):
                self._run_block_columns(
                    cp, cols.slice(b0, b1), int(nspi[b0]), int(nsi[b0]),
                    excursions, switch_passes, result, budget,
                )
            return
        raise DataplaneError("packet exceeded the rack event budget (loop?)")

    def _fallback_block_columns(self, cp: ChainPlacement,
                                cols: PacketColumns, spi: int, si: int,
                                excursions: int, switch_passes: int,
                                result: ColumnarRunResult,
                                budget: int) -> None:
        """Materialize the column and let the scalar block loop take over
        mid-flight (state so far — cycles, hop records — comes along)."""
        packets, hop_records = cols.materialize_packets(chain_id=cp.name)
        self._run_block(cp, packets, spi, si, excursions, switch_passes,
                        result.scalar, budget, hop_records)

    def _replay_probes(self, probes: Dict[int, _HopProbe],
                       usigs: List[int], counts: np.ndarray,
                       runtime=None) -> None:
        """Replay probe counter deltas across the column: one signature's
        probe effect, multiplied by its packet multiplicity."""
        for sig, k in zip(usigs, counts.tolist()):
            probe = probes[sig]
            for m, rx_d, tx_d, dr_d, cy_d in probe.module_deltas:
                m.rx_packets += rx_d * k
                m.tx_packets += tx_d * k
                m.dropped_packets += dr_d * k
                m.cycles_charged += cy_d * k
            if runtime is not None:
                rx_d, tx_d, dr_d, cy_d = probe.runtime_deltas
                runtime.rx += rx_d * k
                runtime.tx += tx_d * k
                runtime.drops += dr_d * k
                if cy_d:
                    runtime.cycles_charged += cy_d * k
            for rule, match_len in probe.of_rules:
                rule.packets += k
                rule.bytes += match_len * k

    def _replay_rng(self, probes: Dict[int, _HopProbe],
                    sig_list: List[int]) -> np.ndarray:
        """Per-packet RNG cost draws, replayed in block arrival order.

        Each module's stream must advance exactly as under scalar
        injection: one ``uniform(low, worst)`` draw per packet that reaches
        it, in the order the packets arrive. ``low + (worst - low) * r``
        with ``r`` pulled from the module's own RNG reproduces
        ``random.Random.uniform`` bit-for-bit, and the float64 elementwise
        arithmetic matches the scalar expression exactly.
        """
        extra = np.zeros(len(sig_list), dtype=np.int64)
        plan: Dict[int, List[int]] = {}
        owners: Dict[int, object] = {}
        for i, sig in enumerate(sig_list):
            for module in probes[sig].rng_modules:
                key = id(module)
                members = plan.get(key)
                if members is None:
                    members = plan[key] = []
                    owners[key] = module
                members.append(i)
        for key, members in plan.items():
            module = owners[key]
            low, worst = module._cost_bounds()
            span = worst - low
            rand = module._rng.random
            draws = np.asarray([rand() for _ in members], dtype=np.float64)
            charged = (low + span * draws).astype(np.int64)
            module.cycles_charged += int(charged.sum())
            extra[np.asarray(members, dtype=np.intp)] += charged
        return extra

    # -- columnar hop probes -------------------------------------------------------

    def _remember_probe(self, key: tuple, probe: _HopProbe) -> _HopProbe:
        if len(self._hop_probes) >= _FLOW_CACHE_MAX:
            self._hop_probes.clear()
        self._hop_probes[key] = probe
        return probe

    def _probe_column_switch(self, cp: ChainPlacement, hop,
                             cols: PacketColumns, spi: int, si: int
                             ) -> Optional[Dict[int, _HopProbe]]:
        """Probe a switch hop for every signature in the column, or None
        when any part of it is not vectorizable."""
        if self.of_runtime is None:
            for nid in hop.node_ids:
                if not self._switch_module(cp, nid).vector_safe:
                    return None
        probes: Dict[int, _HopProbe] = {}
        for sig in {int(s) for s in cols.sig}:
            template = cols.templates[sig]
            if self.of_runtime is not None:
                probe = self._probe_of_sig(hop, spi, si, template)
            else:
                probe = self._probe_pisa_sig(cp, hop, spi, si, template)
            if probe is None:
                return None
            probes[sig] = probe
        return probes

    def _probe_of_sig(self, hop, spi: int, si: int,
                      template: Packet) -> Optional[_HopProbe]:
        key = ("of", hop.device, spi, si, template.data)
        probe = self._hop_probes.get(key)
        if probe is not None:
            return probe
        of = self.of_runtime
        vid = self._of_vid[(spi, si)]
        clone = template.copy()
        if clone.vlan is None:
            clone.push_vlan(vid)
        else:
            clone.vlan.vid = vid
            clone.commit()
        snap = (of.rx, of.tx, of.drops)
        trace: List[tuple] = []
        of._match_trace = trace
        try:
            of_result = of.process(clone)
        finally:
            of._match_trace = None
        runtime_deltas = (
            of.rx - snap[0], of.tx - snap[1], of.drops - snap[2], 0
        )
        of.rx, of.tx, of.drops = snap
        for rule, match_len in trace:
            rule.packets -= 1
            rule.bytes -= match_len
        if of_result.dropped:
            probe = _HopProbe(survived=False)
        else:
            out = of_result.packet
            out.pop_vlan()
            probe = _HopProbe(survived=True, template=_freeze_template(out))
        probe.runtime_deltas = runtime_deltas
        probe.of_rules = list(trace)
        return self._remember_probe(key, probe)

    def _probe_pisa_sig(self, cp: ChainPlacement, hop, spi: int, si: int,
                        template: Packet) -> Optional[_HopProbe]:
        key = ("sw", hop.device, spi, si, template.data)
        probe = self._hop_probes.get(key)
        if probe is not None:
            return probe
        modules = [self._switch_module(cp, nid) for nid in hop.node_ids]
        snaps = [
            (m.rx_packets, m.tx_packets, m.dropped_packets, m.cycles_charged)
            for m in modules
        ]
        clone = template.copy()
        live = [clone]
        for module in modules:
            if not live:
                break
            live = [pkt for _gate, pkt in module.receive_batch(live)]
        module_deltas = []
        for module, snap in zip(modules, snaps):
            deltas = (
                module.rx_packets - snap[0],
                module.tx_packets - snap[1],
                module.dropped_packets - snap[2],
                module.cycles_charged - snap[3],
            )
            if any(deltas):
                module_deltas.append((module, *deltas))
            (module.rx_packets, module.tx_packets,
             module.dropped_packets, module.cycles_charged) = snap
        if len(live) > 1:
            return None  # multi-emit switch NFs take the scalar path
        if live:
            out = live[0]
            pkt_cycles = out.metadata.cycles_consumed
            probe = _HopProbe(survived=True,
                              template=_freeze_template(out),
                              pkt_cycles=pkt_cycles)
        else:
            probe = _HopProbe(survived=False)
        probe.module_deltas = module_deltas
        return self._remember_probe(key, probe)

    def _probe_server_sig(self, server_rt: _ServerRuntime, server: str,
                          spi: int, si: int,
                          template: Packet) -> Optional[_HopProbe]:
        key = ("srv", server, spi, si, template.data)
        probe = self._hop_probes.get(key)
        if probe is not None:
            return probe
        modules = list(server_rt.pipeline.modules.values())
        snaps = [
            (m.rx_packets, m.tx_packets, m.dropped_packets,
             m.cycles_charged, m.database)
            for m in modules
        ]
        # database=None makes account() a no-op, so the probe cannot
        # advance any module's RNG stream; fixed infra charges (NSH
        # encap/decap, demux LB) still land in cycles_consumed and the
        # counter diffs below.
        for module in modules:
            module.database = None
        pending = server_rt.port_out.drain()
        clone = template.copy()
        clone.push_nsh(spi, si)
        try:
            server_rt.pipeline.push_batch(
                [clone], entry=server_rt.port_inc.name
            )
            emitted = server_rt.port_out.drain()
        finally:
            if pending:
                server_rt.port_out.emitted = (
                    pending + server_rt.port_out.emitted
                )
            module_deltas = []
            rng_modules = []
            replayable = True
            for module, snap in zip(modules, snaps):
                deltas = (
                    module.rx_packets - snap[0],
                    module.tx_packets - snap[1],
                    module.dropped_packets - snap[2],
                    module.cycles_charged - snap[3],
                )
                if any(deltas):
                    module_deltas.append((module, *deltas))
                    if snap[4] is not None and module.nf_class is not None \
                            and deltas[0]:
                        if deltas[0] != 1:
                            replayable = False  # revisit loops: scalar path
                        rng_modules.append(module)
                (module.rx_packets, module.tx_packets,
                 module.dropped_packets, module.cycles_charged) = snap[:4]
                module.database = snap[4]
        if not replayable or len(emitted) > 1:
            return None
        if emitted:
            out = emitted[0]
            nsh = out.pop_nsh()
            if nsh is None:
                return None  # let the scalar path raise faithfully
            pkt_cycles = out.metadata.cycles_consumed
            probe = _HopProbe(survived=True,
                              template=_freeze_template(out),
                              next_spi=nsh.spi, next_si=nsh.si,
                              pkt_cycles=pkt_cycles)
        else:
            probe = _HopProbe(survived=False)
        probe.module_deltas = module_deltas
        probe.rng_modules = rng_modules
        return self._remember_probe(key, probe)

    def _probe_nic_sig(self, runtime: SmartNICRuntime, nic: str, spi: int,
                       si: int, template: Packet) -> Optional[_HopProbe]:
        key = ("nic", nic, spi, si, template.data)
        probe = self._hop_probes.get(key)
        if probe is not None:
            return probe
        entry = runtime.route_entry(spi, si)
        module = entry[0] if entry is not None else None
        msnap = None
        if module is not None:
            msnap = (module.rx_packets, module.tx_packets,
                     module.dropped_packets, module.cycles_charged)
        rsnap = (runtime.rx, runtime.tx, runtime.drops,
                 runtime.cycles_charged)
        clone = template.copy()
        clone.push_nsh(spi, si)
        action, out = runtime.process_batch([clone])[0]
        module_deltas = []
        if module is not None:
            deltas = (
                module.rx_packets - msnap[0],
                module.tx_packets - msnap[1],
                module.dropped_packets - msnap[2],
                module.cycles_charged - msnap[3],
            )
            if any(deltas):
                module_deltas.append((module, *deltas))
            (module.rx_packets, module.tx_packets,
             module.dropped_packets, module.cycles_charged) = msnap
        runtime_deltas = (
            runtime.rx - rsnap[0], runtime.tx - rsnap[1],
            runtime.drops - rsnap[2], runtime.cycles_charged - rsnap[3],
        )
        runtime.rx, runtime.tx, runtime.drops, runtime.cycles_charged = rsnap
        if action is XDPAction.TX:
            nsh = out.pop_nsh()
            if nsh is None:
                return None
            pkt_cycles = out.metadata.cycles_consumed
            probe = _HopProbe(survived=True,
                              template=_freeze_template(out),
                              next_spi=nsh.spi, next_si=nsh.si,
                              pkt_cycles=pkt_cycles)
        else:
            probe = _HopProbe(survived=False)
        probe.module_deltas = module_deltas
        probe.runtime_deltas = runtime_deltas
        return self._remember_probe(key, probe)

    def _server_route_safe(self, server: str, spi: int, si: int) -> bool:
        """Can a (server, coordinates) hop be probe-replayed?

        A static walk of the pipeline subgraph reachable at those
        coordinates, memoized. It runs *before* any probe: pushing even one
        clone through an unsafe module (say NAT) would already mutate its
        state, so safety must be decided without touching the pipeline.
        """
        key = (server, spi, si)
        cached = self._route_safety.get(key)
        if cached is not None:
            return cached
        runtime = self.servers[server]
        safe = True
        stack: List[object] = [runtime.port_inc]
        seen: set = set()
        while stack:
            module = stack.pop()
            if id(module) in seen:
                continue
            seen.add(id(module))
            if not module.vector_safe:
                safe = False
                break
            if isinstance(module, SubgroupDemux):
                # only the gates this (spi, si) can take; a missing route
                # is a clean drop, which the probe replays fine
                route = module._routes.get((spi, si))
                gates = []
                if route is not None:
                    base_gate, instances = route
                    gates = range(base_gate, base_gate + instances)
            else:
                gates = list(module._ogates)
            for gate in gates:
                downstream = module.downstream(gate)
                if downstream is not None:
                    stack.append(downstream)
        self._route_safety[key] = safe
        return safe

    def _finish_columns(self, cp: ChainPlacement, cols: PacketColumns,
                        excursions: int, switch_passes: int,
                        result: ColumnarRunResult) -> None:
        """Columnar :meth:`_finish_batch`: latency columns + histograms."""
        inst = self._chain_instruments(cp.name)
        n = len(cols)
        inst["delivered"].inc(n)
        queue_factor = self._queue_factor
        exec_us = np.zeros(n, dtype=np.float64)
        queue_us = np.zeros(n, dtype=np.float64)
        attributed = np.zeros(n, dtype=np.int64)
        for device in cols.device_order:
            arr = cols.device_cycles[device]
            contribution = arr / self.device_freq(device) * 1e6
            exec_us = exec_us + contribution
            factor = queue_factor.get(device)
            if factor:
                queue_us = queue_us + contribution * factor
            attributed = attributed + arr
        unattributed = cols.cycles - attributed
        over = unattributed > 0
        if bool(over.any()):
            # unattributed cycles take the fallback clock and, as in the
            # scalar stamp, accrue no queueing wait
            exec_us[over] = (
                exec_us[over]
                + unattributed[over] / self._fallback_freq * 1e6
            )
        bounce_us = excursions * self.topology.bounce_rtt_us
        switch_us = switch_passes * SWITCH_TRANSIT_US
        latency_us = exec_us + queue_us + bounce_us + switch_us
        interrack = self._interrack.get(cp.name)
        interrack_us: Optional[float] = None
        if interrack is not None:
            interrack_us = interrack.extra_us
            latency_us = latency_us + interrack_us
        inst["latency"].observe_many(latency_us)
        inst["exec_us"].observe_many(exec_us)
        inst["queue_us"].observe_many(queue_us)
        inst["bounce_us"].observe_many(np.full(n, bounce_us))
        inst["switch_us"].observe_many(np.full(n, switch_us))
        if interrack_us is not None:
            inst.setdefault(
                "interrack_us",
                self.obs.histogram(
                    "rack.latency_component_us", chain=cp.name,
                    component="interrack_us",
                ),
            ).observe_many(np.full(n, interrack_us))
        result.blocks.append(_FinishedBlock(
            columns=cols, exec_us=exec_us, queue_us=queue_us,
            latency_us=latency_us,
            bounce_us=bounce_us, switch_us=switch_us,
            interrack_us=interrack_us,
        ))

    def _run_block(self, cp: ChainPlacement, packets: List[Packet],
                   spi: int, si: int, excursions: int, switch_passes: int,
                   results: Dict[int, Optional[Packet]], budget: int,
                   hop_records: Optional[Dict[int, List[dict]]] = None
                   ) -> None:
        """Advance one same-service-path run of packets to completion.

        Mirrors :meth:`inject`'s event loop hop for hop, with per-block
        device dispatch and per-block counter flushes. If survivors of a
        hop ever diverge in (spi, si), the block re-splits into consecutive
        same-coordinate runs and recurses, preserving the ordering
        invariant.
        """
        if hop_records is None:
            hop_records = {p.metadata.seq: [] for p in packets}
        name = cp.name
        switch_name = self.topology.switch.name
        live = packets
        while budget > 0:
            budget -= 1
            path = self.paths_by_spi.get(spi)
            if path is None:
                raise DataplaneError(f"unknown SPI {spi}")
            if si == 0:
                self._finish_batch(cp, live, excursions, switch_passes,
                                   hop_records)
                for packet in live:
                    results[packet.metadata.seq] = packet
                return
            hop_index = self._hop_index_for(path, si)
            hop = path.hops[hop_index]
            nxt = path.hop_after(hop_index)

            if hop.device == switch_name:
                in_c, out_c, _ = self._dev_counters[hop.device]
                in_c.inc(len(live))
                outs = self._run_switch_hop_batch(cp, hop, live, spi)
                survivors = []
                dropped = 0
                for packet, out in zip(live, outs):
                    if out is None:
                        results[packet.metadata.seq] = None
                        dropped += 1
                    else:
                        hop_records[packet.metadata.seq].append({
                            "device": hop.device, "platform": hop.platform,
                            "cycles": 0, "exec_us": 0.0,
                        })
                        survivors.append(out)
                if dropped:
                    reason = ("openflow_rule" if self.of_runtime is not None
                              else "switch_nf")
                    for counter in self._drop_counter_pair(
                        name, hop.device, reason
                    ):
                        counter.inc(dropped)
                out_c.inc(len(survivors))
                if not survivors:
                    return
                if nxt is None:
                    self._finish_batch(cp, survivors, excursions,
                                       switch_passes, hop_records)
                    for packet in survivors:
                        results[packet.metadata.seq] = packet
                    return
                spi, si = path.spi, nxt.entry_si
                live = survivors
                continue

            excursions += 1
            switch_passes += 1
            if self._fault_failed or self._fault_loss:
                fault_drops: Dict[str, int] = {}
                passed: List[Packet] = []
                for packet in live:
                    fault = self._fault_reason(hop.device,
                                               packet.metadata.seq)
                    if fault is None:
                        passed.append(packet)
                    else:
                        results[packet.metadata.seq] = None
                        fault_drops[fault] = fault_drops.get(fault, 0) + 1
                for fault, count in fault_drops.items():
                    for counter in self._drop_counter_pair(
                        name, hop.device, fault
                    ):
                        counter.inc(count)
                if not passed:
                    return
                live = passed
            before = [
                (p.metadata.cycles_consumed, dict(p.metadata.cycles_by_device))
                for p in live
            ]
            in_c, out_c, _ = self._dev_counters[hop.device]
            in_c.inc(len(live))
            if hop.platform == Platform.SERVER.value:
                outs = self._run_server_hop_batch(hop.device, live, spi, si)
                reason = "server_pipeline"
            elif hop.platform == Platform.SMARTNIC.value:
                outs = self._run_nic_hop_batch(hop.device, live, spi, si)
                reason = "nic_program"
            else:
                raise DataplaneError(f"unexpected hop platform {hop.platform}")

            survivors: List[Packet] = []
            cycle_sink: Dict[str, int] = {}
            dropped = 0
            for packet, out, (before_total, before_attr) in zip(
                live, outs, before
            ):
                if out is None:
                    results[packet.metadata.seq] = None
                    dropped += 1
                    continue
                record = self._attribute_hop(
                    hop, out, before_total, before_attr, cycle_sink
                )
                hop_records[out.metadata.seq].append(record)
                survivors.append(out)
            if dropped:
                for counter in self._drop_counter_pair(
                    name, hop.device, reason
                ):
                    counter.inc(dropped)
            for device, delta in cycle_sink.items():
                self._cycles_counter(device).inc(delta)
            out_c.inc(len(survivors))
            if not survivors:
                return

            coords: List[Tuple[int, int]] = []
            for packet in survivors:
                nsh = packet.pop_nsh()
                if nsh is None:
                    raise DataplaneError(
                        f"packet returned from {hop.device} without NSH"
                    )
                coords.append((nsh.spi, nsh.si))
            first = coords[0]
            if all(coord == first for coord in coords):
                spi, si = first
                live = survivors
                continue
            # Divergent next coordinates: recurse on consecutive
            # same-coordinate runs so per-module order stays injection order.
            start = 0
            count = len(survivors)
            while start < count:
                end = start + 1
                while end < count and coords[end] == coords[start]:
                    end += 1
                self._run_block(
                    cp, survivors[start:end], coords[start][0],
                    coords[start][1], excursions, switch_passes, results,
                    budget, hop_records,
                )
                start = end
            return
        raise DataplaneError("packet exceeded the rack event budget (loop?)")

    def _run_switch_hop_batch(self, cp: ChainPlacement, hop,
                              packets: List[Packet], spi: int
                              ) -> List[Optional[Packet]]:
        """Batched :meth:`_run_switch_hop`; returns one entry per input
        (the packet, or ``None`` where the switch dropped it)."""
        if self.of_runtime is not None:
            vid = self._of_vid[(spi, hop.entry_si)]
            for packet in packets:
                if packet.vlan is None:
                    packet.push_vlan(vid)
                else:
                    packet.vlan.vid = vid
                    packet.commit()
            of_results = self.of_runtime.process_batch(packets)
            outs: List[Optional[Packet]] = []
            for packet, result in zip(packets, of_results):
                if result.dropped:
                    outs.append(None)
                else:
                    packet.pop_vlan()
                    outs.append(packet)
            return outs
        by_seq: Dict[int, Optional[Packet]] = {
            packet.metadata.seq: packet for packet in packets
        }
        live = packets
        for nid in hop.node_ids:
            module = self._switch_module(cp, nid)
            next_live = [
                packet for _gate, packet in module.receive_batch(live)
            ]
            if len(next_live) != len(live):
                survived = {packet.metadata.seq for packet in next_live}
                for packet in live:
                    if packet.metadata.seq not in survived:
                        by_seq[packet.metadata.seq] = None
            live = next_live
            if not live:
                break
        return [by_seq[packet.metadata.seq] for packet in packets]

    def _run_server_hop_batch(self, server: str, packets: List[Packet],
                              spi: int, si: int) -> List[Optional[Packet]]:
        runtime = self.servers.get(server)
        if runtime is None:
            raise DataplaneError(f"no BESS pipeline deployed on {server}")
        for packet in packets:
            packet.push_nsh(spi, si)
        runtime.pipeline.push_batch(packets, entry=runtime.port_inc.name)
        emitted = runtime.port_out.drain()
        by_seq: Dict[int, Packet] = {}
        for out in emitted:
            seq = out.metadata.seq
            if seq in by_seq:
                raise DataplaneError(
                    f"{server}: expected one packet out per input, got a "
                    f"duplicate for seq {seq}"
                )
            by_seq[seq] = out
        outs = [by_seq.pop(packet.metadata.seq, None) for packet in packets]
        if by_seq:
            raise DataplaneError(
                f"{server}: emitted packets matching no input "
                f"(seqs {sorted(by_seq)})"
            )
        return outs

    def _run_nic_hop_batch(self, nic: str, packets: List[Packet],
                           spi: int, si: int) -> List[Optional[Packet]]:
        runtime = self.nics.get(nic)
        if runtime is None:
            raise DataplaneError(f"no eBPF program loaded on {nic}")
        for packet in packets:
            packet.push_nsh(spi, si)
        return [
            out if action is XDPAction.TX else None
            for action, out in runtime.process_batch(packets)
        ]

    def _finish_batch(self, cp: ChainPlacement, packets: List[Packet],
                      excursions: int, switch_passes: int,
                      hop_records: Dict[int, List[dict]]) -> None:
        """Batched :meth:`_finish` using pre-resolved instruments."""
        inst = self._chain_instruments(cp.name)
        inst["delivered"].inc(len(packets))
        latency_h = inst["latency"]
        exec_h = inst["exec_us"]
        queue_h = inst["queue_us"]
        bounce_h = inst["bounce_us"]
        switch_h = inst["switch_us"]
        interrack = self._interrack.get(cp.name)
        interrack_h = None
        if interrack is not None:
            interrack_h = inst.setdefault(
                "interrack_us",
                self.obs.histogram(
                    "rack.latency_component_us", chain=cp.name,
                    component="interrack_us",
                ),
            )
        for packet in packets:
            self._stamp_latency(
                packet, excursions, switch_passes,
                hop_records[packet.metadata.seq],
            )
            fields = packet.metadata.fields
            latency_h.observe(fields["latency_us"])
            exec_h.observe(fields["exec_us"])
            queue_h.observe(fields["queue_us"])
            bounce_h.observe(fields["bounce_us"])
            switch_h.observe(fields["switch_us"])
            if interrack_h is not None:
                interrack_h.observe(fields["interrack_us"])

    def _hop_index_for(self, path: ServicePath, si: int) -> int:
        hop_index = self._hop_index.get(path.spi, {}).get(si)
        if hop_index is None:
            raise DataplaneError(
                f"SPI {path.spi}: no hop enters at SI {si} "
                f"(hops at {[h.entry_si for h in path.hops]})"
            )
        return hop_index

    def _attribute_hop(self, hop, out: Packet, before_total: int,
                       before_attr: Dict[str, int],
                       cycle_sink: Optional[Dict[str, int]] = None) -> dict:
        """Charge the hop's cycle delta to its device and build the
        per-hop record.

        Cycles charged by platform runtimes that know their device (the
        SmartNIC) arrive already attributed in ``cycles_by_device``; the
        remainder (BESS modules charge ``cycles_consumed`` only) belongs
        to the device the hop ran on.

        ``cycle_sink`` (batch path) accumulates per-device cycle counter
        increments for one flush per batch instead of one per packet.
        """
        meta = out.metadata
        total_delta = meta.cycles_consumed - before_total
        attributed_delta = sum(meta.cycles_by_device.values()) - sum(
            before_attr.values()
        )
        unattributed = total_delta - attributed_delta
        if unattributed:
            meta.cycles_by_device[hop.device] = (
                meta.cycles_by_device.get(hop.device, 0) + unattributed
            )
        exec_us = 0.0
        for device, cycles in meta.cycles_by_device.items():
            delta = cycles - before_attr.get(device, 0)
            if delta:
                exec_us += delta / self.device_freq(device) * 1e6
                if cycle_sink is None:
                    self._count_device("cycles", device, delta)
                else:
                    cycle_sink[device] = cycle_sink.get(device, 0) + delta
        return {
            "device": hop.device, "platform": hop.platform,
            "cycles": total_delta, "exec_us": exec_us,
        }

    def _stamp_latency(self, packet: Packet, excursions: int,
                       switch_passes: int,
                       hops: Optional[List[dict]] = None) -> None:
        """Record the packet's end-to-end latency (µs) in its metadata.

        Execution time comes from the cycles the functional modules
        actually charged, converted with the clock of the device each
        charge happened on (``cycles_by_device``) — a rack may mix server
        frequencies and SmartNIC clocks, so a single global conversion
        would misattribute latency. Propagation/queueing follows the
        topology's per-bounce model — so rack-measured latency is
        comparable with (and, sampling real cycle counts, usually below)
        the Placer's worst-case estimate.

        Alongside the total, the metadata fields carry the breakdown:
        ``exec_us`` / ``bounce_us`` / ``switch_us`` and (when provided by
        :meth:`inject`) the per-hop ``hops`` records.
        """
        meta = packet.metadata
        queue_factor = self._queue_factor
        exec_us = 0.0
        queue_us = 0.0
        attributed = 0
        for device, cycles in meta.cycles_by_device.items():
            contribution = cycles / self.device_freq(device) * 1e6
            exec_us += contribution
            factor = queue_factor.get(device)
            if factor:
                queue_us += contribution * factor
            attributed += cycles
        # cycles charged outside any rack hop (e.g. a pre-charged packet)
        # fall back to the reference server clock, as before — and never
        # accrue queueing wait (no owning device means no placed core)
        unattributed = meta.cycles_consumed - attributed
        if unattributed > 0:
            exec_us += unattributed / self._fallback_freq * 1e6
        bounce_us = excursions * self.topology.bounce_rtt_us
        switch_us = switch_passes * SWITCH_TRANSIT_US
        meta.fields["exec_us"] = exec_us
        meta.fields["queue_us"] = queue_us
        meta.fields["bounce_us"] = bounce_us
        meta.fields["switch_us"] = switch_us
        total = exec_us + queue_us + bounce_us + switch_us
        interrack = self._interrack.get(meta.chain_id)
        if interrack is not None:
            # remote chain: the fabric round trip rides on every packet
            meta.fields["interrack_us"] = interrack.extra_us
            total += interrack.extra_us
        meta.fields["latency_us"] = total
        if hops is not None:
            meta.fields["hops"] = hops

    def _switch_module(self, cp: ChainPlacement, node_id: str):
        module = self._switch_modules.get(node_id)
        if module is None:
            node = cp.chain.graph.nodes[node_id]
            module = make_nf_module(
                node.nf_class,
                node.params,
                name=f"tor/{node_id}",
                database=self.profiles,
                seed=f"{self.seed}/tor",
            )
            # the PISA/OF pipeline runs at line rate: its NFs transform
            # packets functionally but charge no CPU cycles
            module.database = None
            self._switch_modules[node_id] = module
        return module

    # -- tracing ------------------------------------------------------------------

    def trace_chains(
        self,
        placement: Placement,
        packets_per_chain: int = 32,
    ) -> Dict[str, PacketTraceResult]:
        """Inject packets per chain and report delivery + NF trails,
        including the mean per-hop latency breakdown."""
        results: Dict[str, PacketTraceResult] = {}
        for cp in placement.chains:
            delivered = 0
            dropped = 0
            trail: List[str] = []
            exit_ports: Dict[int, int] = {}
            latency_sum = 0.0
            component_sums = {"exec_us": 0.0, "queue_us": 0.0,
                              "bounce_us": 0.0, "switch_us": 0.0}
            hop_agg: Dict[Tuple[int, str], HopStat] = {}
            hop_exec_sums: Dict[Tuple[int, str], float] = {}
            for index in range(packets_per_chain):
                packet = _chain_packet(cp.chain, index)
                out = self.inject(cp, packet)
                if out is None:
                    dropped += 1
                    continue
                delivered += 1
                if not trail:
                    trail = list(out.metadata.processed_by)
                port = out.metadata.egress_port or 0
                exit_ports[port] = exit_ports.get(port, 0) + 1
                fields = out.metadata.fields
                latency_sum += fields.get("latency_us", 0.0)
                for component in component_sums:
                    component_sums[component] += fields.get(component, 0.0)
                for position, hop in enumerate(fields.get("hops", ())):
                    key = (position, hop["device"])
                    stat = hop_agg.get(key)
                    if stat is None:
                        stat = hop_agg[key] = HopStat(
                            position=position,
                            device=hop["device"],
                            platform=hop["platform"],
                        )
                        hop_exec_sums[key] = 0.0
                    stat.packets += 1
                    stat.cycles += hop["cycles"]
                    hop_exec_sums[key] += hop["exec_us"]
            for key, stat in hop_agg.items():
                if stat.packets:
                    stat.avg_exec_us = hop_exec_sums[key] / stat.packets
            results[cp.name] = PacketTraceResult(
                chain_name=cp.name,
                injected=packets_per_chain,
                delivered=delivered,
                dropped=dropped,
                nf_trail=trail,
                exit_ports=exit_ports,
                avg_latency_us=(latency_sum / delivered) if delivered else 0.0,
                latency_breakdown={
                    component: (total / delivered) if delivered else 0.0
                    for component, total in component_sums.items()
                },
                hops=sorted(hop_agg.values(),
                            key=lambda s: (s.position, s.device)),
            )
        return results

    # -- reporting ----------------------------------------------------------------

    def device_stats(self) -> Dict[str, dict]:
        """Per-device counters for the stats CLI / benchmarks.

        Combines registry counters (packets in/out, drops by reason,
        cycles) with each platform runtime's own bookkeeping (per-module
        rx/tx/drop/cycles for BESS, NIC and OF runtime counters).
        """
        devices: Dict[str, dict] = {}

        # One pass over the registry: index drop counters by device up
        # front instead of rescanning every counter per device.
        drops_by_device: Dict[str, Dict[str, float]] = {}
        for counter in self.obs.counters():
            if counter.name != "rack.device.drops":
                continue
            labels = dict(counter.labels)
            device = labels.get("device", "?")
            drops_by_device.setdefault(device, {})[
                labels.get("reason", "?")
            ] = counter.value

        def base(name: str, platform: str) -> dict:
            return {
                "drops": drops_by_device.get(name, {}),
                "platform": platform,
                "packets_in": self.obs.counter_value(
                    "rack.device.packets_in", device=name),
                "packets_out": self.obs.counter_value(
                    "rack.device.packets_out", device=name),
                "cycles": self.obs.counter_value(
                    "rack.device.cycles", device=name),
            }

        switch = self.topology.switch
        entry = base(switch.name, switch.platform.value)
        if self.of_runtime is not None:
            entry["rx"] = self.of_runtime.rx
            entry["tx"] = self.of_runtime.tx
            entry["rule_drops"] = self.of_runtime.drops
        devices[switch.name] = entry

        for name, runtime in self.servers.items():
            entry = base(name, Platform.SERVER.value)
            entry["modules"] = runtime.pipeline.stats()
            devices[name] = entry

        for name, runtime in self.nics.items():
            entry = base(name, Platform.SMARTNIC.value)
            entry.update({
                "rx": runtime.rx, "tx": runtime.tx,
                "program_drops": runtime.drops,
                "nic_cycles": runtime.cycles_charged,
            })
            devices[name] = entry
        return devices


def _edge_condition_matches(condition: dict, packet: Packet) -> bool:
    if "vlan_tag" in condition:
        vlan = packet.vlan
        if vlan is None or vlan.vid != condition["vlan_tag"]:
            return False
    five = packet.five_tuple()
    if five is not None:
        src, dst, sport, dport, proto = five
        checks = {
            "src_port": sport, "dst_port": dport, "proto": proto,
        }
        for key, actual in checks.items():
            if key in condition and condition[key] != actual:
                return False
    return True


def _chain_packet(chain: NFChain, index: int) -> Packet:
    """Build a packet inside the chain's traffic aggregate."""
    aggregate = chain.aggregate
    src = "10.1.0." + str(index % 200 + 1)
    dst = "10.0.0." + str(index % 200 + 1)
    if aggregate.src_prefix:
        base = aggregate.src_prefix.split("/")[0].rsplit(".", 1)[0]
        src = f"{base}.{index % 200 + 1}"
    if aggregate.dst_prefix:
        base = aggregate.dst_prefix.split("/")[0].rsplit(".", 1)[0]
        dst = f"{base}.{index % 200 + 1}"
    payload = (b"lemur-payload-" + str(index).encode()) * 8
    return Packet.build(
        src_ip=src,
        dst_ip=dst,
        src_port=1024 + index,
        dst_port=aggregate.dst_port or 80,
        proto=aggregate.proto or 6,
        payload=payload,
        total_bytes=SIM_PACKET_BYTES,
    )
