"""Deployed-rack runtime: execute generated code on real packets.

Ties the substrates together the way the testbed does: the ToR runtime
classifies ingress traffic onto service paths and coordinates execution
(§4.1), BESS pipelines built from generated IR run on servers, verified
eBPF programs run on SmartNICs, and generated rules run on an OpenFlow
ToR. Used to validate that generated routing visits every NF of a chain
in order across platforms.

Observability: every injected packet updates the rack's
:class:`~repro.obs.MetricsRegistry` — per-device packets in/out, drops by
reason, and cycles charged — and carries a per-hop latency breakdown
(exec / bounce / switch-transit) in its metadata, which ``trace_chains``
aggregates into :class:`~repro.sim.measurement.PacketTraceResult`.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bess.module import Pipeline
from repro.bess.modules import make_nf_module
from repro.bess.nsh_modules import PortInc, PortOut
from repro.bess.pipeline import build_bess_pipeline
from repro.chain.graph import NFChain
from repro.core.placement import ChainPlacement, Placement
from repro.ebpf.nic import SmartNICRuntime, XDPAction
from repro.exceptions import DataplaneError
from repro.hw.openflow import OpenFlowSwitchModel
from repro.hw.platform import Platform
from repro.hw.topology import Topology
from repro.metacompiler.compiler import CompiledArtifacts
from repro.metacompiler.nsh import ServicePath
from repro.net.packet import Packet
from repro.obs import MetricsRegistry, get_registry
from repro.openflow.switch import OpenFlowRuntime, decode_vid, encode_vid
from repro.profiles.defaults import ProfileDatabase, default_profiles
from repro.sim.measurement import HopStat, PacketTraceResult

_MAX_EVENTS = 1000


@dataclass
class _ServerRuntime:
    pipeline: Pipeline
    port_inc: PortInc
    port_out: PortOut


class DeployedRack:
    """A rack with compiled artifacts installed on every device."""

    def __init__(
        self,
        topology: Topology,
        artifacts: CompiledArtifacts,
        profiles: Optional[ProfileDatabase] = None,
        seed: int = 23,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.topology = topology
        self.artifacts = artifacts
        self.profiles = profiles or default_profiles()
        self.seed = seed
        self.rng = random.Random(f"rack/{seed}")
        self.obs = registry if registry is not None else get_registry()

        self.paths_by_spi: Dict[int, ServicePath] = {
            path.spi: path for path in artifacts.routing.service_paths
        }
        #: (chain name, node-id route) -> service path; replaces the old
        #: O(paths × packets) linear scan in :meth:`classify`.
        self._path_by_route: Dict[Tuple[str, Tuple[str, ...]], ServicePath] = {
            (path.chain_name, tuple(path.node_ids)): path
            for path in artifacts.routing.service_paths
        }

        #: device name -> clock used to convert that device's cycles to time.
        self._freq_by_device: Dict[str, float] = {
            server.name: server.freq_hz for server in topology.servers
        }
        self._freq_by_device.update(
            {nic.name: nic.freq_hz for nic in topology.smartnics}
        )
        self._fallback_freq = (
            topology.servers[0].freq_hz if topology.servers else 1.7e9
        )

        self.servers: Dict[str, _ServerRuntime] = {}
        for server_name, ir in artifacts.bess.items():
            pipeline, port_inc, port_out, _sched = build_bess_pipeline(
                ir, self.profiles, seed=seed,
                freq_hz=topology.server(server_name).freq_hz,
            )
            self.servers[server_name] = _ServerRuntime(
                pipeline=pipeline, port_inc=port_inc, port_out=port_out
            )

        self.nics: Dict[str, SmartNICRuntime] = {}
        for nic_name, (program, nf_specs) in artifacts.ebpf.items():
            runtime = SmartNICRuntime(
                topology.smartnic(nic_name), self.profiles, seed=seed
            )
            runtime.load(program, nf_specs)
            self.nics[nic_name] = runtime

        self.of_runtime: Optional[OpenFlowRuntime] = None
        if isinstance(topology.switch, OpenFlowSwitchModel):
            self.of_runtime = OpenFlowRuntime(topology.switch)
            self.of_runtime.install_all(artifacts.openflow_rules)

        #: functional modules for switch-placed NFs, keyed by node id
        self._switch_modules: Dict[str, object] = {}

    # -- observability helpers ---------------------------------------------------

    def device_freq(self, device: str) -> float:
        return self._freq_by_device.get(device, self._fallback_freq)

    def _count_device(self, counter: str, device: str, n: int = 1) -> None:
        self.obs.counter(f"rack.device.{counter}", device=device).inc(n)

    def _count_drop(self, chain: str, device: str, reason: str) -> None:
        self.obs.counter(
            "rack.packets.dropped", chain=chain, reason=reason
        ).inc()
        self.obs.counter(
            "rack.device.drops", device=device, reason=reason
        ).inc()

    # -- classification ---------------------------------------------------------

    def classify(self, chain_placement: ChainPlacement, packet: Packet
                 ) -> ServicePath:
        """Pick the service path a packet takes through a chain.

        Walks the chain DAG evaluating branch-arm conditions against the
        packet (vlan tag / 5-tuple fields); unconditional splits choose by
        a stable flow hash weighted with the operators' split estimates.
        This is the switch's initial SPI/SI classification (§4.1).
        """
        graph = chain_placement.chain.graph
        node_path: List[str] = []
        (current,) = graph.entry_nodes()
        while True:
            node_path.append(current)
            edges = graph.out_edges(current)
            if not edges:
                break
            if len(edges) == 1:
                current = edges[0].dst
                continue
            conditioned = [e for e in edges if e.condition]
            chosen = None
            for edge in conditioned:
                if _edge_condition_matches(edge.condition, packet):
                    chosen = edge
                    break
            if chosen is None:
                unconditioned = [e for e in edges if not e.condition]
                pool = unconditioned or edges
                digest = zlib.crc32(repr(packet.five_tuple()).encode())
                total = sum(e.fraction for e in pool)
                point = (digest % 10_000) / 10_000 * total
                acc = 0.0
                chosen = pool[-1]
                for edge in pool:
                    acc += edge.fraction
                    if point < acc:
                        chosen = edge
                        break
            current = chosen.dst
        path = self._path_by_route.get(
            (chain_placement.name, tuple(node_path))
        )
        if path is not None:
            return path
        raise DataplaneError(
            f"no service path matches route {node_path} of chain "
            f"{chain_placement.name}"
        )

    # -- event loop ---------------------------------------------------------------

    def inject(self, chain_placement: ChainPlacement, packet: Packet
               ) -> Optional[Packet]:
        """Run one packet through its chain; returns it on egress, None if
        dropped anywhere."""
        path = self.classify(chain_placement, packet)
        packet.metadata.chain_id = chain_placement.name
        self.obs.counter(
            "rack.packets.injected", chain=chain_placement.name
        ).inc()
        spi, si = path.spi, path.si_of[path.node_ids[0]]
        excursions = 0
        switch_passes = 1
        hops: List[dict] = []

        for _ in range(_MAX_EVENTS):
            path = self.paths_by_spi.get(spi)
            if path is None:
                raise DataplaneError(f"unknown SPI {spi}")
            if si == 0:
                self._finish(chain_placement, packet, excursions,
                             switch_passes, hops)
                return packet  # chain complete: egress at the ToR
            hop_index = _hop_index_for(path, si)
            hop = path.hops[hop_index]
            nxt = path.hop_after(hop_index)

            if hop.device == self.topology.switch.name:
                self._count_device("packets_in", hop.device)
                survived = self._run_switch_hop(chain_placement, hop, packet)
                if not survived:
                    reason = ("openflow_rule" if self.of_runtime is not None
                              else "switch_nf")
                    self._count_drop(chain_placement.name, hop.device, reason)
                    return None
                self._count_device("packets_out", hop.device)
                hops.append({
                    "device": hop.device, "platform": hop.platform,
                    "cycles": 0, "exec_us": 0.0,
                })
                if nxt is None:
                    self._finish(chain_placement, packet, excursions,
                                 switch_passes, hops)
                    return packet
                spi, si = path.spi, nxt.entry_si
                continue

            excursions += 1
            switch_passes += 1
            before_total = packet.metadata.cycles_consumed
            before_attr = dict(packet.metadata.cycles_by_device)
            self._count_device("packets_in", hop.device)
            if hop.platform == Platform.SERVER.value:
                out = self._run_server_hop(hop.device, packet, spi, si)
                reason = "server_pipeline"
            elif hop.platform == Platform.SMARTNIC.value:
                out = self._run_nic_hop(hop.device, packet, spi, si)
                reason = "nic_program"
            else:
                raise DataplaneError(f"unexpected hop platform {hop.platform}")
            if out is None:
                self._count_drop(chain_placement.name, hop.device, reason)
                return None
            self._count_device("packets_out", hop.device)
            hops.append(self._attribute_hop(
                hop, out, before_total, before_attr
            ))
            packet = out
            nsh = packet.pop_nsh()
            if nsh is None:
                raise DataplaneError(
                    f"packet returned from {hop.device} without NSH"
                )
            spi, si = nsh.spi, nsh.si
        raise DataplaneError("packet exceeded the rack event budget (loop?)")

    def _attribute_hop(self, hop, out: Packet, before_total: int,
                       before_attr: Dict[str, int]) -> dict:
        """Charge the hop's cycle delta to its device and build the
        per-hop record.

        Cycles charged by platform runtimes that know their device (the
        SmartNIC) arrive already attributed in ``cycles_by_device``; the
        remainder (BESS modules charge ``cycles_consumed`` only) belongs
        to the device the hop ran on.
        """
        meta = out.metadata
        total_delta = meta.cycles_consumed - before_total
        attributed_delta = sum(meta.cycles_by_device.values()) - sum(
            before_attr.values()
        )
        unattributed = total_delta - attributed_delta
        if unattributed:
            meta.cycles_by_device[hop.device] = (
                meta.cycles_by_device.get(hop.device, 0) + unattributed
            )
        exec_us = 0.0
        for device, cycles in meta.cycles_by_device.items():
            delta = cycles - before_attr.get(device, 0)
            if delta:
                exec_us += delta / self.device_freq(device) * 1e6
                self._count_device("cycles", device, delta)
        return {
            "device": hop.device, "platform": hop.platform,
            "cycles": total_delta, "exec_us": exec_us,
        }

    def _finish(self, chain_placement: ChainPlacement, packet: Packet,
                excursions: int, switch_passes: int,
                hops: Optional[List[dict]] = None) -> None:
        """Stamp latency and record the delivery in the registry."""
        self._stamp_latency(packet, excursions, switch_passes, hops)
        name = chain_placement.name
        self.obs.counter("rack.packets.delivered", chain=name).inc()
        fields = packet.metadata.fields
        self.obs.histogram("rack.latency_us", chain=name).observe(
            fields["latency_us"]
        )
        for component in ("exec_us", "bounce_us", "switch_us"):
            self.obs.histogram(
                "rack.latency_component_us", chain=name, component=component
            ).observe(fields[component])

    def _stamp_latency(self, packet: Packet, excursions: int,
                       switch_passes: int,
                       hops: Optional[List[dict]] = None) -> None:
        """Record the packet's end-to-end latency (µs) in its metadata.

        Execution time comes from the cycles the functional modules
        actually charged, converted with the clock of the device each
        charge happened on (``cycles_by_device``) — a rack may mix server
        frequencies and SmartNIC clocks, so a single global conversion
        would misattribute latency. Propagation/queueing follows the
        topology's per-bounce model — so rack-measured latency is
        comparable with (and, sampling real cycle counts, usually below)
        the Placer's worst-case estimate.

        Alongside the total, the metadata fields carry the breakdown:
        ``exec_us`` / ``bounce_us`` / ``switch_us`` and (when provided by
        :meth:`inject`) the per-hop ``hops`` records.
        """
        from repro.core.rates import SWITCH_TRANSIT_US

        meta = packet.metadata
        exec_us = 0.0
        attributed = 0
        for device, cycles in meta.cycles_by_device.items():
            exec_us += cycles / self.device_freq(device) * 1e6
            attributed += cycles
        # cycles charged outside any rack hop (e.g. a pre-charged packet)
        # fall back to the reference server clock, as before
        unattributed = meta.cycles_consumed - attributed
        if unattributed > 0:
            exec_us += unattributed / self._fallback_freq * 1e6
        bounce_us = excursions * self.topology.bounce_rtt_us
        switch_us = switch_passes * SWITCH_TRANSIT_US
        meta.fields["exec_us"] = exec_us
        meta.fields["bounce_us"] = bounce_us
        meta.fields["switch_us"] = switch_us
        meta.fields["latency_us"] = exec_us + bounce_us + switch_us
        if hops is not None:
            meta.fields["hops"] = hops

    def _run_switch_hop(self, cp: ChainPlacement, hop, packet: Packet) -> bool:
        """Execute switch-placed NFs functionally (line-rate pipeline)."""
        if self.of_runtime is not None:
            vid = encode_vid(
                *_of_coordinates(self.paths_by_spi, hop)
            )
            if packet.vlan is None:
                packet.push_vlan(vid)
            else:
                packet.vlan.vid = vid
                packet.commit()
            result = self.of_runtime.process(packet)
            if result.dropped:
                return False
            packet.pop_vlan()
            return True
        for nid in hop.node_ids:
            module = self._switch_module(cp, nid)
            outputs = module.receive(packet)
            if not outputs:
                return False
        return True

    def _switch_module(self, cp: ChainPlacement, node_id: str):
        module = self._switch_modules.get(node_id)
        if module is None:
            node = cp.chain.graph.nodes[node_id]
            module = make_nf_module(
                node.nf_class,
                node.params,
                name=f"tor/{node_id}",
                database=self.profiles,
                seed=f"{self.seed}/tor",
            )
            # the PISA/OF pipeline runs at line rate: its NFs transform
            # packets functionally but charge no CPU cycles
            module.database = None
            self._switch_modules[node_id] = module
        return module

    def _run_server_hop(self, server: str, packet: Packet,
                        spi: int, si: int) -> Optional[Packet]:
        runtime = self.servers.get(server)
        if runtime is None:
            raise DataplaneError(f"no BESS pipeline deployed on {server}")
        packet.push_nsh(spi, si)
        runtime.pipeline.push(packet, entry=runtime.port_inc.name)
        emitted = runtime.port_out.drain()
        if not emitted:
            return None
        if len(emitted) != 1:
            raise DataplaneError(
                f"{server}: expected one packet out, got {len(emitted)}"
            )
        return emitted[0]

    def _run_nic_hop(self, nic: str, packet: Packet,
                     spi: int, si: int) -> Optional[Packet]:
        runtime = self.nics.get(nic)
        if runtime is None:
            raise DataplaneError(f"no eBPF program loaded on {nic}")
        packet.push_nsh(spi, si)
        action, out = runtime.process(packet)
        if action is not XDPAction.TX:
            return None
        return out

    # -- tracing ------------------------------------------------------------------

    def trace_chains(
        self,
        placement: Placement,
        packets_per_chain: int = 32,
    ) -> Dict[str, PacketTraceResult]:
        """Inject packets per chain and report delivery + NF trails,
        including the mean per-hop latency breakdown."""
        results: Dict[str, PacketTraceResult] = {}
        for cp in placement.chains:
            delivered = 0
            dropped = 0
            trail: List[str] = []
            exit_ports: Dict[int, int] = {}
            latency_sum = 0.0
            component_sums = {"exec_us": 0.0, "bounce_us": 0.0,
                              "switch_us": 0.0}
            hop_agg: Dict[Tuple[int, str], HopStat] = {}
            hop_exec_sums: Dict[Tuple[int, str], float] = {}
            for index in range(packets_per_chain):
                packet = _chain_packet(cp.chain, index)
                out = self.inject(cp, packet)
                if out is None:
                    dropped += 1
                    continue
                delivered += 1
                if not trail:
                    trail = list(out.metadata.processed_by)
                port = out.metadata.egress_port or 0
                exit_ports[port] = exit_ports.get(port, 0) + 1
                fields = out.metadata.fields
                latency_sum += fields.get("latency_us", 0.0)
                for component in component_sums:
                    component_sums[component] += fields.get(component, 0.0)
                for position, hop in enumerate(fields.get("hops", ())):
                    key = (position, hop["device"])
                    stat = hop_agg.get(key)
                    if stat is None:
                        stat = hop_agg[key] = HopStat(
                            position=position,
                            device=hop["device"],
                            platform=hop["platform"],
                        )
                        hop_exec_sums[key] = 0.0
                    stat.packets += 1
                    stat.cycles += hop["cycles"]
                    hop_exec_sums[key] += hop["exec_us"]
            for key, stat in hop_agg.items():
                if stat.packets:
                    stat.avg_exec_us = hop_exec_sums[key] / stat.packets
            results[cp.name] = PacketTraceResult(
                chain_name=cp.name,
                injected=packets_per_chain,
                delivered=delivered,
                dropped=dropped,
                nf_trail=trail,
                exit_ports=exit_ports,
                avg_latency_us=(latency_sum / delivered) if delivered else 0.0,
                latency_breakdown={
                    component: (total / delivered) if delivered else 0.0
                    for component, total in component_sums.items()
                },
                hops=sorted(hop_agg.values(),
                            key=lambda s: (s.position, s.device)),
            )
        return results

    # -- reporting ----------------------------------------------------------------

    def device_stats(self) -> Dict[str, dict]:
        """Per-device counters for the stats CLI / benchmarks.

        Combines registry counters (packets in/out, drops by reason,
        cycles) with each platform runtime's own bookkeeping (per-module
        rx/tx/drop/cycles for BESS, NIC and OF runtime counters).
        """
        devices: Dict[str, dict] = {}

        def base(name: str, platform: str) -> dict:
            drops: Dict[str, float] = {}
            for counter in self.obs.counters():
                labels = dict(counter.labels)
                if (counter.name == "rack.device.drops"
                        and labels.get("device") == name):
                    drops[labels.get("reason", "?")] = counter.value
            return {
                "platform": platform,
                "packets_in": self.obs.counter_value(
                    "rack.device.packets_in", device=name),
                "packets_out": self.obs.counter_value(
                    "rack.device.packets_out", device=name),
                "cycles": self.obs.counter_value(
                    "rack.device.cycles", device=name),
                "drops": drops,
            }

        switch = self.topology.switch
        entry = base(switch.name, switch.platform.value)
        if self.of_runtime is not None:
            entry["rx"] = self.of_runtime.rx
            entry["tx"] = self.of_runtime.tx
            entry["rule_drops"] = self.of_runtime.drops
        devices[switch.name] = entry

        for name, runtime in self.servers.items():
            entry = base(name, Platform.SERVER.value)
            entry["modules"] = runtime.pipeline.stats()
            devices[name] = entry

        for name, runtime in self.nics.items():
            entry = base(name, Platform.SMARTNIC.value)
            entry.update({
                "rx": runtime.rx, "tx": runtime.tx,
                "program_drops": runtime.drops,
                "nic_cycles": runtime.cycles_charged,
            })
            devices[name] = entry
        return devices


def _hop_index_for(path: ServicePath, si: int) -> int:
    for index, hop in enumerate(path.hops):
        if hop.entry_si == si:
            return index
    raise DataplaneError(
        f"SPI {path.spi}: no hop enters at SI {si} "
        f"(hops at {[h.entry_si for h in path.hops]})"
    )


def _edge_condition_matches(condition: dict, packet: Packet) -> bool:
    if "vlan_tag" in condition:
        vlan = packet.vlan
        if vlan is None or vlan.vid != condition["vlan_tag"]:
            return False
    five = packet.five_tuple()
    if five is not None:
        src, dst, sport, dport, proto = five
        checks = {
            "src_port": sport, "dst_port": dport, "proto": proto,
        }
        for key, actual in checks.items():
            if key in condition and condition[key] != actual:
                return False
    return True


def _of_coordinates(paths_by_spi: Dict[int, ServicePath], hop
                    ) -> Tuple[int, int]:
    """(SPI, path-position) pair matching the OF rule generator's
    6-bit VLAN encoding (position = INITIAL_SI - entry SI)."""
    from repro.metacompiler.nsh import INITIAL_SI

    for path in paths_by_spi.values():
        if hop in path.hops:
            return path.spi, INITIAL_SI - hop.entry_si
    raise DataplaneError("hop does not belong to any service path")


def _chain_packet(chain: NFChain, index: int) -> Packet:
    """Build a packet inside the chain's traffic aggregate."""
    aggregate = chain.aggregate
    src = "10.1.0." + str(index % 200 + 1)
    dst = "10.0.0." + str(index % 200 + 1)
    if aggregate.src_prefix:
        base = aggregate.src_prefix.split("/")[0].rsplit(".", 1)[0]
        src = f"{base}.{index % 200 + 1}"
    if aggregate.dst_prefix:
        base = aggregate.dst_prefix.split("/")[0].rsplit(".", 1)[0]
        dst = f"{base}.{index % 200 + 1}"
    payload = (b"lemur-payload-" + str(index).encode()) * 8
    return Packet.build(
        src_ip=src,
        dst_ip=dst,
        src_port=1024 + index,
        dst_port=aggregate.dst_port or 80,
        proto=aggregate.proto or 6,
        payload=payload,
        total_bytes=512,
    )
