"""Measurement records produced by the testbed simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: registered queueing-delay model kinds (see :class:`QueueingModel`).
QUEUEING_MODELS = ("none", "mm1")


@dataclass(frozen=True)
class QueueingModel:
    """Utilization-dependent queueing delay at a placed core.

    The fixed-cost latency model charges each hop its service time
    ``s = cycles / freq``; under load the sojourn time of an M/M/1 queue
    is ``s / (1 - rho)`` for utilization ``rho``. This model expresses
    the *extra* wait as a multiplier on the service time::

        queue_us = exec_us * delay_factor(rho)
        delay_factor(rho) = rho / (1 - rho)        # kind="mm1"

    so total sojourn ``exec_us + queue_us == exec_us / (1 - rho)``. At
    ``rho == 0`` the factor is 0 and the model degenerates to the
    fixed-cost baseline. ``rho`` is clamped to ``max_utilization`` so a
    momentarily saturated device yields a large-but-finite delay instead
    of a singularity (the "saturation clamp" the unit suite pins).

    ``kind="none"`` is the identity model: every factor is 0.0 and the
    stamped ``queue_us`` stays 0 in both dataplane paths, preserving
    historical latency numbers byte-for-byte.
    """

    kind: str = "none"
    #: utilization ceiling fed into the delay curve (the clamp).
    max_utilization: float = 0.95

    def __post_init__(self) -> None:
        if self.kind not in QUEUEING_MODELS:
            raise ValueError(
                f"unknown queueing model {self.kind!r}; "
                f"choose from {list(QUEUEING_MODELS)}"
            )
        if not 0.0 < self.max_utilization < 1.0:
            raise ValueError(
                f"max_utilization must be in (0, 1), "
                f"got {self.max_utilization}"
            )

    @property
    def enabled(self) -> bool:
        return self.kind != "none"

    def delay_factor(self, utilization: float) -> float:
        """Queue-delay multiplier on service time at ``utilization``.

        Monotone non-decreasing in utilization; 0.0 at or below zero
        load; capped at ``delay_factor(max_utilization)`` (the clamp).
        """
        if self.kind == "none":
            return 0.0
        rho = min(max(utilization, 0.0), self.max_utilization)
        return rho / (1.0 - rho)


@dataclass
class ChainMeasurement:
    """Measured behaviour of one chain under a deployed placement."""

    chain_name: str
    offered_mbps: float
    achieved_mbps: float
    predicted_mbps: float
    t_min_mbps: float
    latency_us: float = 0.0

    @property
    def marginal_mbps(self) -> float:
        return max(0.0, self.achieved_mbps - self.t_min_mbps)

    @property
    def slo_met(self) -> bool:
        return self.achieved_mbps + 1e-6 >= self.t_min_mbps

    @property
    def prediction_error(self) -> float:
        """(measured − predicted) / predicted; positive = conservative."""
        if self.predicted_mbps <= 0:
            return 0.0
        return (self.achieved_mbps - self.predicted_mbps) / self.predicted_mbps


@dataclass
class HopStat:
    """Aggregated per-hop execution accounting for one chain's trace.

    ``position`` is the hop's index along the service path; ``cycles`` are
    summed on the owning device's clock, and ``avg_exec_us`` already uses
    that device's frequency for the conversion.
    """

    position: int
    device: str
    platform: str
    packets: int = 0
    cycles: int = 0
    avg_exec_us: float = 0.0


@dataclass
class PacketTraceResult:
    """Outcome of packet-level execution through generated pipelines."""

    chain_name: str
    injected: int
    delivered: int
    dropped: int
    nf_trail: List[str] = field(default_factory=list)
    exit_ports: Dict[int, int] = field(default_factory=dict)
    #: mean end-to-end latency over delivered packets (µs)
    avg_latency_us: float = 0.0
    #: mean exec_us / bounce_us / switch_us components (µs)
    latency_breakdown: Dict[str, float] = field(default_factory=dict)
    #: per-hop execution breakdown, ordered along the service path
    hops: List[HopStat] = field(default_factory=list)
