"""Measurement records produced by the testbed simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class ChainMeasurement:
    """Measured behaviour of one chain under a deployed placement."""

    chain_name: str
    offered_mbps: float
    achieved_mbps: float
    predicted_mbps: float
    t_min_mbps: float
    latency_us: float = 0.0

    @property
    def marginal_mbps(self) -> float:
        return max(0.0, self.achieved_mbps - self.t_min_mbps)

    @property
    def slo_met(self) -> bool:
        return self.achieved_mbps + 1e-6 >= self.t_min_mbps

    @property
    def prediction_error(self) -> float:
        """(measured − predicted) / predicted; positive = conservative."""
        if self.predicted_mbps <= 0:
            return 0.0
        return (self.achieved_mbps - self.predicted_mbps) / self.predicted_mbps


@dataclass
class PacketTraceResult:
    """Outcome of packet-level execution through generated pipelines."""

    chain_name: str
    injected: int
    delivered: int
    dropped: int
    nf_trail: List[str] = field(default_factory=list)
    exit_ports: Dict[int, int] = field(default_factory=dict)
