"""Measurement records produced by the testbed simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class ChainMeasurement:
    """Measured behaviour of one chain under a deployed placement."""

    chain_name: str
    offered_mbps: float
    achieved_mbps: float
    predicted_mbps: float
    t_min_mbps: float
    latency_us: float = 0.0

    @property
    def marginal_mbps(self) -> float:
        return max(0.0, self.achieved_mbps - self.t_min_mbps)

    @property
    def slo_met(self) -> bool:
        return self.achieved_mbps + 1e-6 >= self.t_min_mbps

    @property
    def prediction_error(self) -> float:
        """(measured − predicted) / predicted; positive = conservative."""
        if self.predicted_mbps <= 0:
            return 0.0
        return (self.achieved_mbps - self.predicted_mbps) / self.predicted_mbps


@dataclass
class HopStat:
    """Aggregated per-hop execution accounting for one chain's trace.

    ``position`` is the hop's index along the service path; ``cycles`` are
    summed on the owning device's clock, and ``avg_exec_us`` already uses
    that device's frequency for the conversion.
    """

    position: int
    device: str
    platform: str
    packets: int = 0
    cycles: int = 0
    avg_exec_us: float = 0.0


@dataclass
class PacketTraceResult:
    """Outcome of packet-level execution through generated pipelines."""

    chain_name: str
    injected: int
    delivered: int
    dropped: int
    nf_trail: List[str] = field(default_factory=list)
    exit_ports: Dict[int, int] = field(default_factory=dict)
    #: mean end-to-end latency over delivered packets (µs)
    avg_latency_us: float = 0.0
    #: mean exec_us / bounce_us / switch_us components (µs)
    latency_breakdown: Dict[str, float] = field(default_factory=dict)
    #: per-hop execution breakdown, ordered along the service path
    hops: List[HopStat] = field(default_factory=list)
