"""Rack testbed simulator (§5.1 Experiment setup / Metrics).

Deploys a :class:`~repro.core.placement.Placement` onto the simulated rack
and measures aggregate throughput: per-subgroup capacities are re-sampled
from profile distributions with NUMA-aware socket assignment (so measured
rates usually land slightly *above* the Placer's worst-case predictions,
§5.2), the shared server NIC is water-filled max-min fairly, and t_max is
enforced by rate limiting at chain entry.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bess.perfsim import ServerPerfModel, SubgroupLoad, waterfill_nic
from repro.core.placement import ChainPlacement, Placement
from repro.exceptions import DataplaneError
from repro.hw.platform import Platform
from repro.hw.spec import topology_for
from repro.hw.topology import Topology
from repro.profiles.defaults import ProfileDatabase, default_profiles
from repro.sim.measurement import ChainMeasurement
from repro.units import DEFAULT_PACKET_BITS


@dataclass
class TestbedReport:
    """Aggregate measurement of one placement execution."""

    measurements: List[ChainMeasurement] = field(default_factory=list)

    @property
    def aggregate_throughput_mbps(self) -> float:
        return sum(m.achieved_mbps for m in self.measurements)

    @property
    def aggregate_marginal_mbps(self) -> float:
        return sum(m.marginal_mbps for m in self.measurements)

    @property
    def all_slos_met(self) -> bool:
        return all(m.slo_met for m in self.measurements)

    def for_chain(self, name: str) -> ChainMeasurement:
        for m in self.measurements:
            if m.chain_name == name:
                return m
        raise KeyError(name)


class TestbedSimulator:
    """Executes placements on the simulated rack."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        topology: Optional[Topology] = None,
        profiles: Optional[ProfileDatabase] = None,
        packet_bits: int = DEFAULT_PACKET_BITS,
        seed: int = 23,
    ):
        self.topology = topology or topology_for("paper-testbed").build()
        self.profiles = profiles or default_profiles()
        self.packet_bits = packet_bits
        self.seed = seed

    def run(self, placement: Placement) -> TestbedReport:
        """Measure a feasible placement (fluid model).

        The traffic generator saturates each chain up to its t_max; chains
        achieve the minimum of their sampled subgroup capacities, SmartNIC
        caps, and their fair share of each server NIC.
        """
        if not placement.feasible:
            raise DataplaneError(
                "refusing to execute an infeasible placement "
                f"({placement.infeasible_reason})"
            )
        rng = random.Random(self.seed)

        # sample per-chain capacity limits
        unconstrained: Dict[str, float] = {}
        per_server_models = {
            server.name: ServerPerfModel(server, self.profiles,
                                         seed=self.seed)
            for server in self.topology.servers
        }
        loads_by_server: Dict[str, List[SubgroupLoad]] = {
            name: [] for name in per_server_models
        }
        load_of: Dict[str, SubgroupLoad] = {}
        for cp in placement.chains:
            for sg in cp.subgroups:
                load = SubgroupLoad(
                    sg_id=sg.sg_id,
                    chain_name=cp.name,
                    cores=sg.cores,
                    nf_costs=self._nf_costs(cp, sg),
                    demux_penalty=not self.topology.metron_steering,
                )
                loads_by_server[sg.server].append(load)
                load_of[sg.sg_id] = load
        for server_name, loads in loads_by_server.items():
            per_server_models[server_name].assign_sockets(loads)

        port_rate = getattr(self.topology.switch, "port_rate_mbps", math.inf)
        for cp in placement.chains:
            caps = [min(cp.chain.slo.t_max, port_rate)]
            for sg in cp.subgroups:
                model = per_server_models[sg.server]
                caps.append(
                    model.subgroup_capacity_mbps(
                        load_of[sg.sg_id], self.packet_bits
                    )
                )
            caps.extend(cp.nic_caps.values())
            unconstrained[cp.name] = min(caps)

        # shared NIC water-filling per server
        achieved = dict(unconstrained)
        for server in self.topology.servers:
            visits = {
                cp.name: cp.server_visits.get(server.name, 0.0)
                for cp in placement.chains
            }
            achieved = waterfill_nic(
                achieved, visits, server.primary_nic().rate_mbps
            )

        report = TestbedReport()
        for cp in placement.chains:
            predicted = placement.rates.get(cp.name, cp.estimated_rate)
            measured = achieved[cp.name] * rng.uniform(0.998, 1.002)
            report.measurements.append(
                ChainMeasurement(
                    chain_name=cp.name,
                    offered_mbps=min(cp.chain.slo.t_max, port_rate),
                    achieved_mbps=measured,
                    predicted_mbps=predicted,
                    t_min_mbps=cp.chain.slo.t_min,
                    latency_us=cp.latency_us,
                )
            )
        return report

    def _nf_costs(self, cp: ChainPlacement, sg) -> List[tuple]:
        fractions = cp.chain.graph.node_fractions()
        out = []
        for nid in sg.node_ids:
            node = cp.chain.graph.nodes[nid]
            out.append((node.nf_class, node.params, fractions[nid]))
        return out

    # -- packet-level execution ------------------------------------------------

    def run_packets(
        self,
        placement: Placement,
        packets_per_chain: int = 32,
    ) -> Dict[str, "object"]:
        """Drive real packets through meta-compiler-generated pipelines.

        Returns per-chain :class:`PacketTraceResult`s; used to validate
        that generated routing visits every NF in order across platforms.
        """
        from repro.metacompiler.compiler import MetaCompiler
        from repro.sim.runtime import DeployedRack

        meta = MetaCompiler(
            topology=self.topology, profiles=self.profiles
        )
        artifacts = meta.compile_placement(placement)
        rack = DeployedRack(
            topology=self.topology,
            artifacts=artifacts,
            profiles=self.profiles,
            seed=self.seed,
        )
        return rack.trace_chains(placement, packets_per_chain)
