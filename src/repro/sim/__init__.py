"""Testbed simulator: deploy a placement and measure what it achieves."""

from repro.sim.testbed import TestbedSimulator, TestbedReport
from repro.sim.measurement import ChainMeasurement
from repro.sim.traffic import ChainTrafficReport, TrafficEngine, TrafficReport
from repro.sim.faults import (
    ChaosEngine,
    ChaosReport,
    ChaosSpec,
    FaultEvent,
    FaultTimeline,
    GuardConfig,
    PhaseReport,
    run_chaos,
    run_chaos_checked,
)

__all__ = [
    "TestbedSimulator",
    "TestbedReport",
    "ChainMeasurement",
    "TrafficEngine",
    "TrafficReport",
    "ChainTrafficReport",
    "ChaosEngine",
    "ChaosReport",
    "ChaosSpec",
    "FaultEvent",
    "FaultTimeline",
    "GuardConfig",
    "PhaseReport",
    "run_chaos",
    "run_chaos_checked",
]
