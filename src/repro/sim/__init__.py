"""Testbed simulator: deploy a placement and measure what it achieves."""

from repro.sim.testbed import TestbedSimulator, TestbedReport
from repro.sim.measurement import ChainMeasurement
from repro.sim.traffic import ChainTrafficReport, TrafficEngine, TrafficReport

__all__ = [
    "TestbedSimulator",
    "TestbedReport",
    "ChainMeasurement",
    "TrafficEngine",
    "TrafficReport",
    "ChainTrafficReport",
]
