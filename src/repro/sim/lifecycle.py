"""Online chain lifecycle: arrivals, scaling, departures (§7, online).

A static placement answers "can this chain set meet its SLOs?" once. An
operator's rack answers it continuously: tenants arrive with an SLO,
scale their minimum rate, and leave — and every transition must preserve
the already-admitted chains' guarantees without redeploying the world.
This module closes that loop:

* :class:`ChainEvent` / :class:`LifecycleTimeline` — a deterministic,
  seedable schedule of lifecycle events (``arrive`` with a spec + SLO,
  ``scale`` of t_min, ``depart``) keyed by integer ticks. Events sharing
  a tick are applied departures-first, so capacity freed at a tick is
  visible to that tick's admissions.
* :class:`LifecycleEngine` — replays the timeline against a live
  :class:`~repro.sim.runtime.DeployedRack` driven by the
  :class:`~repro.sim.traffic.TrafficEngine`. Each event goes through
  **admission control**: the proposed chain set is solved incrementally
  (:class:`~repro.core.placer.PlacementRequest` with ``base_placement``
  — existing chains keep their NF→device assignments and are only ever
  shrunk to their t_min floor, never below), and an infeasible solve
  rejects the event with its binding constraint instead of evicting an
  admitted chain. Accepted transitions go through the meta-compiler and
  a **delta redeploy** (:meth:`~repro.sim.runtime.DeployedRack.redeploy`)
  that rebuilds only devices whose generated programs changed.
* :class:`AdmissionDecision` / :class:`LifecycleReport` — one typed
  decision per event (accepted or rejected + reason, solve mode, pin
  counts, per-device redeploy actions) and a per-phase SLO compliance
  table whose rendering is byte-identical across repeated runs and
  ``--jobs`` settings.

Observability: ``lifecycle.events{action=...}``,
``lifecycle.admission{decision=accepted|rejected}``,
``lifecycle.evictions_averted`` (rejections whose binding constraint was
an admitted chain's t_min floor), the ``lifecycle.active_chains`` gauge,
``placer.solve.seconds{mode=incremental|full}`` timings from the solver,
and ``rack.redeploy.devices{action=...}`` from the delta redeploy.
"""

from __future__ import annotations

import json
import pickle
import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chain.graph import NFChain, chains_from_spec
from repro.chain.slo import SLO
from repro.core.cache import PlacementCache
from repro.core.placer import Placer, PlacerConfig, PlacementRequest
from repro.exceptions import LifecycleError, PlacementError, SpecError
from repro.hw.topology import (
    Topology,
    default_testbed,
    multi_server_testbed,
)
from repro.metacompiler.compiler import MetaCompiler
from repro.obs import MetricsRegistry, get_registry
from repro.profiles.defaults import ProfileDatabase, default_profiles
from repro.sim.faults import _SLO_RTOL, PhaseReport
from repro.sim.runtime import DeployedRack
from repro.sim.traffic import ChainTrafficReport, TrafficEngine

LIFECYCLE_ACTIONS = ("arrive", "scale", "depart")

#: within a tick, departures free capacity before admissions consume it.
_ACTION_ORDER = {"depart": 0, "scale": 1, "arrive": 2}


# ---------------------------------------------------------------------------
# timeline
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChainEvent:
    """One lifecycle transition, fired at integer tick ``at``.

    ``arrive`` carries the chain's DSL ``spec`` (one ``chain <name>: ...``
    line whose name must equal ``chain``) plus its SLO in Mbps; ``scale``
    carries the new ``t_min_mbps`` (and optionally a new ``t_max_mbps``);
    ``depart`` needs only the chain name.
    """

    at: int
    action: str
    chain: str
    spec: str = ""
    t_min_mbps: float = 0.0
    t_max_mbps: float = float("inf")
    d_max_us: float = float("inf")

    def describe(self) -> str:
        extra = ""
        if self.action == "arrive":
            extra = f" t_min={self.t_min_mbps:g} t_max={self.t_max_mbps:g}"
        elif self.action == "scale":
            extra = f" t_min={self.t_min_mbps:g}"
        return f"t{self.at} {self.action} {self.chain}{extra}"


@dataclass(frozen=True)
class LifecycleTimeline:
    """An ordered, validated schedule of :class:`ChainEvent`.

    ``seed`` feeds :meth:`random` synthesis and the rack's deterministic
    drop hash, so (seed, timeline) fully determines a lifecycle run.
    """

    events: Tuple[ChainEvent, ...] = ()
    seed: int = 23

    def sorted_events(self) -> List[ChainEvent]:
        """Events by (tick, depart<scale<arrive, declaration order)."""
        return [
            ev for _, ev in sorted(
                enumerate(self.events),
                key=lambda pair: (
                    pair[1].at, _ACTION_ORDER[pair[1].action], pair[0]
                ),
            )
        ]

    def validate(self) -> None:
        """Reject statically-malformed events (unknown actions, bad SLOs,
        arrival specs that don't parse or don't match the event name)."""
        for ev in self.events:
            if ev.action not in LIFECYCLE_ACTIONS:
                raise LifecycleError(
                    f"unknown lifecycle action {ev.action!r}; "
                    f"choose from {sorted(LIFECYCLE_ACTIONS)}"
                )
            if ev.at < 0:
                raise LifecycleError(
                    f"event {ev.describe()!r}: tick must be >= 0"
                )
            if not ev.chain:
                raise LifecycleError("every event names a chain")
            if ev.action == "arrive":
                if not ev.spec.strip():
                    raise LifecycleError(
                        f"arrival of {ev.chain!r} carries no chain spec"
                    )
                try:
                    parsed = chains_from_spec(ev.spec)
                except SpecError as exc:
                    raise LifecycleError(
                        f"arrival spec for {ev.chain!r} does not parse: "
                        f"{exc}"
                    ) from exc
                if len(parsed) != 1 or parsed[0].name != ev.chain:
                    raise LifecycleError(
                        f"arrival spec for {ev.chain!r} must declare "
                        f"exactly that one chain, got "
                        f"{[c.name for c in parsed]}"
                    )
                if ev.t_min_mbps <= 0:
                    raise LifecycleError(
                        f"arrival of {ev.chain!r} needs t_min_mbps > 0 "
                        "(admission is an SLO contract)"
                    )
            if ev.action == "scale" and ev.t_min_mbps <= 0:
                raise LifecycleError(
                    f"scale of {ev.chain!r} needs the new t_min_mbps > 0"
                )

    def slo_for(self, event: ChainEvent) -> SLO:
        return SLO(
            t_min=event.t_min_mbps,
            t_max=event.t_max_mbps,
            d_max=event.d_max_us,
        )

    # -- (de)serialization --------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "events": [
                    {
                        "at": ev.at,
                        "action": ev.action,
                        "chain": ev.chain,
                        "spec": ev.spec,
                        "t_min_mbps": ev.t_min_mbps,
                        "t_max_mbps": ev.t_max_mbps,
                        "d_max_us": ev.d_max_us,
                    }
                    for ev in self.events
                ],
            },
            indent=2,
            sort_keys=True,
            default=str,
        )

    @classmethod
    def from_dict(cls, payload: dict) -> "LifecycleTimeline":
        try:
            events = tuple(
                ChainEvent(
                    at=int(ev["at"]),
                    action=str(ev["action"]),
                    chain=str(ev["chain"]),
                    spec=str(ev.get("spec", "")),
                    t_min_mbps=float(ev.get("t_min_mbps", 0.0)),
                    t_max_mbps=float(ev.get("t_max_mbps", float("inf"))),
                    d_max_us=float(ev.get("d_max_us", float("inf"))),
                )
                for ev in payload.get("events", ())
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise LifecycleError(f"malformed timeline: {exc}") from exc
        return cls(events=events, seed=int(payload.get("seed", 23)))

    @classmethod
    def parse_json(cls, text: str) -> "LifecycleTimeline":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise LifecycleError(
                f"timeline is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(payload)

    @classmethod
    def random(
        cls,
        seed: int,
        n_events: int = 8,
        base_names: Sequence[str] = (),
        t_min_range: Tuple[float, float] = (300.0, 1500.0),
    ) -> "LifecycleTimeline":
        """Synthesize a seeded arrival/scale/departure schedule.

        Only the arguments determine the result. Arrivals draw small
        linear chains from a fixed NF menu under names ``dyn0, dyn1, …``;
        scales and departures target chains known to exist at that tick
        (base chains or earlier arrivals not yet departed), so a random
        timeline never trips the static validator.
        """
        menu = (
            "Monitor -> IPv4Fwd",
            "ACL -> IPv4Fwd",
            "ACL -> Monitor -> IPv4Fwd",
            "BPF -> IPv4Fwd",
        )
        rng = random.Random(seed)
        alive: List[str] = list(base_names)
        dynamic: List[str] = []
        events: List[ChainEvent] = []
        arrivals = 0
        for tick in range(1, n_events + 1):
            candidates = ["arrive"]
            if dynamic:
                candidates += ["scale", "depart"]
            elif alive:
                candidates += ["scale"]
            action = rng.choice(candidates)
            if action == "arrive":
                name = f"dyn{arrivals}"
                arrivals += 1
                body = rng.choice(menu)
                t_min = round(rng.uniform(*t_min_range), 1)
                events.append(ChainEvent(
                    at=tick, action="arrive", chain=name,
                    spec=f"chain {name}: {body}",
                    t_min_mbps=t_min,
                    t_max_mbps=round(t_min * rng.uniform(2.0, 8.0), 1),
                ))
                alive.append(name)
                dynamic.append(name)
            elif action == "scale":
                name = rng.choice(alive)
                events.append(ChainEvent(
                    at=tick, action="scale", chain=name,
                    t_min_mbps=round(rng.uniform(*t_min_range), 1),
                ))
            else:
                name = rng.choice(dynamic)
                events.append(ChainEvent(
                    at=tick, action="depart", chain=name,
                ))
                alive.remove(name)
                dynamic.remove(name)
        return cls(events=tuple(events), seed=seed)


# ---------------------------------------------------------------------------
# spec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LifecycleSpec:
    """A fully-stated, picklable lifecycle experiment.

    Workers rebuild everything from this spec alone, enabling the same
    replica determinism check the chaos engine runs.
    """

    spec_text: str
    #: one (t_min_mbps, t_max_mbps[, d_max_us]) tuple per initial chain.
    slos: Tuple[Tuple[float, ...], ...]
    timeline: LifecycleTimeline = field(default_factory=LifecycleTimeline)
    packets_per_phase: int = 256
    flows_per_chain: int = 32
    batch_size: int = 32
    seed: int = 23
    strategy: str = "lemur"
    #: re-solve every event from scratch instead of warm-starting from the
    #: current placement (the experiment baseline the incremental path is
    #: compared against).
    full_resolve: bool = False
    with_smartnic: bool = False
    with_openflow: bool = False
    servers: int = 0

    def build_topology(self) -> Topology:
        if self.servers and self.servers > 0:
            return multi_server_testbed(self.servers)
        return default_testbed(
            with_smartnic=self.with_smartnic,
            with_openflow=self.with_openflow,
        )

    def build_chains(self) -> List[NFChain]:
        chains = chains_from_spec(self.spec_text)
        if len(self.slos) != len(chains):
            raise LifecycleError(
                f"spec declares {len(chains)} chains but {len(self.slos)} "
                "SLOs were provided"
            )
        out = []
        for chain, bounds in zip(chains, self.slos):
            if not 2 <= len(bounds) <= 3:
                raise LifecycleError(
                    "each SLO must be (t_min, t_max) or "
                    f"(t_min, t_max, d_max); got {bounds!r}"
                )
            slo = SLO(t_min=bounds[0], t_max=bounds[1]) if len(bounds) == 2 \
                else SLO(t_min=bounds[0], t_max=bounds[1], d_max=bounds[2])
            out.append(chain.with_slo(slo))
        return out


# ---------------------------------------------------------------------------
# decisions and report
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AdmissionDecision:
    """The typed outcome of one lifecycle event's admission check."""

    tick: int
    action: str
    chain: str
    accepted: bool
    #: the binding constraint for a rejection ("" when accepted) — the
    #: solver's infeasibility reason, verbatim.
    reason: str = ""
    mode: str = "full"
    pinned: int = 0
    placed: int = 0
    cache_hit: bool = False
    #: per-device delta-redeploy actions (empty on rejection).
    rebuilt: Tuple[str, ...] = ()
    reused: Tuple[str, ...] = ()
    removed: Tuple[str, ...] = ()
    #: admission-solve wall clock; excluded from rendered/JSON output so
    #: reports stay byte-identical, kept for benchmarks.
    seconds: float = 0.0

    def describe(self) -> str:
        verdict = "accepted" if self.accepted else f"REJECTED: {self.reason}"
        solve = f"{self.mode}"
        if self.mode == "incremental":
            solve += f" pinned={self.pinned} placed={self.placed}"
        if self.cache_hit:
            solve += " warm"
        redeploy = ""
        if self.accepted:
            redeploy = (
                f"; redeploy rebuilt={len(self.rebuilt)} "
                f"reused={len(self.reused)} removed={len(self.removed)}"
            )
        return (
            f"t{self.tick} {self.action} {self.chain} -> {verdict} "
            f"[{solve}{redeploy}]"
        )


@dataclass
class LifecycleReport:
    """Everything one lifecycle run produced, rendered deterministically."""

    seed: int
    decisions: List[AdmissionDecision] = field(default_factory=list)
    phases: List[PhaseReport] = field(default_factory=list)

    @property
    def accepted(self) -> int:
        return sum(1 for d in self.decisions if d.accepted)

    @property
    def rejected(self) -> int:
        return sum(1 for d in self.decisions if not d.accepted)

    @property
    def total_injected(self) -> int:
        return sum(row.injected for ph in self.phases for row in ph.chains)

    @property
    def total_delivered(self) -> int:
        return sum(row.delivered for ph in self.phases for row in ph.chains)

    def phase(self, label: str) -> PhaseReport:
        for ph in self.phases:
            if ph.label == label:
                return ph
        raise KeyError(label)

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "total_injected": self.total_injected,
            "total_delivered": self.total_delivered,
            "decisions": [
                {
                    "tick": d.tick,
                    "action": d.action,
                    "chain": d.chain,
                    "accepted": d.accepted,
                    "reason": d.reason,
                    "mode": d.mode,
                    "pinned": d.pinned,
                    "placed": d.placed,
                    "cache_hit": d.cache_hit,
                    "rebuilt": list(d.rebuilt),
                    "reused": list(d.reused),
                    "removed": list(d.removed),
                }
                for d in self.decisions
            ],
            "phases": [
                {
                    "index": ph.index,
                    "label": ph.label,
                    "mode": ph.mode,
                    "compliant": ph.compliant,
                    "chains": [
                        {
                            "chain": row.chain_name,
                            "injected": row.injected,
                            "delivered": row.delivered,
                            "assigned_mbps": round(row.assigned_mbps, 6),
                            "delivered_mbps": round(row.delivered_mbps, 6),
                            "t_min_mbps": round(
                                ph.t_mins.get(row.chain_name, 0.0), 6
                            ),
                            "slo_met": ph.slo_met(row),
                        }
                        for row in ph.chains
                    ],
                }
                for ph in self.phases
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        """The per-event + per-phase table (byte-identical across runs
        with the same seed + timeline — no wall-clock quantities)."""
        lines = [f"lifecycle report (seed={self.seed})"]
        if self.decisions:
            lines.append("events:")
            lines.extend(f"  {d.describe()}" for d in self.decisions)
        else:
            lines.append("events: none")
        lines.append(
            f"{'phase':<34} {'chain':<12} {'injected':>8} "
            f"{'delivered':>9} {'assigned':>10} {'delivered':>10} "
            f"{'t_min':>9} {'slo':>9}"
        )
        lines.append(
            f"{'':<34} {'':<12} {'':>8} {'':>9} "
            f"{'Mbps':>10} {'Mbps':>10} {'Mbps':>9} {'':>9}"
        )
        for ph in self.phases:
            label = f"{ph.index}:{ph.label}"
            for row in ph.chains:
                lines.append(
                    f"{label:<34} {row.chain_name:<12} "
                    f"{row.injected:>8} {row.delivered:>9} "
                    f"{row.assigned_mbps:>10.2f} {row.delivered_mbps:>10.2f} "
                    f"{ph.t_mins.get(row.chain_name, 0.0):>9.2f} "
                    f"{'ok' if ph.slo_met(row) else 'VIOLATED':>9}"
                )
        lines.append(
            f"totals: events={len(self.decisions)} "
            f"accepted={self.accepted} rejected={self.rejected} "
            f"injected={self.total_injected} "
            f"delivered={self.total_delivered}"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------


class LifecycleEngine:
    """Admit, place incrementally, delta-redeploy, and drive traffic."""

    def __init__(
        self,
        chains: Sequence[NFChain],
        timeline: LifecycleTimeline,
        *,
        topology: Optional[Topology] = None,
        profiles: Optional[ProfileDatabase] = None,
        strategy: str = "lemur",
        flows_per_chain: int = 32,
        batch_size: int = 32,
        seed: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        cache: Optional[PlacementCache] = None,
        full_resolve: bool = False,
    ):
        if not chains:
            raise LifecycleError(
                "the lifecycle engine needs at least one initial chain "
                "(an empty rack has nothing to deploy)"
            )
        self.initial_chains = list(chains)
        self.timeline = timeline
        self.topology = topology or default_testbed()
        self.profiles = profiles or default_profiles()
        self.strategy = strategy
        self.flows_per_chain = flows_per_chain
        self.batch_size = batch_size
        self.seed = timeline.seed if seed is None else seed
        self.obs = registry if registry is not None else get_registry()
        #: warm-start memo: a repeated (active set, base pattern) admission
        #: problem fingerprints identically and is served from cache.
        self.cache = cache if cache is not None else PlacementCache()
        self.full_resolve = full_resolve
        timeline.validate()

        self.placer = Placer(
            topology=self.topology,
            profiles=self.profiles,
            config=PlacerConfig(strategy=strategy),
            cache=self.cache,
        )
        self.metacompiler = MetaCompiler(
            topology=self.topology, profiles=self.profiles
        )

        # mutable run state
        self.active: List[NFChain] = []
        self.placement = None
        self.rack: Optional[DeployedRack] = None
        self.traffic: Optional[TrafficEngine] = None
        self.rates: Dict[str, float] = {}

    # -- admission --------------------------------------------------------------

    def _admit(self, event: ChainEvent,
               proposed: List[NFChain]) -> AdmissionDecision:
        """Solve the proposed chain set and, on success, delta-redeploy.

        The engine's state only advances when the solve is feasible; a
        rejection leaves the running placement, rack, and rates exactly
        as they were — admitted chains are never evicted to make room.
        """
        base = None if self.full_resolve else self.placement
        mode = "full" if base is None else "incremental"
        try:
            report = self.placer.solve(PlacementRequest(
                chains=proposed,
                strategy=self.strategy,
                base_placement=base,
            ))
        except PlacementError as exc:
            return AdmissionDecision(
                tick=event.at, action=event.action, chain=event.chain,
                accepted=False, reason=str(exc), mode=mode,
            )
        if not report.placement.feasible:
            return AdmissionDecision(
                tick=event.at, action=event.action, chain=event.chain,
                accepted=False,
                reason=report.placement.infeasible_reason or "infeasible",
                mode=report.mode,
                pinned=report.pinned_chains,
                placed=report.placed_chains,
                cache_hit=report.cache_hit,
                seconds=report.seconds,
            )
        artifacts = self.metacompiler.compile_placement(report.placement)
        delta = self.rack.redeploy(artifacts)
        self.active = proposed
        self.placement = report.placement
        self.rates = dict(report.placement.rates)
        self.traffic.placement = report.placement
        return AdmissionDecision(
            tick=event.at, action=event.action, chain=event.chain,
            accepted=True,
            mode=report.mode,
            pinned=report.pinned_chains,
            placed=report.placed_chains,
            cache_hit=report.cache_hit,
            rebuilt=tuple(delta.rebuilt),
            reused=tuple(delta.reused),
            removed=tuple(delta.removed),
            seconds=report.seconds,
        )

    def _propose(self, event: ChainEvent
                 ) -> Tuple[Optional[List[NFChain]], str]:
        """The chain set the event asks for, or a static rejection."""
        names = {chain.name for chain in self.active}
        if event.action == "arrive":
            if event.chain in names:
                return None, f"chain {event.chain!r} is already active"
            (chain,) = chains_from_spec(event.spec)
            chain = chain.with_slo(self.timeline.slo_for(event))
            return self.active + [chain], ""
        if event.chain not in names:
            return None, f"no active chain named {event.chain!r}"
        if event.action == "depart":
            proposed = [c for c in self.active if c.name != event.chain]
            if not proposed:
                return None, "cannot depart the last active chain"
            return proposed, ""
        # scale
        proposed = []
        for chain in self.active:
            if chain.name == event.chain:
                slo = chain.slo.with_tmin(event.t_min_mbps)
                if event.t_max_mbps != float("inf"):
                    slo = replace(slo, t_max=event.t_max_mbps)
                chain = chain.with_slo(slo)
            proposed.append(chain)
        return proposed, ""

    def _process(self, event: ChainEvent) -> AdmissionDecision:
        self.obs.counter("lifecycle.events", action=event.action).inc()
        proposed, static_reason = self._propose(event)
        if proposed is None:
            decision = AdmissionDecision(
                tick=event.at, action=event.action, chain=event.chain,
                accepted=False, reason=static_reason,
            )
        else:
            decision = self._admit(event, proposed)
        self.obs.counter(
            "lifecycle.admission",
            decision="accepted" if decision.accepted else "rejected",
            action=event.action,
        ).inc()
        if not decision.accepted and decision.pinned > 0:
            # the solve failed while holding admitted chains at their
            # t_min floor: accepting would have required an eviction
            self.obs.counter("lifecycle.evictions_averted").inc()
        self.obs.gauge("lifecycle.active_chains").set(len(self.active))
        return decision

    # -- the run loop -----------------------------------------------------------

    def run(self, packets_per_phase: int = 256) -> LifecycleReport:
        if packets_per_phase < 1:
            raise LifecycleError("packets_per_phase must be >= 1")
        initial = self.placer.solve(PlacementRequest(
            chains=self.initial_chains, strategy=self.strategy,
        ))
        if not initial.placement.feasible:
            raise PlacementError(
                "lifecycle run needs a feasible initial placement: "
                f"{initial.placement.infeasible_reason}"
            )
        self.active = list(self.initial_chains)
        self.placement = initial.placement
        self.rates = dict(initial.placement.rates)
        artifacts = self.metacompiler.compile_placement(initial.placement)
        self.rack = DeployedRack(
            self.topology, artifacts, self.profiles,
            seed=self.seed, registry=self.obs,
        )
        self.traffic = TrafficEngine(
            self.rack, initial.placement,
            flows_per_chain=self.flows_per_chain,
            batch_size=self.batch_size,
        )
        self.obs.gauge("lifecycle.active_chains").set(len(self.active))

        report = LifecycleReport(seed=self.timeline.seed)
        cursors: Dict[str, int] = {}
        self._run_phase(report, "initial", packets_per_phase, cursors)

        pending = self.timeline.sorted_events()
        while pending:
            tick = pending[0].at
            fired: List[ChainEvent] = []
            while pending and pending[0].at == tick:
                event = pending.pop(0)
                report.decisions.append(self._process(event))
                fired.append(event)
            label = f"t{tick}:" + "+".join(
                f"{ev.action}({ev.chain})" for ev in fired
            )
            self._run_phase(report, label, packets_per_phase, cursors)
        return report

    def _run_phase(self, report: LifecycleReport, label: str,
                   packets_per_phase: int,
                   cursors: Dict[str, int]) -> None:
        """Inject one phase of traffic for every active chain and record
        the per-chain SLO compliance rows."""
        phase = PhaseReport(
            index=len(report.phases),
            label=label,
            mode="live",
            start_packet=report.total_injected,
            t_mins={
                cp.name: cp.chain.slo.t_min
                for cp in self.placement.chains
            },
        )
        for cp in self.placement.chains:
            delivered, cursors[cp.name] = self.traffic.replay_batch(
                cp, cursors.get(cp.name, 0), packets_per_phase
            )
            phase.chains.append(ChainTrafficReport(
                chain_name=cp.name,
                flows=self.flows_per_chain,
                injected=packets_per_phase,
                delivered=delivered,
                dropped=packets_per_phase - delivered,
                wall_seconds=0.0,
                assigned_mbps=self.rates.get(cp.name, 0.0),
            ))
        report.phases.append(phase)


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def run_lifecycle(
    spec: LifecycleSpec,
    registry: Optional[MetricsRegistry] = None,
    cache: Optional[PlacementCache] = None,
) -> LifecycleReport:
    """Run one lifecycle experiment from a fully-stated spec."""
    topology = spec.build_topology()
    chains = spec.build_chains()
    timeline = replace(spec.timeline, seed=spec.seed) \
        if spec.timeline.seed != spec.seed else spec.timeline
    engine = LifecycleEngine(
        chains,
        timeline,
        topology=topology,
        strategy=spec.strategy,
        flows_per_chain=spec.flows_per_chain,
        batch_size=spec.batch_size,
        seed=spec.seed,
        registry=registry,
        cache=cache,
        full_resolve=spec.full_resolve,
    )
    return engine.run(packets_per_phase=spec.packets_per_phase)


def _replica_render(spec: LifecycleSpec) -> str:
    """Worker entry: run a full replica with isolated instrumentation."""
    return run_lifecycle(spec, registry=MetricsRegistry()).render()


def run_lifecycle_checked(
    spec: LifecycleSpec,
    jobs: int = 1,
    registry: Optional[MetricsRegistry] = None,
) -> LifecycleReport:
    """Run a lifecycle experiment, optionally cross-checking determinism.

    With ``jobs > 1``, ``jobs - 1`` replica runs execute in worker
    processes from the same spec; every replica's rendered report must be
    byte-identical to the local run's, or the run fails loudly. The
    returned report is always the local run's, so output is independent
    of ``jobs``.
    """
    report = run_lifecycle(spec, registry=registry)
    replicas = max(0, jobs - 1)
    if replicas == 0:
        return report
    try:
        pickle.dumps(spec)
    except Exception:
        return report
    rendered = report.render()
    with ProcessPoolExecutor(max_workers=replicas) as pool:
        futures = [
            pool.submit(_replica_render, spec) for _ in range(replicas)
        ]
        for index, future in enumerate(futures):
            other = future.result()
            if other != rendered:
                raise LifecycleError(
                    f"lifecycle replica {index} diverged from the local "
                    "run with the same seed and timeline — determinism "
                    "invariant broken"
                )
    return report


# re-exported so report consumers need one import; keeps the SLO slack
# shared with the chaos engine's tables.
__all__ = [
    "LIFECYCLE_ACTIONS",
    "AdmissionDecision",
    "ChainEvent",
    "LifecycleEngine",
    "LifecycleReport",
    "LifecycleSpec",
    "LifecycleTimeline",
    "run_lifecycle",
    "run_lifecycle_checked",
    "_SLO_RTOL",
]
