"""Online chain lifecycle: arrivals, scaling, departures (§7, online).

A static placement answers "can this chain set meet its SLOs?" once. An
operator's rack answers it continuously: tenants arrive with an SLO,
scale their minimum rate, and leave — and every transition must preserve
the already-admitted chains' guarantees without redeploying the world.
This module closes that loop:

* :class:`ChainEvent` / :class:`LifecycleTimeline` — a deterministic,
  seedable schedule of lifecycle events (``arrive`` with a spec + SLO,
  ``scale`` of t_min, ``depart``) keyed by integer ticks. Events sharing
  a tick are applied departures-first, so capacity freed at a tick is
  visible to that tick's admissions.
* :class:`LifecycleEngine` — replays the timeline against a live
  :class:`~repro.sim.runtime.DeployedRack` driven by the
  :class:`~repro.sim.traffic.TrafficEngine`. Each event goes through
  **admission control**: the proposed chain set is solved incrementally
  (:class:`~repro.core.placer.PlacementRequest` with ``base_placement``
  — existing chains keep their NF→device assignments and are only ever
  shrunk to their t_min floor, never below), and an infeasible solve
  rejects the event with its binding constraint instead of evicting an
  admitted chain. Accepted transitions go through the meta-compiler and
  a **delta redeploy** (:meth:`~repro.sim.runtime.DeployedRack.redeploy`)
  that rebuilds only devices whose generated programs changed.
* :class:`AdmissionDecision` / :class:`LifecycleReport` — one typed
  decision per event (accepted or rejected + reason, solve mode, pin
  counts, per-device redeploy actions) and a per-phase SLO compliance
  table whose rendering is byte-identical across repeated runs and
  ``--jobs`` settings.

Observability: ``lifecycle.events{action=...}``,
``lifecycle.admission{decision=accepted|rejected}``,
``lifecycle.evictions_averted`` (rejections whose binding constraint was
an admitted chain's t_min floor), the ``lifecycle.active_chains`` gauge,
``placer.solve.seconds{mode=incremental|full}`` timings from the solver,
and ``rack.redeploy.devices{action=...}`` from the delta redeploy.
"""

from __future__ import annotations

import json
import pickle
import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chain.graph import NFChain, chains_from_spec, chains_with_slos
from repro.chain.slo import SLO
from repro.core.cache import PlacementCache
from repro.exceptions import LifecycleError, SpecError
from repro.hw.spec import TopologySpec
from repro.hw.topology import Topology
from repro.obs import MetricsRegistry
from repro.profiles.defaults import ProfileDatabase
from repro.sim.admission import (
    LIFECYCLE_ACTIONS,
    AdmissionDecision,
    ChainEvent,
)
from repro.sim.faults import _SLO_RTOL, PhaseReport
from repro.sim.interrack import make_admission_core
from repro.sim.runtime import DeployedRack
from repro.sim.traffic import TrafficEngine

#: within a tick, departures free capacity before admissions consume it.
_ACTION_ORDER = {"depart": 0, "scale": 1, "arrive": 2}


# ---------------------------------------------------------------------------
# timeline
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LifecycleTimeline:
    """An ordered, validated schedule of :class:`ChainEvent`.

    ``seed`` feeds :meth:`random` synthesis and the rack's deterministic
    drop hash, so (seed, timeline) fully determines a lifecycle run.
    """

    events: Tuple[ChainEvent, ...] = ()
    seed: int = 23

    def sorted_events(self) -> List[ChainEvent]:
        """Events by (tick, depart<scale<arrive, declaration order)."""
        return [
            ev for _, ev in sorted(
                enumerate(self.events),
                key=lambda pair: (
                    pair[1].at, _ACTION_ORDER[pair[1].action], pair[0]
                ),
            )
        ]

    def validate(self) -> None:
        """Reject statically-malformed events (unknown actions, bad SLOs,
        arrival specs that don't parse or don't match the event name)."""
        for ev in self.events:
            if ev.action not in LIFECYCLE_ACTIONS:
                raise LifecycleError(
                    f"unknown lifecycle action {ev.action!r}; "
                    f"choose from {sorted(LIFECYCLE_ACTIONS)}"
                )
            if ev.at < 0:
                raise LifecycleError(
                    f"event {ev.describe()!r}: tick must be >= 0"
                )
            if not ev.chain:
                raise LifecycleError("every event names a chain")
            if ev.action == "arrive":
                if not ev.spec.strip():
                    raise LifecycleError(
                        f"arrival of {ev.chain!r} carries no chain spec"
                    )
                try:
                    parsed = chains_from_spec(ev.spec)
                except SpecError as exc:
                    raise LifecycleError(
                        f"arrival spec for {ev.chain!r} does not parse: "
                        f"{exc}"
                    ) from exc
                if len(parsed) != 1 or parsed[0].name != ev.chain:
                    raise LifecycleError(
                        f"arrival spec for {ev.chain!r} must declare "
                        f"exactly that one chain, got "
                        f"{[c.name for c in parsed]}"
                    )
                if ev.t_min_mbps <= 0:
                    raise LifecycleError(
                        f"arrival of {ev.chain!r} needs t_min_mbps > 0 "
                        "(admission is an SLO contract)"
                    )
            if ev.action == "scale" and ev.t_min_mbps <= 0:
                raise LifecycleError(
                    f"scale of {ev.chain!r} needs the new t_min_mbps > 0"
                )

    def slo_for(self, event: ChainEvent) -> SLO:
        return event.slo()

    # -- (de)serialization --------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "events": [
                    {
                        "at": ev.at,
                        "action": ev.action,
                        "chain": ev.chain,
                        "spec": ev.spec,
                        "t_min_mbps": ev.t_min_mbps,
                        "t_max_mbps": ev.t_max_mbps,
                        "d_max_us": ev.d_max_us,
                    }
                    for ev in self.events
                ],
            },
            indent=2,
            sort_keys=True,
            default=str,
        )

    #: the exhaustive wire fields; anything else is rejected so schema
    #: typos fail loudly instead of silently defaulting.
    _EVENT_FIELDS = frozenset({
        "at", "action", "chain", "spec",
        "t_min_mbps", "t_max_mbps", "d_max_us",
    })
    _TOP_FIELDS = frozenset({"seed", "events"})

    @classmethod
    def from_dict(cls, payload: dict) -> "LifecycleTimeline":
        if not isinstance(payload, dict):
            raise LifecycleError(
                f"timeline must be an object, got {type(payload).__name__}"
            )
        unknown = set(payload) - cls._TOP_FIELDS
        if unknown:
            raise LifecycleError(
                f"timeline carries unknown fields {sorted(unknown)}"
            )
        try:
            events = []
            for ev in payload.get("events", ()):
                bad = set(ev) - cls._EVENT_FIELDS
                if bad:
                    raise LifecycleError(
                        f"timeline event carries unknown fields "
                        f"{sorted(bad)}"
                    )
                events.append(ChainEvent(
                    at=int(ev["at"]),
                    action=str(ev["action"]),
                    chain=str(ev["chain"]),
                    spec=str(ev.get("spec", "")),
                    t_min_mbps=float(ev.get("t_min_mbps", 0.0)),
                    t_max_mbps=float(ev.get("t_max_mbps", float("inf"))),
                    d_max_us=float(ev.get("d_max_us", float("inf"))),
                ))
        except (KeyError, TypeError, ValueError) as exc:
            raise LifecycleError(f"malformed timeline: {exc}") from exc
        return cls(events=tuple(events), seed=int(payload.get("seed", 23)))

    @classmethod
    def parse_json(cls, text: str) -> "LifecycleTimeline":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise LifecycleError(
                f"timeline is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(payload)

    @classmethod
    def random(
        cls,
        seed: int,
        n_events: int = 8,
        base_names: Sequence[str] = (),
        t_min_range: Tuple[float, float] = (300.0, 1500.0),
    ) -> "LifecycleTimeline":
        """Synthesize a seeded arrival/scale/departure schedule.

        Only the arguments determine the result. Arrivals draw small
        linear chains from a fixed NF menu under names ``dyn0, dyn1, …``;
        scales and departures target chains known to exist at that tick
        (base chains or earlier arrivals not yet departed), so a random
        timeline never trips the static validator.
        """
        menu = (
            "Monitor -> IPv4Fwd",
            "ACL -> IPv4Fwd",
            "ACL -> Monitor -> IPv4Fwd",
            "BPF -> IPv4Fwd",
        )
        rng = random.Random(seed)
        alive: List[str] = list(base_names)
        dynamic: List[str] = []
        events: List[ChainEvent] = []
        arrivals = 0
        for tick in range(1, n_events + 1):
            candidates = ["arrive"]
            if dynamic:
                candidates += ["scale", "depart"]
            elif alive:
                candidates += ["scale"]
            action = rng.choice(candidates)
            if action == "arrive":
                name = f"dyn{arrivals}"
                arrivals += 1
                body = rng.choice(menu)
                t_min = round(rng.uniform(*t_min_range), 1)
                events.append(ChainEvent(
                    at=tick, action="arrive", chain=name,
                    spec=f"chain {name}: {body}",
                    t_min_mbps=t_min,
                    t_max_mbps=round(t_min * rng.uniform(2.0, 8.0), 1),
                ))
                alive.append(name)
                dynamic.append(name)
            elif action == "scale":
                name = rng.choice(alive)
                events.append(ChainEvent(
                    at=tick, action="scale", chain=name,
                    t_min_mbps=round(rng.uniform(*t_min_range), 1),
                ))
            else:
                name = rng.choice(dynamic)
                events.append(ChainEvent(
                    at=tick, action="depart", chain=name,
                ))
                alive.remove(name)
                dynamic.remove(name)
        return cls(events=tuple(events), seed=seed)


# ---------------------------------------------------------------------------
# spec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LifecycleSpec:
    """A fully-stated, picklable lifecycle experiment.

    Workers rebuild everything from this spec alone, enabling the same
    replica determinism check the chaos engine runs.
    """

    spec_text: str
    #: one (t_min_mbps, t_max_mbps[, d_max_us]) tuple per initial chain.
    slos: Tuple[Tuple[float, ...], ...]
    #: declarative topology; when set it wins over the legacy flags
    #: below (which remain as the ``TopologySpec.from_flags`` bridge).
    topology: Optional[TopologySpec] = None
    timeline: LifecycleTimeline = field(default_factory=LifecycleTimeline)
    packets_per_phase: int = 256
    flows_per_chain: int = 32
    batch_size: int = 32
    seed: int = 23
    strategy: str = "lemur"
    #: re-solve every event from scratch instead of warm-starting from the
    #: current placement (the experiment baseline the incremental path is
    #: compared against).
    full_resolve: bool = False
    with_smartnic: bool = False
    with_openflow: bool = False
    servers: int = 0
    #: queueing delay model stamped on every forwarded packet
    #: (see :class:`repro.sim.measurement.QueueingModel`).
    queueing: str = "none"
    #: placement objective ("throughput" or "tail_latency").
    objective: str = "throughput"

    def build_topology(self):
        """Build the (single- or multi-rack) topology this spec names."""
        spec = self.topology if self.topology is not None else \
            TopologySpec.from_flags(
                with_smartnic=self.with_smartnic,
                with_openflow=self.with_openflow,
                servers=self.servers,
            )
        return spec.build()

    def build_chains(self) -> List[NFChain]:
        return chains_with_slos(self.spec_text, self.slos,
                                error=LifecycleError)


# ---------------------------------------------------------------------------
# report (decisions live in repro.sim.admission, shared with the daemon)
# ---------------------------------------------------------------------------


@dataclass
class LifecycleReport:
    """Everything one lifecycle run produced, rendered deterministically."""

    seed: int
    decisions: List[AdmissionDecision] = field(default_factory=list)
    phases: List[PhaseReport] = field(default_factory=list)

    @property
    def accepted(self) -> int:
        return sum(1 for d in self.decisions if d.accepted)

    @property
    def rejected(self) -> int:
        return sum(1 for d in self.decisions if not d.accepted)

    @property
    def ok(self) -> bool:
        """SLO compliance across every phase (the exit-code predicate)."""
        return all(ph.compliant for ph in self.phases)

    @property
    def total_injected(self) -> int:
        return sum(row.injected for ph in self.phases for row in ph.chains)

    @property
    def total_delivered(self) -> int:
        return sum(row.delivered for ph in self.phases for row in ph.chains)

    def phase(self, label: str) -> PhaseReport:
        for ph in self.phases:
            if ph.label == label:
                return ph
        raise KeyError(label)

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "total_injected": self.total_injected,
            "total_delivered": self.total_delivered,
            "decisions": [d.as_dict() for d in self.decisions],
            "phases": [
                {
                    "index": ph.index,
                    "label": ph.label,
                    "mode": ph.mode,
                    "compliant": ph.compliant,
                    "chains": [
                        {
                            "chain": row.chain_name,
                            "injected": row.injected,
                            "delivered": row.delivered,
                            "assigned_mbps": round(row.assigned_mbps, 6),
                            "delivered_mbps": round(row.delivered_mbps, 6),
                            "t_min_mbps": round(
                                ph.t_mins.get(row.chain_name, 0.0), 6
                            ),
                            "latency_p50_us": round(row.latency_p50_us, 6),
                            "latency_p95_us": round(row.latency_p95_us, 6),
                            "latency_p99_us": round(row.latency_p99_us, 6),
                            "latency_slo_us": round(row.latency_slo_us, 6),
                            "latency_slo_met": row.latency_slo_met,
                            "slo_met": ph.slo_met(row),
                        }
                        for row in ph.chains
                    ],
                }
                for ph in self.phases
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        """The per-event + per-phase table (byte-identical across runs
        with the same seed + timeline — no wall-clock quantities)."""
        lines = [f"lifecycle report (seed={self.seed})"]
        if self.decisions:
            lines.append("events:")
            lines.extend(f"  {d.describe()}" for d in self.decisions)
        else:
            lines.append("events: none")
        lines.append(
            f"{'phase':<34} {'chain':<12} {'injected':>8} "
            f"{'delivered':>9} {'assigned':>10} {'delivered':>10} "
            f"{'t_min':>9} {'p99':>10} {'d_max':>10} {'slo':>9}"
        )
        lines.append(
            f"{'':<34} {'':<12} {'':>8} {'':>9} "
            f"{'Mbps':>10} {'Mbps':>10} {'Mbps':>9} "
            f"{'µs':>10} {'µs':>10} {'':>9}"
        )
        for ph in self.phases:
            label = f"{ph.index}:{ph.label}"
            for row in ph.chains:
                d_max = (f"{row.latency_slo_us:>10.1f}"
                         if row.latency_slo_us > 0 else f"{'—':>10}")
                lines.append(
                    f"{label:<34} {row.chain_name:<12} "
                    f"{row.injected:>8} {row.delivered:>9} "
                    f"{row.assigned_mbps:>10.2f} {row.delivered_mbps:>10.2f} "
                    f"{ph.t_mins.get(row.chain_name, 0.0):>9.2f} "
                    f"{row.latency_p99_us:>10.1f} {d_max} "
                    f"{'ok' if ph.slo_met(row) else 'VIOLATED':>9}"
                )
        lines.append(
            f"totals: events={len(self.decisions)} "
            f"accepted={self.accepted} rejected={self.rejected} "
            f"injected={self.total_injected} "
            f"delivered={self.total_delivered}"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------


class LifecycleEngine:
    """Admit, place incrementally, delta-redeploy, and drive traffic.

    A thin timeline-replay front-end over the shared
    :class:`~repro.sim.admission.AdmissionCore` (the serve daemon is the
    other front-end): the engine orders events into ticks and phases,
    the core owns the rack and every admission decision.
    """

    def __init__(
        self,
        chains: Sequence[NFChain],
        timeline: LifecycleTimeline,
        *,
        topology: Optional[Topology] = None,
        profiles: Optional[ProfileDatabase] = None,
        strategy: str = "lemur",
        flows_per_chain: int = 32,
        batch_size: int = 32,
        seed: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        cache: Optional[PlacementCache] = None,
        full_resolve: bool = False,
        queueing: str = "none",
        objective: str = "throughput",
    ):
        self.timeline = timeline
        timeline.validate()
        #: a fabric topology gets the multi-rack core, anything else the
        #: single-rack one — the engine drives both identically.
        self.core = make_admission_core(
            chains,
            topology=topology,
            profiles=profiles,
            strategy=strategy,
            flows_per_chain=flows_per_chain,
            batch_size=batch_size,
            seed=timeline.seed if seed is None else seed,
            registry=registry,
            cache=cache,
            full_resolve=full_resolve,
            queueing=queueing,
            objective=objective,
        )

    @classmethod
    def from_spec(
        cls,
        spec: LifecycleSpec,
        *,
        registry: Optional[MetricsRegistry] = None,
        cache: Optional[PlacementCache] = None,
    ) -> "LifecycleEngine":
        """Build an engine from a fully-stated :class:`LifecycleSpec`.

        The spec's seed wins over the timeline's, so one knob controls
        the whole run (timeline synthesis and the rack's drop hash).
        """
        timeline = replace(spec.timeline, seed=spec.seed) \
            if spec.timeline.seed != spec.seed else spec.timeline
        return cls(
            spec.build_chains(),
            timeline,
            topology=spec.build_topology(),
            strategy=spec.strategy,
            flows_per_chain=spec.flows_per_chain,
            batch_size=spec.batch_size,
            seed=spec.seed,
            registry=registry,
            cache=cache,
            full_resolve=spec.full_resolve,
            queueing=spec.queueing,
            objective=spec.objective,
        )

    # read-only views onto the core's state, kept for callers that
    # introspect a finished engine (tests, benchmarks, experiments)
    @property
    def initial_chains(self) -> List[NFChain]:
        return self.core.initial_chains

    @property
    def topology(self) -> Topology:
        return self.core.topology

    @property
    def active(self) -> List[NFChain]:
        return self.core.active

    @property
    def placement(self):
        return self.core.placement

    @property
    def rack(self) -> Optional[DeployedRack]:
        return self.core.rack

    @property
    def traffic(self) -> Optional[TrafficEngine]:
        return self.core.traffic

    @property
    def rates(self) -> Dict[str, float]:
        return self.core.rates

    @property
    def cache(self) -> PlacementCache:
        return self.core.cache

    # -- the run loop -----------------------------------------------------------

    def run(self, packets_per_phase: int = 256) -> LifecycleReport:
        if packets_per_phase < 1:
            raise LifecycleError("packets_per_phase must be >= 1")
        core = self.core
        core.bootstrap()

        report = LifecycleReport(seed=self.timeline.seed)
        report.phases.append(core.run_phase(
            "initial", packets_per_phase,
            index=0, start_packet=0,
        ))

        pending = self.timeline.sorted_events()
        while pending:
            tick = pending[0].at
            fired: List[ChainEvent] = []
            while pending and pending[0].at == tick:
                event = pending.pop(0)
                report.decisions.append(core.process(event))
                fired.append(event)
            label = f"t{tick}:" + "+".join(
                f"{ev.action}({ev.chain})" for ev in fired
            )
            report.phases.append(core.run_phase(
                label, packets_per_phase,
                index=len(report.phases),
                start_packet=report.total_injected,
            ))
        return report


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def run_lifecycle(
    spec: LifecycleSpec,
    registry: Optional[MetricsRegistry] = None,
    cache: Optional[PlacementCache] = None,
) -> LifecycleReport:
    """Run one lifecycle experiment from a fully-stated spec."""
    engine = LifecycleEngine.from_spec(spec, registry=registry, cache=cache)
    return engine.run(packets_per_phase=spec.packets_per_phase)


def _replica_render(spec: LifecycleSpec) -> str:
    """Worker entry: run a full replica with isolated instrumentation."""
    return run_lifecycle(spec, registry=MetricsRegistry()).render()


def run_lifecycle_checked(
    spec: LifecycleSpec,
    jobs: int = 1,
    registry: Optional[MetricsRegistry] = None,
    pool: str = "keep",
) -> LifecycleReport:
    """Run a lifecycle experiment, optionally cross-checking determinism.

    With ``jobs > 1``, ``jobs - 1`` replica runs execute in worker
    processes from the same spec; every replica's rendered report must be
    byte-identical to the local run's, or the run fails loudly. The
    returned report is always the local run's, so output is independent
    of ``jobs``. ``pool="keep"`` (default) runs replicas on the shared
    persistent worker pool; ``"per-run"`` spawns a throwaway executor.
    """
    report = run_lifecycle(spec, registry=registry)
    replicas = max(0, jobs - 1)
    if replicas == 0:
        return report
    try:
        pickle.dumps(spec)
    except Exception:
        return report
    rendered = report.render()
    for index, other in enumerate(_replica_renders(spec, replicas, pool)):
        if other != rendered:
            raise LifecycleError(
                f"lifecycle replica {index} diverged from the local "
                "run with the same seed and timeline — determinism "
                "invariant broken"
            )
    return report


def _replica_renders(spec: LifecycleSpec, replicas: int,
                     pool: str) -> List[str]:
    """Render ``replicas`` independent runs of ``spec`` in workers."""
    import os
    import warnings

    from repro.exceptions import WorkerPoolError
    from repro.runtime.pool import PoolCall, get_pool, in_worker

    if in_worker():
        return [_replica_render(spec) for _ in range(replicas)]
    if pool == "keep":
        try:
            worker_pool = get_pool(replicas)
            return worker_pool.dispatch(
                [PoolCall(_replica_render, spec) for _ in range(replicas)]
            )
        except WorkerPoolError as exc:
            warnings.warn(
                f"persistent worker pool dispatch failed ({exc}); "
                "falling back to a per-run pool",
                RuntimeWarning, stacklevel=3,
            )
    workers = min(replicas, os.cpu_count() or 1)
    with ProcessPoolExecutor(max_workers=workers) as executor:
        futures = [
            executor.submit(_replica_render, spec) for _ in range(replicas)
        ]
        return [future.result() for future in futures]


# re-exported so report consumers need one import; keeps the SLO slack
# shared with the chaos engine's tables.
__all__ = [
    "LIFECYCLE_ACTIONS",
    "AdmissionDecision",
    "ChainEvent",
    "LifecycleEngine",
    "LifecycleReport",
    "LifecycleSpec",
    "LifecycleTimeline",
    "run_lifecycle",
    "run_lifecycle_checked",
    "_SLO_RTOL",
]
