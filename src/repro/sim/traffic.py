"""High-volume traffic engine driving the batched dataplane fast path.

The :class:`TrafficEngine` synthesizes a per-chain flow set inside each
chain's traffic aggregate, replays ``packets_per_chain`` packets over those
flows through :meth:`DeployedRack.run` (or the columnar
:meth:`DeployedRack.run_columns` when ``vectorized=True``), and reports
what the deployed rack achieved: simulator packets/second, delivery
fraction, and the delivered rate against the LP's per-chain rate
assignment (``Placement.rates``) — the same quantity Figure 2's measured
bars are drawn from.

Measurement discipline: flow templates are synthesized **once** per chain
(:meth:`TrafficEngine.synthesize_flows`) and cheap clones cycle through
the rack, with only the rack work inside the timed region — reported
walls measure the dataplane, not Python packet construction. The
aggregate :attr:`TrafficReport.achieved_pps` uses the whole-run wall
clock, so concurrent shards (``shards=N``) report real throughput rather
than a sum of per-chain walls.
"""

from __future__ import annotations

import json
import math
import os
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chain.graph import NFChain, chains_with_slos
from repro.core.placement import ChainPlacement, Placement
from repro.core.placer import Placer, PlacerConfig, PlacementRequest
from repro.core.rates import device_utilization
from repro.exceptions import PlacementError, TrafficError, WorkerPoolError
from repro.hw.multirack import MultiRackTopology
from repro.hw.spec import TopologySpec
from repro.hw.topology import Topology
from repro.metacompiler.compiler import CompiledArtifacts, MetaCompiler
from repro.net.packet import Packet
from repro.obs import MetricsRegistry, quantile, scoped_registry
from repro.profiles.defaults import ProfileDatabase, default_profiles
from repro.runtime.pool import in_worker
from repro.sim.columns import PacketColumns
from repro.sim.measurement import QueueingModel
from repro.sim.runtime import DeployedRack, _chain_packet
from repro.units import SIM_PACKET_BITS, SLO_RTOL

#: packet size used for rate conversion — derived from the single source
#: of truth in :mod:`repro.units`, which also sizes the synthesized
#: packets' ``total_bytes`` in :func:`repro.sim.runtime._chain_packet`.
PACKET_BITS = SIM_PACKET_BITS


def configure_rack_queueing(rack: DeployedRack, placement: Placement,
                            kind: str) -> None:
    """Install a queueing model on a deployed rack.

    Per-device utilization is derived from the placement's *current* LP
    rates (:func:`repro.core.rates.device_utilization`) — deterministic,
    never wall clock — so every engine that changes rates (deploy, shed,
    replan) re-calls this to keep the stamped queue delay consistent with
    the load the rack is nominally carrying.
    """
    model = QueueingModel(kind)
    utilization = None
    if model.enabled:
        utilization = device_utilization(
            placement.chains, placement.rates, rack.topology
        )
    rack.configure_queueing(model, utilization)


@dataclass
class ChainTrafficReport:
    """What one chain achieved under high-volume replay."""

    chain_name: str
    flows: int
    injected: int
    delivered: int
    dropped: int
    #: wall-clock spent in rack work for this chain (packet construction
    #: happens outside the timed region).
    wall_seconds: float
    #: the LP's rate assignment for this chain (Mbps); 0 when unassigned.
    assigned_mbps: float
    #: the chain's SLO minimum rate (Mbps); 0 means best-effort.
    t_min_mbps: float = 0.0
    #: delivered-latency quantiles (µs) over this chain's replay.
    latency_p50_us: float = 0.0
    latency_p95_us: float = 0.0
    latency_p99_us: float = 0.0
    #: the chain's latency SLO (``d_max``, µs); 0 means unbounded.
    latency_slo_us: float = 0.0

    @property
    def delivered_fraction(self) -> float:
        return self.delivered / self.injected if self.injected else 0.0

    @property
    def rate_slo_met(self) -> bool:
        """Delivered rate at or above the SLO floor (with float slack)."""
        if self.t_min_mbps <= 0.0 or self.injected == 0:
            return True
        return self.delivered_mbps >= self.t_min_mbps * (1.0 - SLO_RTOL)

    @property
    def latency_slo_met(self) -> bool:
        """Delivered p99 latency within the chain's delay bound."""
        if self.latency_slo_us <= 0.0 or self.delivered == 0:
            return True
        return self.latency_p99_us <= self.latency_slo_us * (1.0 + SLO_RTOL)

    @property
    def slo_met(self) -> bool:
        """Full SLO compliance: rate floor AND tail-latency bound."""
        return self.rate_slo_met and self.latency_slo_met

    @property
    def achieved_pps(self) -> float:
        """Simulator throughput: packets pushed through the rack per
        wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.injected / self.wall_seconds

    @property
    def delivered_mbps(self) -> float:
        """Delivered share of the LP-assigned rate: the rack sustains the
        assigned rate scaled by the fraction of packets it delivered."""
        return self.assigned_mbps * self.delivered_fraction


@dataclass
class TrafficReport:
    """Aggregate of one :meth:`TrafficEngine.run` invocation."""

    chains: List[ChainTrafficReport] = field(default_factory=list)
    #: wall-clock of the whole run() invocation — the denominator for
    #: aggregate throughput. With shards the per-chain walls overlap in
    #: time, so summing them would overstate elapsed time; this is the
    #: real start-to-finish duration.
    run_wall_seconds: float = 0.0
    #: per-shard replay walls (empty for an unsharded run).
    shard_walls: List[float] = field(default_factory=list)

    @property
    def injected(self) -> int:
        return sum(c.injected for c in self.chains)

    @property
    def delivered(self) -> int:
        return sum(c.delivered for c in self.chains)

    @property
    def wall_seconds(self) -> float:
        """Total rack-work wall summed over chains (overlaps under
        shards; use :attr:`run_wall_seconds` for elapsed time)."""
        return sum(c.wall_seconds for c in self.chains)

    @property
    def achieved_pps(self) -> float:
        """Aggregate throughput against the whole-run wall clock."""
        wall = self.run_wall_seconds or self.wall_seconds
        if wall <= 0:
            return 0.0
        return self.injected / wall

    @property
    def aggregate_delivered_mbps(self) -> float:
        return sum(c.delivered_mbps for c in self.chains)

    @property
    def aggregate_assigned_mbps(self) -> float:
        return sum(c.assigned_mbps for c in self.chains)

    @property
    def ok(self) -> bool:
        """SLO compliance across every chain (the exit-code predicate)."""
        return all(c.slo_met for c in self.chains)

    def as_dict(self) -> dict:
        """Deterministic JSON form (wall-clock quantities excluded)."""
        return {
            "injected": self.injected,
            "delivered": self.delivered,
            "ok": self.ok,
            "chains": [
                {
                    "chain": c.chain_name,
                    "flows": c.flows,
                    "injected": c.injected,
                    "delivered": c.delivered,
                    "assigned_mbps": round(c.assigned_mbps, 6),
                    "delivered_mbps": round(c.delivered_mbps, 6),
                    "t_min_mbps": round(c.t_min_mbps, 6),
                    "latency_p50_us": round(c.latency_p50_us, 6),
                    "latency_p95_us": round(c.latency_p95_us, 6),
                    "latency_p99_us": round(c.latency_p99_us, 6),
                    "latency_slo_us": round(c.latency_slo_us, 6),
                    "latency_slo_met": c.latency_slo_met,
                    "slo_met": c.slo_met,
                }
                for c in self.chains
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        return self.describe()

    def describe(self) -> str:
        """Human-readable table for the ``repro traffic`` subcommand."""
        lines = [
            f"{'chain':<12} {'flows':>5} {'injected':>9} {'delivered':>9} "
            f"{'pps':>10} {'assigned':>9} {'delivered':>10} "
            f"{'t_min':>9} {'p99':>9} {'d_max':>9} {'slo':>9}",
            f"{'':<12} {'':>5} {'':>9} {'':>9} "
            f"{'':>10} {'Mbps':>9} {'Mbps':>10} {'Mbps':>9} "
            f"{'µs':>9} {'µs':>9} {'':>9}",
        ]
        for c in self.chains:
            d_max = (f"{c.latency_slo_us:>9.1f}"
                     if c.latency_slo_us > 0.0 else f"{'—':>9}")
            lines.append(
                f"{c.chain_name:<12} {c.flows:>5} {c.injected:>9} "
                f"{c.delivered:>9} {c.achieved_pps:>10.0f} "
                f"{c.assigned_mbps:>9.0f} {c.delivered_mbps:>10.0f} "
                f"{c.t_min_mbps:>9.0f} {c.latency_p99_us:>9.1f} "
                f"{d_max} "
                f"{'ok' if c.slo_met else 'VIOLATED':>9}"
            )
        lines.append(
            f"{'total':<12} {'':>5} {self.injected:>9} {self.delivered:>9} "
            f"{self.achieved_pps:>10.0f} "
            f"{self.aggregate_assigned_mbps:>9.0f} "
            f"{self.aggregate_delivered_mbps:>10.0f} "
            f"{'':>9} {'':>9} {'':>9} "
            f"{'ok' if self.ok else 'VIOLATED':>9}"
        )
        if self.shard_walls:
            walls = ", ".join(f"{w:.2f}s" for w in self.shard_walls)
            lines.append(
                f"shards: {len(self.shard_walls)} (replay walls: {walls}; "
                f"run wall: {self.run_wall_seconds:.2f}s)"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class TrafficSpec:
    """A fully-stated, picklable traffic replay.

    The same shape as :class:`~repro.sim.faults.ChaosSpec` and
    :class:`~repro.sim.lifecycle.LifecycleSpec`: everything needed to
    rebuild the topology, chains, placement, and rack lives in the spec,
    so :func:`run_traffic` is a pure function of it.
    """

    spec_text: str
    #: one (t_min_mbps, t_max_mbps[, d_max_us]) tuple per chain in spec
    #: order; the delay bound defaults to unbounded when omitted.
    slos: Tuple[Tuple[float, ...], ...]
    #: declarative topology; when set it wins over the legacy flags
    #: below (which remain as the ``TopologySpec.from_flags`` bridge).
    topology: Optional[TopologySpec] = None
    packets_per_chain: int = 2048
    flows_per_chain: int = 64
    batch_size: int = 64
    vectorized: bool = False
    shards: int = 1
    seed: int = 23
    strategy: str = "lemur"
    with_smartnic: bool = False
    with_openflow: bool = False
    servers: int = 0
    metron: bool = False
    #: queueing-delay model the deployed rack stamps (``none`` or ``mm1``).
    queueing: str = "none"
    #: placement objective (``throughput`` or ``tail_latency``).
    objective: str = "throughput"
    #: worker-pool policy for sharded replay: ``"keep"`` reuses the
    #: process-wide persistent pool (warm racks, shm transport),
    #: ``"per-run"`` spawns a throwaway executor per run.
    pool: str = "keep"

    def build_topology(self):
        """Build the (single- or multi-rack) topology this spec names."""
        spec = self.topology if self.topology is not None else \
            TopologySpec.from_flags(
                with_smartnic=self.with_smartnic,
                with_openflow=self.with_openflow,
                servers=self.servers,
                metron=self.metron,
            )
        return spec.build()

    def build_chains(self) -> List[NFChain]:
        return chains_with_slos(self.spec_text, self.slos,
                                error=TrafficError)


@dataclass
class _ShardTask:
    """One worker's share of a sharded replay (must be picklable)."""

    shard_index: int
    chain_names: List[str]
    packets_per_chain: int
    topology: Topology
    artifacts: CompiledArtifacts
    profiles: ProfileDatabase
    placement: Placement
    seed: int
    flows_per_chain: int
    batch_size: int
    vectorized: bool
    queueing: str = "none"


def _run_traffic_shard(task: _ShardTask) -> Tuple[int, list, dict, float]:
    """Pool entry point: rebuild the rack from its compiled artifacts under
    a fresh scoped registry and replay this shard's chains.

    Ships back ``(shard index, chain rows, registry dump, replay wall)``;
    the parent merges the observability state in shard-index order so
    nothing recorded in a worker is lost to process isolation (the same
    contract as :mod:`repro.experiments.parallel`).
    """
    with scoped_registry() as registry:
        rack = DeployedRack(
            task.topology, task.artifacts, task.profiles,
            seed=task.seed, registry=registry,
        )
        configure_rack_queueing(rack, task.placement, task.queueing)
        engine = TrafficEngine(
            rack, task.placement,
            flows_per_chain=task.flows_per_chain,
            batch_size=task.batch_size,
            vectorized=task.vectorized,
        )
        started = time.perf_counter()
        rows = [
            engine._run_chain(cp, task.packets_per_chain)
            for cp in task.placement.chains
            if cp.name in task.chain_names
        ]
        wall = time.perf_counter() - started
        state = registry.dump_state()
    return task.shard_index, rows, state, wall


class TrafficEngine:
    """Replay synthesized flow sets through a deployed rack in batches.

    ``vectorized=True`` switches injection to the columnar fast path
    (:meth:`DeployedRack.run_columns`): one :class:`PacketColumns` batch
    per injection instead of per-packet clones — bit-identical outcomes,
    an order of magnitude more packets per second.

    ``shards=N`` replays chains over ``N`` worker processes (round-robin
    by chain), each rebuilding the rack from the same compiled artifacts
    and seed; per-worker metrics merge back deterministically. Delivery
    outcomes are shard-count invariant; walls and pps reflect the
    parallelism.
    """

    def __init__(self, rack: DeployedRack, placement: Placement, *,
                 flows_per_chain: int = 64, batch_size: int = 64,
                 vectorized: bool = False, shards: int = 1,
                 pool: str = "keep"):
        if flows_per_chain < 1:
            raise ValueError("flows_per_chain must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if pool not in ("keep", "per-run"):
            raise ValueError("pool must be 'keep' or 'per-run'")
        self.rack = rack
        self.placement = placement
        self.flows_per_chain = flows_per_chain
        self.batch_size = batch_size
        self.vectorized = vectorized
        self.shards = shards
        self.pool = pool
        #: chain name -> (chain object, synthesized flow templates); the
        #: chain object guards against a redeployed chain of the same name.
        self._flows: Dict[str, tuple] = {}
        #: identity-keyed (parts, payload, fingerprint) memo for
        #: :meth:`_pooled_bundle`.
        self._bundle_cache: Optional[tuple] = None

    @classmethod
    def from_spec(cls, spec: TrafficSpec, *,
                  registry: Optional[MetricsRegistry] = None
                  ) -> "TrafficEngine":
        """Place, compile, and deploy ``spec``'s chains; return a ready
        engine. Raises :class:`PlacementError` when no placement fits."""
        topology = spec.build_topology()
        if isinstance(topology, MultiRackTopology):
            raise TrafficError(
                "TrafficEngine drives one rack; replay a fabric spec "
                "through run_traffic (which stitches racks via "
                "repro.sim.interrack.run_fabric_traffic)"
            )
        chains = spec.build_chains()
        placer = Placer(topology=topology, profiles=default_profiles(),
                        config=PlacerConfig(strategy=spec.strategy))
        placement = placer.solve(PlacementRequest(
            chains=chains, objective=spec.objective,
        )).placement
        if not placement.feasible:
            raise PlacementError(
                "traffic replay needs a feasible placement: "
                f"{placement.infeasible_reason}"
            )
        artifacts = MetaCompiler(
            topology=topology, profiles=placer.profiles
        ).compile_placement(placement)
        rack = DeployedRack(topology, artifacts, placer.profiles,
                            seed=spec.seed, registry=registry)
        configure_rack_queueing(rack, placement, spec.queueing)
        return cls(rack, placement,
                   flows_per_chain=spec.flows_per_chain,
                   batch_size=spec.batch_size,
                   vectorized=spec.vectorized,
                   shards=spec.shards,
                   pool=spec.pool)

    def synthesize_flows(self, cp: ChainPlacement) -> List[Packet]:
        """One template packet per flow, all inside the chain's aggregate.

        Flow keys vary by source address and source port (the same scheme
        :meth:`DeployedRack.trace_chains` uses), so repeated replay of a
        flow exercises the rack's per-flow classification cache the way a
        real traffic mix would. Synthesized once per chain and memoized:
        replay cycles cheap clones of these templates (the templates
        themselves are never injected, so they stay pristine).
        """
        cached = self._flows.get(cp.name)
        if cached is not None and cached[0] is cp.chain:
            return cached[1]
        flows = [
            _chain_packet(cp.chain, index)
            for index in range(self.flows_per_chain)
        ]
        self._flows[cp.name] = (cp.chain, flows)
        return flows

    @staticmethod
    def _columnar_latencies(result) -> List[float]:
        """Delivered-packet latency stamps (µs) from a columnar result."""
        samples: List[float] = []
        for block in result.blocks:
            samples.extend(block.latency_us.tolist())
        for packet in result.scalar.values():
            if packet is not None:
                samples.append(packet.metadata.fields["latency_us"])
        return samples

    @staticmethod
    def _scalar_latencies(result) -> List[float]:
        """Delivered-packet latency stamps (µs) from a scalar result."""
        return [
            packet.metadata.fields["latency_us"]
            for packet in result.outputs
            if packet is not None
        ]

    def replay_batch(self, cp: ChainPlacement, cursor: int,
                     count: int) -> Tuple[int, int, List[float]]:
        """Inject ``count`` packets of ``cp``'s flow cycle from ``cursor``.

        The chaos engine's segment-by-segment injection primitive: packet
        ``cursor + i`` belongs to flow ``(cursor + i) % flows_per_chain``,
        exactly the cycling :meth:`run` uses, so resuming a replay after a
        redeploy continues the same deterministic flow sequence. Returns
        ``(delivered, new_cursor, latency_samples)``; the samples are the
        delivered packets' stamped end-to-end latencies (µs), the guard's
        windowed-quantile input.
        """
        flows = self.synthesize_flows(cp)
        n_flows = len(flows)
        delivered = 0
        injected = 0
        latencies: List[float] = []
        while injected < count:
            size = min(self.batch_size, count - injected)
            base = cursor + injected
            if self.vectorized:
                sig = [(base + offset) % n_flows for offset in range(size)]
                result = self.rack.run_columns(
                    cp, PacketColumns.for_flows(flows, sig)
                )
                delivered += result.delivered
                latencies.extend(self._columnar_latencies(result))
            else:
                batch = [
                    flows[(base + offset) % n_flows].copy()
                    for offset in range(size)
                ]
                scalar_result = self.rack.run(cp, batch)
                delivered += scalar_result.delivered
                latencies.extend(self._scalar_latencies(scalar_result))
            injected += size
        return delivered, cursor + injected, latencies

    def run(self, packets_per_chain: int = 1024,
            chain_names: Optional[List[str]] = None) -> TrafficReport:
        """Inject ``packets_per_chain`` packets per chain, in batches."""
        selected = [
            cp for cp in self.placement.chains
            if chain_names is None or cp.name in chain_names
        ]
        report = TrafficReport()
        started = time.perf_counter()
        if self.shards > 1 and len(selected) > 1:
            report.chains, report.shard_walls = self._run_sharded(
                selected, packets_per_chain
            )
        else:
            report.chains = [
                self._run_chain(cp, packets_per_chain) for cp in selected
            ]
        report.run_wall_seconds = time.perf_counter() - started
        return report

    def _run_chain(self, cp: ChainPlacement, packets_per_chain: int,
                   sig_schedule: Optional[Sequence[int]] = None
                   ) -> ChainTrafficReport:
        """Replay one chain; only rack work lands in the timed region.

        ``sig_schedule`` optionally supplies the precomputed flow-cycle
        signature column (``i % flows_per_chain`` for packet ``i``) as an
        array — the pooled sharded path passes a zero-copy view over a
        shared-memory segment so workers skip rebuilding it per batch.
        The values are identical to the inline computation by
        construction, so outcomes do not depend on the transport.
        """
        flows = self.synthesize_flows(cp)
        n_flows = len(flows)
        if sig_schedule is not None and len(sig_schedule) < packets_per_chain:
            sig_schedule = None
        run_columns = self.rack.run_columns
        run = self.rack.run
        delivered = 0
        injected = 0
        wall = 0.0
        latencies: List[float] = []
        while injected < packets_per_chain:
            size = min(self.batch_size, packets_per_chain - injected)
            # cycle the flow set: packet i belongs to flow i % flows
            if self.vectorized:
                if sig_schedule is not None:
                    sig = sig_schedule[injected:injected + size]
                else:
                    sig = [
                        (injected + offset) % n_flows
                        for offset in range(size)
                    ]
                started = time.perf_counter()
                columns = PacketColumns.for_flows(flows, sig)
                result = run_columns(cp, columns)
                delivered += result.delivered
                wall += time.perf_counter() - started
                # quantile bookkeeping stays outside the timed region
                latencies.extend(self._columnar_latencies(result))
            else:
                batch = [
                    flows[(injected + offset) % n_flows].copy()
                    for offset in range(size)
                ]
                started = time.perf_counter()
                scalar_result = run(cp, batch)
                delivered += scalar_result.delivered
                wall += time.perf_counter() - started
                latencies.extend(self._scalar_latencies(scalar_result))
            injected += size
        d_max = cp.chain.slo.d_max
        return ChainTrafficReport(
            chain_name=cp.name,
            flows=min(self.flows_per_chain, packets_per_chain),
            injected=injected,
            delivered=delivered,
            dropped=injected - delivered,
            wall_seconds=wall,
            assigned_mbps=self.placement.rates.get(cp.name, 0.0),
            t_min_mbps=cp.chain.slo.t_min,
            latency_p50_us=quantile(latencies, 0.50),
            latency_p95_us=quantile(latencies, 0.95),
            latency_p99_us=quantile(latencies, 0.99),
            latency_slo_us=0.0 if math.isinf(d_max) else d_max,
        )

    def _pooled_bundle(self) -> Tuple[bytes, str]:
        """The pickled ``(topology, artifacts, profiles, placement)``
        bundle plus its fingerprint, cached while those exact objects are
        still installed (a redeploy swaps them, invalidating by identity
        — the cache holds strong references, so ids cannot be reused)."""
        from repro.runtime.rackcache import bundle_fingerprint

        parts = (self.rack.topology, self.rack.artifacts,
                 self.rack.profiles, self.placement)
        cached = self._bundle_cache
        if cached is not None and all(
            old is new for old, new in zip(cached[0], parts)
        ):
            return cached[1], cached[2]
        payload = pickle.dumps(parts)
        fingerprint = bundle_fingerprint(payload)
        self._bundle_cache = (parts, payload, fingerprint)
        return payload, fingerprint

    def _run_sharded(self, selected: List[ChainPlacement],
                     packets_per_chain: int
                     ) -> Tuple[List[ChainTrafficReport], List[float]]:
        """Round-robin the chains over worker processes and merge back."""
        shard_names: List[List[str]] = [[] for _ in range(self.shards)]
        for index, cp in enumerate(selected):
            shard_names[index % self.shards].append(cp.name)
        shard_names = [names for names in shard_names if names]
        rack = self.rack
        if self.pool == "keep" and not in_worker():
            try:
                payload, fingerprint = self._pooled_bundle()
            except Exception:
                warnings.warn(
                    "traffic shard tasks are not picklable (ad-hoc "
                    "topology or profiles?); falling back to "
                    "single-process replay",
                    RuntimeWarning, stacklevel=3,
                )
                return (
                    [self._run_chain(cp, packets_per_chain)
                     for cp in selected],
                    [],
                )
            try:
                outcomes = self._dispatch_pooled(
                    shard_names, packets_per_chain, payload, fingerprint
                )
                return self._merge_shards(outcomes, selected)
            except WorkerPoolError as exc:
                warnings.warn(
                    f"persistent worker pool dispatch failed ({exc}); "
                    "falling back to a per-run pool",
                    RuntimeWarning, stacklevel=3,
                )
        tasks = [
            _ShardTask(
                shard_index=index,
                chain_names=names,
                packets_per_chain=packets_per_chain,
                topology=rack.topology,
                artifacts=rack.artifacts,
                profiles=rack.profiles,
                placement=self.placement,
                seed=rack.seed,
                flows_per_chain=self.flows_per_chain,
                batch_size=self.batch_size,
                vectorized=self.vectorized,
                queueing=rack.queueing.kind,
            )
            for index, names in enumerate(shard_names)
        ]
        try:
            pickle.dumps(tasks)
        except Exception:
            warnings.warn(
                "traffic shard tasks are not picklable (ad-hoc topology or "
                "profiles?); falling back to single-process replay",
                RuntimeWarning, stacklevel=3,
            )
            return (
                [self._run_chain(cp, packets_per_chain) for cp in selected],
                [],
            )
        max_workers = min(len(tasks), os.cpu_count() or 1)
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = [
                pool.submit(_run_traffic_shard, task) for task in tasks
            ]
            outcomes = [future.result() for future in futures]
        return self._merge_shards(outcomes, selected)

    def _dispatch_pooled(self, shard_names: List[List[str]],
                         packets_per_chain: int,
                         payload: bytes, fingerprint: str) -> List[tuple]:
        """Fan the shards over the persistent pool.

        Artifacts ship by fingerprint: the pickled
        ``(topology, artifacts, profiles, placement)`` bundle travels to
        each worker at most once, afterwards only its sha256 rides in the
        task and the worker reuses (or delta-redeploys) its cached warm
        rack. A worker that lost its cache (respawn) answers with a typed
        stale error and the shard is re-dispatched once with the payload
        attached. The vectorized flow-signature schedule crosses over
        shared memory (inline below the shm size threshold).
        """
        from repro.runtime.pool import PoolCall, get_pool
        from repro.runtime.rackcache import (
            ArtifactBundle,
            PooledShardTask,
            run_traffic_shard,
        )
        from repro.runtime.shm import ShmArrays

        rack = self.rack
        worker_pool = get_pool(len(shard_names))
        workers = worker_pool.plan(len(shard_names))
        shm = None
        if self.vectorized:
            schedule = (
                np.arange(packets_per_chain, dtype=np.int64)
                % self.flows_per_chain
            )
            shm = ShmArrays.pack({"sig": schedule})
        try:
            calls = []
            for index, (names, worker) in enumerate(
                zip(shard_names, workers)
            ):
                ship = worker_pool.needs_payload(worker, fingerprint)
                calls.append(PoolCall(
                    run_traffic_shard,
                    PooledShardTask(
                        shard_index=index,
                        chain_names=names,
                        packets_per_chain=packets_per_chain,
                        bundle=ArtifactBundle(
                            fingerprint, payload if ship else None
                        ),
                        seed=rack.seed,
                        flows_per_chain=self.flows_per_chain,
                        batch_size=self.batch_size,
                        vectorized=self.vectorized,
                        sig_shm=shm,
                        queueing=rack.queueing.kind,
                    ),
                    worker=worker,
                ))
            outcomes = worker_pool.dispatch(calls, return_exceptions=True)
            retries = []
            for slot, outcome in enumerate(outcomes):
                if not isinstance(outcome, WorkerPoolError):
                    continue
                remote = getattr(outcome, "remote_type", "")
                if remote != "StaleArtifactsError":
                    raise outcome
                call = calls[slot]
                call.arg.bundle = ArtifactBundle(fingerprint, payload)
                retries.append((slot, call))
            if retries:
                redone = worker_pool.dispatch(
                    [call for _slot, call in retries]
                )
                for (slot, _call), outcome in zip(retries, redone):
                    outcomes[slot] = outcome
        finally:
            if shm is not None:
                shm.release()
        return outcomes

    def _merge_shards(self, outcomes: List[tuple],
                      selected: List[ChainPlacement]
                      ) -> Tuple[List[ChainTrafficReport], List[float]]:
        # deterministic merge-back: shard-index order, then placement order
        outcomes = sorted(outcomes, key=lambda outcome: outcome[0])
        registry = self.rack.obs
        rows_by_name: Dict[str, ChainTrafficReport] = {}
        shard_walls: List[float] = []
        for _index, rows, state, shard_wall in outcomes:
            registry.merge_state(state)
            shard_walls.append(shard_wall)
            for row in rows:
                rows_by_name[row.chain_name] = row
        return [rows_by_name[cp.name] for cp in selected], shard_walls


def run_traffic(
    spec: TrafficSpec,
    registry: Optional[MetricsRegistry] = None,
):
    """Run one high-volume replay from a fully-stated spec.

    A single-rack spec returns a :class:`TrafficReport`; a multi-rack
    spec is placed hierarchically and stitched over the inter-rack
    links, returning a
    :class:`~repro.sim.interrack.FabricTrafficReport` (same ``ok`` /
    ``describe`` / ``as_dict`` surface).
    """
    topology = spec.build_topology()
    if isinstance(topology, MultiRackTopology):
        from repro.sim.interrack import run_fabric_traffic

        return run_fabric_traffic(spec, topology, registry=registry)
    engine = TrafficEngine.from_spec(spec, registry=registry)
    return engine.run(packets_per_chain=spec.packets_per_chain)
