"""High-volume traffic engine driving the batched dataplane fast path.

The :class:`TrafficEngine` synthesizes a per-chain flow set inside each
chain's traffic aggregate, replays ``packets_per_chain`` packets over those
flows through :meth:`DeployedRack.run`, and reports what the
deployed rack achieved: simulator packets/second, delivery fraction, and
the delivered rate against the LP's per-chain rate assignment
(``Placement.rates``) — the same quantity Figure 2's measured bars are
drawn from.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.placement import ChainPlacement, Placement
from repro.net.packet import Packet
from repro.sim.runtime import DeployedRack, _chain_packet

#: packet size used for rate conversion — matches the synthesized packets'
#: ``total_bytes`` in :func:`repro.sim.runtime._chain_packet`.
PACKET_BITS = 512 * 8


@dataclass
class ChainTrafficReport:
    """What one chain achieved under high-volume replay."""

    chain_name: str
    flows: int
    injected: int
    delivered: int
    dropped: int
    wall_seconds: float
    #: the LP's rate assignment for this chain (Mbps); 0 when unassigned.
    assigned_mbps: float

    @property
    def delivered_fraction(self) -> float:
        return self.delivered / self.injected if self.injected else 0.0

    @property
    def achieved_pps(self) -> float:
        """Simulator throughput: packets pushed through the rack per
        wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.injected / self.wall_seconds

    @property
    def delivered_mbps(self) -> float:
        """Delivered share of the LP-assigned rate: the rack sustains the
        assigned rate scaled by the fraction of packets it delivered."""
        return self.assigned_mbps * self.delivered_fraction


@dataclass
class TrafficReport:
    """Aggregate of one :meth:`TrafficEngine.run` invocation."""

    chains: List[ChainTrafficReport] = field(default_factory=list)

    @property
    def injected(self) -> int:
        return sum(c.injected for c in self.chains)

    @property
    def delivered(self) -> int:
        return sum(c.delivered for c in self.chains)

    @property
    def wall_seconds(self) -> float:
        return sum(c.wall_seconds for c in self.chains)

    @property
    def achieved_pps(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.injected / self.wall_seconds

    @property
    def aggregate_delivered_mbps(self) -> float:
        return sum(c.delivered_mbps for c in self.chains)

    @property
    def aggregate_assigned_mbps(self) -> float:
        return sum(c.assigned_mbps for c in self.chains)

    def describe(self) -> str:
        """Human-readable table for the ``repro traffic`` subcommand."""
        lines = [
            f"{'chain':<12} {'flows':>5} {'injected':>9} {'delivered':>9} "
            f"{'pps':>10} {'assigned':>9} {'delivered':>10}",
            f"{'':<12} {'':>5} {'':>9} {'':>9} "
            f"{'':>10} {'Mbps':>9} {'Mbps':>10}",
        ]
        for c in self.chains:
            lines.append(
                f"{c.chain_name:<12} {c.flows:>5} {c.injected:>9} "
                f"{c.delivered:>9} {c.achieved_pps:>10.0f} "
                f"{c.assigned_mbps:>9.0f} {c.delivered_mbps:>10.0f}"
            )
        lines.append(
            f"{'total':<12} {'':>5} {self.injected:>9} {self.delivered:>9} "
            f"{self.achieved_pps:>10.0f} "
            f"{self.aggregate_assigned_mbps:>9.0f} "
            f"{self.aggregate_delivered_mbps:>10.0f}"
        )
        return "\n".join(lines)


class TrafficEngine:
    """Replay synthesized flow sets through a deployed rack in batches."""

    def __init__(self, rack: DeployedRack, placement: Placement, *,
                 flows_per_chain: int = 64, batch_size: int = 64):
        if flows_per_chain < 1:
            raise ValueError("flows_per_chain must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.rack = rack
        self.placement = placement
        self.flows_per_chain = flows_per_chain
        self.batch_size = batch_size

    def synthesize_flows(self, cp: ChainPlacement) -> List[Packet]:
        """One template packet per flow, all inside the chain's aggregate.

        Flow keys vary by source address and source port (the same scheme
        :meth:`DeployedRack.trace_chains` uses), so repeated replay of a
        flow exercises the rack's per-flow classification cache the way a
        real traffic mix would.
        """
        return [
            _chain_packet(cp.chain, index)
            for index in range(self.flows_per_chain)
        ]

    def replay_batch(self, cp: ChainPlacement, cursor: int,
                     count: int) -> Tuple[int, int]:
        """Inject ``count`` packets of ``cp``'s flow cycle from ``cursor``.

        The chaos engine's segment-by-segment injection primitive: packet
        ``cursor + i`` belongs to flow ``(cursor + i) % flows_per_chain``,
        exactly the cycling :meth:`run` uses, so resuming a replay after a
        redeploy continues the same deterministic flow sequence. Returns
        ``(delivered, new_cursor)``.
        """
        delivered = 0
        injected = 0
        while injected < count:
            size = min(self.batch_size, count - injected)
            batch = [
                _chain_packet(cp.chain,
                              (cursor + injected + offset)
                              % self.flows_per_chain)
                for offset in range(size)
            ]
            delivered += self.rack.run(cp, batch).delivered
            injected += size
        return delivered, cursor + injected

    def run(self, packets_per_chain: int = 1024,
            chain_names: Optional[List[str]] = None) -> TrafficReport:
        """Inject ``packets_per_chain`` packets per chain, in batches."""
        report = TrafficReport()
        for cp in self.placement.chains:
            if chain_names is not None and cp.name not in chain_names:
                continue
            report.chains.append(self._run_chain(cp, packets_per_chain))
        return report

    def _run_chain(self, cp: ChainPlacement,
                   packets_per_chain: int) -> ChainTrafficReport:
        delivered = 0
        injected = 0
        started = time.perf_counter()
        while injected < packets_per_chain:
            size = min(self.batch_size, packets_per_chain - injected)
            batch = [
                # cycle the flow set: packet i belongs to flow i % flows
                _chain_packet(cp.chain, (injected + offset)
                              % self.flows_per_chain)
                for offset in range(size)
            ]
            delivered += self.rack.run(cp, batch).delivered
            injected += size
        wall = time.perf_counter() - started
        return ChainTrafficReport(
            chain_name=cp.name,
            flows=min(self.flows_per_chain, packets_per_chain),
            injected=injected,
            delivered=delivered,
            dropped=injected - delivered,
            wall_seconds=wall,
            assigned_mbps=self.placement.rates.get(cp.name, 0.0),
        )
