"""Fault-injection timeline + SLO-guard auto-replan (chaos engineering).

Lemur's contract is that every admitted chain keeps its SLO minimum rate
while marginal throughput is maximized (§3) — but a static, healthy rack
cannot demonstrate that the contract *survives* change. This module closes
the loop the related work treats as first-class (online scaling/recovery):

* :class:`FaultTimeline` — a deterministic, seedable schedule of fault
  events (device failure/recovery, link-capacity degradation, core loss)
  keyed by **global injected-packet offsets**, so the same timeline always
  perturbs the same packets regardless of wall clock or parallelism.
* :class:`ChaosEngine` — replays per-chain traffic through a
  :class:`~repro.sim.runtime.DeployedRack` via the
  :class:`~repro.sim.traffic.TrafficEngine`, fires timeline events, and
  runs the **SLO guard**: per-chain delivered rate is watched over a
  configurable packet window; on violation the guard first sheds marginal
  rate down to SLO minimums (re-solving the rate LP on the surviving
  placement), and if the violation persists it auto-replans through
  :meth:`Placer.solve` with the failed devices excluded (the placement
  cache keys on the failure state, so repeated identical failures are
  warm) and live-redeploys the new rack, replaying the remaining traffic.
* :class:`ChaosReport` — a per-phase SLO compliance table whose rendering
  is byte-identical across repeated runs and ``--jobs`` settings; phases
  are delimited by fault events and guard reactions.

Guard observability (exported through ``repro.obs``): ``slo.violations``
(per chain), ``guard.degradations``, ``replan.count`` /
``replan.cache_hits`` / ``replan.infeasible``, the ``replan.latency_seconds``
histogram, and the ``guard.degraded_mode`` / ``guard.chains_in_violation``
gauges.
"""

from __future__ import annotations

import json
import math
import pickle
import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chain.graph import NFChain, chains_with_slos
from repro.core.cache import PlacementCache
from repro.core.lp import solve_rates
from repro.core.placer import Placer, PlacerConfig, PlacementRequest
from repro.core.rates import device_utilization, server_offered_load
from repro.exceptions import FaultInjectionError, PlacementError
from repro.hw.multirack import MultiRackTopology
from repro.hw.spec import TopologySpec, topology_for
from repro.hw.topology import Topology
from repro.metacompiler.compiler import MetaCompiler
from repro.obs import MetricsRegistry, get_registry, quantile
from repro.profiles.defaults import ProfileDatabase, default_profiles
from repro.sim.measurement import QueueingModel
from repro.sim.runtime import DeployedRack
from repro.sim.traffic import ChainTrafficReport, TrafficEngine
from repro.units import SLO_RTOL

#: actions a timeline event may carry; ``severity`` means the fraction of
#: link capacity lost for ``degrade_link`` and the number of cores lost
#: for ``lose_cores`` (ignored by the others).
FAULT_ACTIONS = (
    "fail",
    "recover",
    "degrade_link",
    "restore_link",
    "lose_cores",
    "restore_cores",
)

#: actions that only make sense against a server (they model the
#: server-side link / core pool).
_SERVER_ACTIONS = frozenset(
    {"degrade_link", "restore_link", "lose_cores", "restore_cores"}
)

#: backwards-compatible alias — the constant lives in :mod:`repro.units`
#: so traffic reports can share it without importing the chaos engine.
_SLO_RTOL = SLO_RTOL


# ---------------------------------------------------------------------------
# timeline
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault, fired when the global injected-packet count
    reaches ``at_packet`` (events land on the first batch boundary at or
    after their offset)."""

    at_packet: int
    action: str
    target: str
    severity: float = 1.0

    def describe(self) -> str:
        extra = ""
        if self.action == "degrade_link":
            extra = f" severity={self.severity:g}"
        elif self.action == "lose_cores":
            extra = f" cores={int(self.severity)}"
        return f"at={self.at_packet} {self.action} {self.target}{extra}"


@dataclass(frozen=True)
class FaultTimeline:
    """An ordered, validated schedule of :class:`FaultEvent`.

    ``seed`` feeds both :meth:`random` synthesis and the rack's
    deterministic drop hash, so (seed, timeline) fully determines a chaos
    run's packet outcomes.
    """

    events: Tuple[FaultEvent, ...] = ()
    seed: int = 23

    def sorted_events(self) -> List[FaultEvent]:
        """Events by firing offset; ties keep declaration order."""
        return sorted(
            self.events, key=lambda ev: ev.at_packet
        )

    def validate(self, topology: Topology) -> None:
        """Reject events that cannot apply to this topology."""
        server_names = {s.name for s in topology.servers}
        for ev in self.events:
            if ev.action not in FAULT_ACTIONS:
                raise FaultInjectionError(
                    f"unknown fault action {ev.action!r}; "
                    f"choose from {sorted(FAULT_ACTIONS)}"
                )
            if ev.at_packet < 0:
                raise FaultInjectionError(
                    f"event {ev.describe()!r}: at_packet must be >= 0"
                )
            if ev.target == topology.switch.name:
                raise FaultInjectionError(
                    "cannot inject faults into the ToR switch "
                    "(it coordinates the rack)"
                )
            topology.device(ev.target)  # raises TopologyError if unknown
            if ev.action in _SERVER_ACTIONS and ev.target not in server_names:
                raise FaultInjectionError(
                    f"{ev.action} targets a server link/core pool; "
                    f"{ev.target!r} is not a server"
                )
            if ev.action == "degrade_link" and not 0.0 < ev.severity <= 1.0:
                raise FaultInjectionError(
                    f"degrade_link severity must be in (0, 1], "
                    f"got {ev.severity}"
                )
            if ev.action == "lose_cores" and int(ev.severity) < 1:
                raise FaultInjectionError(
                    f"lose_cores severity must be a core count >= 1, "
                    f"got {ev.severity}"
                )

    # -- (de)serialization --------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "events": [
                    {
                        "at_packet": ev.at_packet,
                        "action": ev.action,
                        "target": ev.target,
                        "severity": ev.severity,
                    }
                    for ev in self.events
                ],
            },
            indent=2,
            sort_keys=True,
        )

    #: the exhaustive wire fields; anything else is rejected so schema
    #: typos fail loudly instead of silently defaulting.
    _EVENT_FIELDS = frozenset({"at_packet", "action", "target", "severity"})
    _TOP_FIELDS = frozenset({"seed", "events"})

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultTimeline":
        if not isinstance(payload, dict):
            raise FaultInjectionError(
                f"timeline must be an object, got {type(payload).__name__}"
            )
        unknown = set(payload) - cls._TOP_FIELDS
        if unknown:
            raise FaultInjectionError(
                f"timeline carries unknown fields {sorted(unknown)}"
            )
        try:
            events = []
            for ev in payload.get("events", ()):
                bad = set(ev) - cls._EVENT_FIELDS
                if bad:
                    raise FaultInjectionError(
                        f"timeline event carries unknown fields "
                        f"{sorted(bad)}"
                    )
                events.append(FaultEvent(
                    at_packet=int(ev["at_packet"]),
                    action=str(ev["action"]),
                    target=str(ev["target"]),
                    severity=float(ev.get("severity", 1.0)),
                ))
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultInjectionError(f"malformed timeline: {exc}") from exc
        return cls(events=tuple(events), seed=int(payload.get("seed", 23)))

    @classmethod
    def parse_json(cls, text: str) -> "FaultTimeline":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultInjectionError(
                f"timeline is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(payload)

    @classmethod
    def random(
        cls,
        seed: int,
        topology: Topology,
        n_events: int = 2,
        horizon: int = 1024,
    ) -> "FaultTimeline":
        """Synthesize a seeded random timeline over a topology's devices.

        Only the seed and the topology's device inventory determine the
        result: the same (seed, topology, n_events, horizon) always yields
        the same timeline.
        """
        rng = random.Random(seed)
        servers = sorted(s.name for s in topology.servers)
        nics = sorted(n.name for n in topology.smartnics)
        failable = sorted(set(servers[1:]) | set(nics)) or servers
        events = []
        for _ in range(n_events):
            action = rng.choice(("fail", "degrade_link", "lose_cores"))
            if action == "fail" and failable:
                target, severity = rng.choice(failable), 1.0
            elif action == "degrade_link":
                target = rng.choice(servers)
                severity = round(rng.uniform(0.3, 0.9), 3)
            else:
                action = "lose_cores"
                target = rng.choice(servers)
                severity = float(rng.randint(1, 2))
            events.append(FaultEvent(
                at_packet=rng.randrange(1, max(2, horizon)),
                action=action,
                target=target,
                severity=severity,
            ))
        events.sort(key=lambda ev: (ev.at_packet, ev.action, ev.target))
        return cls(events=tuple(events), seed=seed)


# ---------------------------------------------------------------------------
# guard configuration and chaos spec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GuardConfig:
    """SLO-guard policy knobs.

    The guard evaluates a chain once it has injected ``window_packets``
    in the current phase; a violation is a delivered rate below
    ``threshold`` × t_min, **or** a windowed tail latency above the
    chain's ``d_max`` delay bound (for chains that declare one). The
    tail is the ``latency_quantile`` of the last ``window_packets``
    delivered-latency stamps; 0 disables latency guarding. Reactions
    ladder identically for both violation kinds: graceful degradation
    first (when ``degrade_first``) — shedding marginal rate lowers
    utilization and with it the queueing wait — then up to
    ``max_replans`` full replans.
    """

    window_packets: int = 128
    threshold: float = 1.0
    degrade_first: bool = True
    max_replans: int = 3
    #: quantile of windowed latency compared against d_max (0 = off).
    latency_quantile: float = 0.99


@dataclass(frozen=True)
class ChaosSpec:
    """A fully-stated, picklable chaos experiment.

    Workers rebuild the topology, chains, placer, and rack from this spec
    alone, which is what makes replica determinism checks possible.
    """

    spec_text: str
    #: one (t_min_mbps, t_max_mbps[, d_max_us]) tuple per chain in spec
    #: order; the delay bound defaults to unbounded when omitted.
    slos: Tuple[Tuple[float, ...], ...]
    #: declarative topology; when set it wins over the legacy flags
    #: below (which remain as the ``TopologySpec.from_flags`` bridge).
    topology: Optional[TopologySpec] = None
    timeline: FaultTimeline = field(default_factory=FaultTimeline)
    packets_per_chain: int = 512
    flows_per_chain: int = 32
    batch_size: int = 32
    guard: GuardConfig = field(default_factory=GuardConfig)
    seed: int = 23
    strategy: str = "lemur"
    with_smartnic: bool = False
    with_openflow: bool = False
    servers: int = 0
    metron: bool = False
    #: queueing-delay model the deployed rack stamps (``none`` or ``mm1``).
    queueing: str = "none"
    #: placement objective (``throughput`` or ``tail_latency``).
    objective: str = "throughput"

    def build_topology(self):
        """Build the (single- or multi-rack) topology this spec names."""
        spec = self.topology if self.topology is not None else \
            TopologySpec.from_flags(
                with_smartnic=self.with_smartnic,
                with_openflow=self.with_openflow,
                servers=self.servers,
                metron=self.metron,
            )
        return spec.build()

    def build_chains(self) -> List[NFChain]:
        return chains_with_slos(self.spec_text, self.slos,
                                error=FaultInjectionError)


# ---------------------------------------------------------------------------
# report
# ---------------------------------------------------------------------------


@dataclass
class PhaseReport:
    """One contiguous stretch of traffic under a fixed fault/guard state."""

    index: int
    label: str
    mode: str  # normal | degraded | replanned | exhausted
    start_packet: int
    #: per-chain traffic rows (the TrafficEngine's report type).
    chains: List[ChainTrafficReport] = field(default_factory=list)
    #: chain name -> SLO minimum rate (Mbps) in force during the phase.
    t_mins: Dict[str, float] = field(default_factory=dict)

    def slo_met(self, row: ChainTrafficReport) -> bool:
        """Rate floor AND tail-latency bound for one chain in this phase."""
        return self.rate_slo_met(row) and row.latency_slo_met

    def rate_slo_met(self, row: ChainTrafficReport) -> bool:
        t_min = self.t_mins.get(row.chain_name, 0.0)
        if t_min <= 0.0 or row.injected == 0:
            return True
        return row.delivered_mbps >= t_min * (1.0 - _SLO_RTOL)

    @property
    def compliant(self) -> bool:
        return all(self.slo_met(row) for row in self.chains)


@dataclass
class ChaosReport:
    """Everything one chaos run produced, rendered deterministically."""

    seed: int
    phases: List[PhaseReport] = field(default_factory=list)
    events_applied: List[str] = field(default_factory=list)
    violations: int = 0
    #: subset of ``violations`` triggered by the windowed tail latency
    #: (a chain can violate on rate, latency, or both in one window).
    latency_violations: int = 0
    degradations: int = 0
    replans: int = 0
    replan_cache_hits: int = 0
    infeasible_replans: int = 0

    @property
    def total_injected(self) -> int:
        return sum(row.injected for ph in self.phases for row in ph.chains)

    @property
    def total_delivered(self) -> int:
        return sum(row.delivered for ph in self.phases for row in ph.chains)

    @property
    def ok(self) -> bool:
        """Exit-code predicate: SLO compliance where the run *ended up*.

        Only the final phase counts — transient violations mid-timeline
        are exactly what the guard exists to repair, so the run is judged
        on the state it settled into.
        """
        return all(ph.compliant for ph in self.phases[-1:])

    def phase(self, label: str) -> PhaseReport:
        for ph in self.phases:
            if ph.label == label:
                return ph
        raise KeyError(label)

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "events_applied": list(self.events_applied),
            "violations": self.violations,
            "latency_violations": self.latency_violations,
            "degradations": self.degradations,
            "replans": self.replans,
            "replan_cache_hits": self.replan_cache_hits,
            "infeasible_replans": self.infeasible_replans,
            "total_injected": self.total_injected,
            "total_delivered": self.total_delivered,
            "phases": [
                {
                    "index": ph.index,
                    "label": ph.label,
                    "mode": ph.mode,
                    "start_packet": ph.start_packet,
                    "compliant": ph.compliant,
                    "chains": [
                        {
                            "chain": row.chain_name,
                            "injected": row.injected,
                            "delivered": row.delivered,
                            "assigned_mbps": round(row.assigned_mbps, 6),
                            "delivered_mbps": round(row.delivered_mbps, 6),
                            "t_min_mbps": round(
                                ph.t_mins.get(row.chain_name, 0.0), 6
                            ),
                            "latency_p50_us": round(row.latency_p50_us, 6),
                            "latency_p95_us": round(row.latency_p95_us, 6),
                            "latency_p99_us": round(row.latency_p99_us, 6),
                            "latency_slo_us": round(row.latency_slo_us, 6),
                            "latency_slo_met": row.latency_slo_met,
                            "slo_met": ph.slo_met(row),
                        }
                        for row in ph.chains
                    ],
                }
                for ph in self.phases
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        """The per-phase SLO compliance table (byte-identical across runs
        with the same seed + timeline — no wall-clock quantities)."""
        lines = [f"chaos report (seed={self.seed})"]
        if self.events_applied:
            lines.append("events:")
            lines.extend(f"  {entry}" for entry in self.events_applied)
        else:
            lines.append("events: none")
        lines.append(
            f"{'phase':<28} {'mode':<10} {'chain':<12} {'injected':>8} "
            f"{'delivered':>9} {'assigned':>10} {'delivered':>10} "
            f"{'t_min':>9} {'p99':>9} {'d_max':>9} {'slo':>9}"
        )
        lines.append(
            f"{'':<28} {'':<10} {'':<12} {'':>8} {'':>9} "
            f"{'Mbps':>10} {'Mbps':>10} {'Mbps':>9} "
            f"{'µs':>9} {'µs':>9} {'':>9}"
        )
        for ph in self.phases:
            for row in ph.chains:
                label = f"{ph.index}:{ph.label}"
                d_max = (f"{row.latency_slo_us:>9.1f}"
                         if row.latency_slo_us > 0.0 else f"{'—':>9}")
                lines.append(
                    f"{label:<28} {ph.mode:<10} {row.chain_name:<12} "
                    f"{row.injected:>8} {row.delivered:>9} "
                    f"{row.assigned_mbps:>10.2f} {row.delivered_mbps:>10.2f} "
                    f"{ph.t_mins.get(row.chain_name, 0.0):>9.2f} "
                    f"{row.latency_p99_us:>9.1f} {d_max} "
                    f"{'ok' if ph.slo_met(row) else 'VIOLATED':>9}"
                )
        lines.append(
            f"totals: injected={self.total_injected} "
            f"delivered={self.total_delivered} "
            f"violations={self.violations} "
            f"(latency {self.latency_violations}) "
            f"degradations={self.degradations} replans={self.replans} "
            f"(cache hits {self.replan_cache_hits}, "
            f"infeasible {self.infeasible_replans})"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------


class ChaosEngine:
    """Drive traffic, fire faults, guard SLOs, degrade, replan, redeploy."""

    def __init__(
        self,
        chains: Sequence[NFChain],
        timeline: FaultTimeline,
        *,
        topology: Optional[Topology] = None,
        profiles: Optional[ProfileDatabase] = None,
        guard: Optional[GuardConfig] = None,
        strategy: str = "lemur",
        flows_per_chain: int = 32,
        batch_size: int = 32,
        seed: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        cache: Optional[PlacementCache] = None,
        queueing: str = "none",
        objective: str = "throughput",
    ):
        self.chains = list(chains)
        self.timeline = timeline
        self.topology = topology or topology_for("paper-testbed").build()
        if isinstance(self.topology, MultiRackTopology):
            raise FaultInjectionError(
                "ChaosEngine guards one rack; drive a fabric through "
                "run_chaos (which stitches racks via "
                "repro.sim.interrack.run_fabric_chaos)"
            )
        self.profiles = profiles or default_profiles()
        self.guard = guard or GuardConfig()
        self.strategy = strategy
        self.flows_per_chain = flows_per_chain
        self.batch_size = batch_size
        #: validated eagerly so a typo fails at construction, not mid-run.
        self.queueing = QueueingModel(queueing).kind
        self.objective = objective
        self.seed = timeline.seed if seed is None else seed
        self.obs = registry if registry is not None else get_registry()
        #: placement memo shared across replans: identical failure states
        #: fingerprint identically, so repeated failures replan warm.
        self.cache = cache if cache is not None else PlacementCache()
        timeline.validate(self.topology)

        self.placer = Placer(
            topology=self.topology,
            profiles=self.profiles,
            config=PlacerConfig(strategy=strategy),
            cache=self.cache,
        )

        # mutable run state
        self.downed: set = set()
        self.link_factor: Dict[str, float] = {}
        self.lost_cores: Dict[str, int] = {}
        #: servers whose *current* placement predates their core loss —
        #: dead cores hit the running subgroups; a replan that reserves
        #: around them clears the marker (its allocation avoids them).
        self._stale_cores: set = set()
        self.placement = None
        self.rack: Optional[DeployedRack] = None
        self.traffic: Optional[TrafficEngine] = None
        self.rates: Dict[str, float] = {}

    @classmethod
    def from_spec(
        cls,
        spec: "ChaosSpec",
        *,
        registry: Optional[MetricsRegistry] = None,
        cache: Optional[PlacementCache] = None,
    ) -> "ChaosEngine":
        """Build an engine from a fully-stated :class:`ChaosSpec`.

        The spec's seed wins over the timeline's, so one knob controls
        the whole run (timeline synthesis and the rack's drop hash).
        """
        timeline = replace(spec.timeline, seed=spec.seed) \
            if spec.timeline.seed != spec.seed else spec.timeline
        return cls(
            spec.build_chains(),
            timeline,
            topology=spec.build_topology(),
            guard=spec.guard,
            strategy=spec.strategy,
            flows_per_chain=spec.flows_per_chain,
            batch_size=spec.batch_size,
            seed=spec.seed,
            registry=registry,
            cache=cache,
            queueing=spec.queueing,
            objective=spec.objective,
        )

    # -- deploy / redeploy ----------------------------------------------------

    def _deploy(self, placement) -> None:
        artifacts = MetaCompiler(
            topology=self.topology, profiles=self.profiles
        ).compile_placement(placement)
        rack = DeployedRack(
            self.topology, artifacts, self.profiles,
            seed=self.seed, registry=self.obs,
        )
        self.placement = placement
        self.rack = rack
        self.rates = dict(placement.rates)
        if self.traffic is None:
            self.traffic = TrafficEngine(
                rack, placement,
                flows_per_chain=self.flows_per_chain,
                batch_size=self.batch_size,
            )
        else:
            self.traffic.rack = rack
            self.traffic.placement = placement
        self._refresh_faults()
        self._refresh_queueing()

    def _refresh_queueing(self) -> None:
        """Re-derive per-device utilization at the *current* rates and
        re-install the queueing model — called after every rate change
        (deploy, shed, replan) so shedding genuinely lowers the stamped
        queue delay, closing the latency guard's control loop."""
        model = QueueingModel(self.queueing)
        utilization = None
        if model.enabled:
            utilization = device_utilization(
                self.placement.chains, self.rates, self.topology
            )
        self.rack.configure_queueing(model, utilization)

    def _refresh_faults(self) -> None:
        """Project the fault state onto the deployed rack.

        Full device failures drop everything routed to them. Partial
        faults (link degradation, core loss) become a per-server drop
        fraction sized by the capacity shortfall at the *current* rate
        assignment — so shedding rates genuinely relieves a degraded
        link, closing the guard's control loop.
        """
        rack = self.rack
        rack.clear_faults()
        for device in sorted(self.downed):
            rack.set_device_failed(device)
        placed_rates = dict(self.placement.rates)
        for server in self.topology.servers:
            name = server.name
            if name in self.downed:
                continue
            # link shortfall: offered load vs degraded link capacity
            capacity = (
                server.primary_nic().rate_mbps
                * self.link_factor.get(name, 1.0)
            )
            offered = server_offered_load(
                self.placement.chains, self.rates, name
            )
            link_loss = (
                max(0.0, 1.0 - capacity / offered) if offered > 0 else 0.0
            )
            # compute shortfall: cores lost vs utilization of the cores
            # the Placer allocated (utilization scales with the ratio of
            # current to placed rates — shed rates need fewer cores).
            # Only placements deployed *before* the loss are exposed: the
            # dead cores were running their subgroups. A replan reserves
            # around the dead cores, so its allocation is unaffected.
            core_loss = 0.0
            lost = self.lost_cores.get(name, 0)
            if lost > 0 and name in self._stale_cores:
                allocated = sum(
                    sg.cores
                    for cp in self.placement.chains
                    for sg in cp.subgroups
                    if sg.server == name
                )
                placed = server_offered_load(
                    self.placement.chains, placed_rates, name
                )
                current = server_offered_load(
                    self.placement.chains, self.rates, name
                )
                if allocated > 0 and placed > 0 and current > 0:
                    remaining = max(0.0, (allocated - lost) / allocated)
                    utilization = current / placed
                    core_loss = max(0.0, 1.0 - remaining / utilization)
            combined = 1.0 - (1.0 - link_loss) * (1.0 - core_loss)
            rack.set_drop_fraction(name, min(1.0, combined))

    # -- guard reactions --------------------------------------------------------

    def _shed_to_minimums(self) -> None:
        """Graceful degradation: re-solve the rate LP on the surviving
        placement, then shed every chain's marginal rate above t_min."""
        added: List[str] = []
        try:
            for device in self.downed:
                if device not in self.topology.failed_devices:
                    self.topology.mark_failed(device)
                    added.append(device)
            solution = solve_rates(self.placement.chains, self.topology)
        finally:
            for device in added:
                self.topology.failed_devices.discard(device)
        base = solution.rates if solution.feasible else dict(self.rates)
        shed = 0.0
        new_rates: Dict[str, float] = {}
        for cp in self.placement.chains:
            assigned = base.get(cp.name, self.rates.get(cp.name, 0.0))
            floor = min(assigned, cp.chain.slo.t_min)
            shed += max(0.0, assigned - floor)
            new_rates[cp.name] = floor
        self.rates = new_rates
        self.obs.counter("guard.degradations").inc()
        self.obs.gauge("guard.degraded_mode").set(1)
        self.obs.gauge("guard.shed_mbps").set(shed)
        self._refresh_faults()
        self._refresh_queueing()

    def _replan(self) -> Tuple[bool, bool]:
        """Full auto-replan: re-solve placement without the failed devices
        and live-redeploy.

        Returns ``(feasible, cache_hit)`` — infeasible means no placement
        survives the current failure set and the guard is out of moves.

        Lost cores are modeled as extra per-server reservations for the
        duration of the solve, so the new placement allocates around the
        dead cores (and the reservation state is part of the cache
        fingerprint, keeping warm hits scenario-correct).
        """
        originals: Dict[str, int] = {}
        try:
            for name, lost in self.lost_cores.items():
                server = self.topology.server(name)
                originals[name] = server.reserved_cores
                server.reserved_cores = min(
                    server.total_cores, server.reserved_cores + lost
                )
            with self.obs.timer("replan.latency_seconds"):
                try:
                    report = self.placer.solve(PlacementRequest(
                        chains=self.chains,
                        strategy=self.strategy,
                        failed_devices=tuple(sorted(self.downed)),
                        objective=self.objective,
                    ))
                except PlacementError:
                    # no surviving substrate can even host the NFs — the
                    # strategy could not form a candidate, which is an
                    # infeasible replan, not a crash
                    self.obs.counter("replan.count").inc()
                    self.obs.counter("replan.infeasible").inc()
                    return False, False
        finally:
            for name, reserved in originals.items():
                self.topology.server(name).reserved_cores = reserved
        self.obs.counter("replan.count").inc()
        if report.cache_hit:
            self.obs.counter("replan.cache_hits").inc()
        if not report.placement.feasible:
            self.obs.counter("replan.infeasible").inc()
            return False, report.cache_hit
        self._stale_cores.clear()
        self._deploy(report.placement)
        self.obs.gauge("guard.degraded_mode").set(0)
        return True, report.cache_hit

    # -- the run loop -----------------------------------------------------------

    def run(self, packets_per_chain: int = 512) -> ChaosReport:
        if packets_per_chain < 1:
            raise FaultInjectionError("packets_per_chain must be >= 1")
        initial = self.placer.solve(PlacementRequest(
            chains=self.chains, strategy=self.strategy,
            objective=self.objective,
        ))
        if not initial.placement.feasible:
            raise PlacementError(
                "chaos run needs a feasible starting placement: "
                f"{initial.placement.infeasible_reason}"
            )
        self._deploy(initial.placement)

        report = ChaosReport(seed=self.timeline.seed)
        pending = self.timeline.sorted_events()
        cursors: Dict[str, int] = {}
        remaining: Dict[str, int] = {}
        for cp in self.placement.chains:
            cursors[cp.name] = 0
            remaining[cp.name] = packets_per_chain

        global_injected = 0
        mode = "normal"
        seg_injected: Dict[str, int] = {}
        seg_delivered: Dict[str, int] = {}
        seg_latencies: Dict[str, List[float]] = {}

        def open_phase(label: str) -> PhaseReport:
            phase = PhaseReport(
                index=len(report.phases),
                label=label,
                mode=mode,
                start_packet=global_injected,
                t_mins={
                    cp.name: cp.chain.slo.t_min
                    for cp in self.placement.chains
                },
            )
            for name in cursors:
                seg_injected[name] = 0
                seg_delivered[name] = 0
                seg_latencies[name] = []
            return phase

        def close_phase(phase: PhaseReport) -> None:
            for cp in self.placement.chains:
                name = cp.name
                injected = seg_injected[name]
                delivered = seg_delivered[name]
                samples = seg_latencies[name]
                d_max = cp.chain.slo.d_max
                phase.chains.append(ChainTrafficReport(
                    chain_name=name,
                    flows=self.flows_per_chain,
                    injected=injected,
                    delivered=delivered,
                    dropped=injected - delivered,
                    wall_seconds=0.0,
                    assigned_mbps=self.rates.get(name, 0.0),
                    latency_p50_us=quantile(samples, 0.50),
                    latency_p95_us=quantile(samples, 0.95),
                    latency_p99_us=quantile(samples, 0.99),
                    latency_slo_us=0.0 if math.isinf(d_max) else d_max,
                ))
            report.phases.append(phase)

        phase = open_phase("healthy")
        while any(remaining.values()):
            # one round: every chain injects up to one batch
            for cp in self.placement.chains:
                name = cp.name
                count = min(self.batch_size, remaining[name])
                if count <= 0:
                    continue
                delivered, cursors[name], samples = (
                    self.traffic.replay_batch(cp, cursors[name], count)
                )
                seg_injected[name] += count
                seg_delivered[name] += delivered
                seg_latencies[name].extend(samples)
                remaining[name] -= count
                global_injected += count

            # fire due events (batch-boundary granularity)
            fired: List[FaultEvent] = []
            while pending and pending[0].at_packet <= global_injected:
                event = pending.pop(0)
                self._apply_event(event)
                report.events_applied.append(event.describe())
                fired.append(event)
            if fired:
                self._refresh_faults()
                close_phase(phase)
                label = "fault:" + "+".join(
                    f"{ev.action}({ev.target})" for ev in fired
                )
                phase = open_phase(label)
                continue

            if mode == "exhausted":
                continue

            # SLO guard: evaluate chains with a full window in this phase
            violated: List[str] = []
            for cp in self.placement.chains:
                name = cp.name
                slo = cp.chain.slo
                injected = seg_injected[name]
                if injected < self.guard.window_packets:
                    continue
                rate_bad = False
                if slo.t_min > 0.0:
                    fraction = seg_delivered[name] / injected
                    delivered_mbps = self.rates.get(name, 0.0) * fraction
                    rate_bad = delivered_mbps < (
                        slo.t_min * self.guard.threshold * (1.0 - _SLO_RTOL)
                    )
                # tail-latency violation: windowed quantile vs d_max —
                # a rate-compliant chain can still be out of SLO here
                latency_bad = False
                if (self.guard.latency_quantile > 0.0
                        and not math.isinf(slo.d_max)):
                    window = seg_latencies[name][
                        -self.guard.window_packets:
                    ]
                    if window:
                        tail = quantile(
                            window, self.guard.latency_quantile
                        )
                        latency_bad = tail > slo.d_max * (1.0 + _SLO_RTOL)
                if latency_bad:
                    report.latency_violations += 1
                    self.obs.counter(
                        "slo.latency_violations", chain=name
                    ).inc()
                if rate_bad or latency_bad:
                    violated.append(name)
            if not violated:
                continue

            report.violations += len(violated)
            for name in violated:
                self.obs.counter("slo.violations", chain=name).inc()
            self.obs.gauge("guard.chains_in_violation").set(len(violated))

            if mode == "normal" and self.guard.degrade_first:
                close_phase(phase)
                self._shed_to_minimums()
                report.degradations += 1
                mode = "degraded"
                phase = open_phase("degraded")
            elif report.replans < self.guard.max_replans:
                close_phase(phase)
                ok, cache_hit = self._replan()
                report.replans += 1
                if cache_hit:
                    report.replan_cache_hits += 1
                if ok:
                    mode = "normal"
                    self.obs.gauge("guard.chains_in_violation").set(0)
                    phase = open_phase("replanned")
                else:
                    report.infeasible_replans += 1
                    mode = "exhausted"
                    phase = open_phase("replan-infeasible")
            else:
                mode = "exhausted"
                phase.mode = mode

        close_phase(phase)
        return report

    def _apply_event(self, event: FaultEvent) -> None:
        self.obs.counter(
            "faults.injected", action=event.action, target=event.target
        ).inc()
        if event.action == "fail":
            self.downed.add(event.target)
        elif event.action == "recover":
            self.downed.discard(event.target)
        elif event.action == "degrade_link":
            self.link_factor[event.target] = max(0.0, 1.0 - event.severity)
        elif event.action == "restore_link":
            self.link_factor.pop(event.target, None)
        elif event.action == "lose_cores":
            self.lost_cores[event.target] = (
                self.lost_cores.get(event.target, 0) + int(event.severity)
            )
            self._stale_cores.add(event.target)
        elif event.action == "restore_cores":
            self.lost_cores.pop(event.target, None)
            self._stale_cores.discard(event.target)
        else:  # validated up front; defensive
            raise FaultInjectionError(f"unknown action {event.action!r}")


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def run_chaos(
    spec: ChaosSpec,
    registry: Optional[MetricsRegistry] = None,
    cache: Optional[PlacementCache] = None,
):
    """Run one chaos experiment from a fully-stated spec.

    A single-rack spec returns a :class:`ChaosReport`; a multi-rack spec
    partitions chains over the fabric, runs one guarded engine per rack
    (the fault timeline split by each target's home rack), and returns a
    :class:`~repro.sim.interrack.FabricChaosReport` (same ``ok`` /
    ``render`` / ``as_dict`` surface).
    """
    topology = spec.build_topology()
    if isinstance(topology, MultiRackTopology):
        from repro.sim.interrack import run_fabric_chaos

        return run_fabric_chaos(spec, topology, registry=registry)
    engine = ChaosEngine.from_spec(spec, registry=registry, cache=cache)
    return engine.run(packets_per_chain=spec.packets_per_chain)


def _replica_render(spec: ChaosSpec) -> str:
    """Worker entry: run a full replica with isolated instrumentation."""
    return run_chaos(spec, registry=MetricsRegistry()).render()


def run_chaos_checked(
    spec: ChaosSpec,
    jobs: int = 1,
    registry: Optional[MetricsRegistry] = None,
    pool: str = "keep",
) -> ChaosReport:
    """Run a chaos experiment, optionally cross-checking determinism.

    With ``jobs > 1``, ``jobs - 1`` replica runs execute in worker
    processes from the same spec; every replica's rendered report must be
    byte-identical to the local run's, or the run fails loudly. The
    returned report is always the local run's, so output is independent
    of ``jobs``. ``pool="keep"`` (default) runs replicas on the shared
    persistent worker pool; ``"per-run"`` spawns a throwaway executor.
    """
    report = run_chaos(spec, registry=registry)
    replicas = max(0, jobs - 1)
    if replicas == 0:
        return report
    try:
        pickle.dumps(spec)
    except Exception:
        # spec not transportable (e.g. monkeypatched internals in tests):
        # fall back to the already-computed serial result.
        return report
    rendered = report.render()
    renders = _replica_renders(spec, replicas, pool)
    for index, other in enumerate(renders):
        if other != rendered:
            raise FaultInjectionError(
                f"chaos replica {index} diverged from the local run "
                "with the same seed and timeline — determinism "
                "invariant broken"
            )
    return report


def _replica_renders(spec: ChaosSpec, replicas: int,
                     pool: str) -> List[str]:
    """Render ``replicas`` independent runs of ``spec`` in workers."""
    import os
    import warnings

    from repro.exceptions import WorkerPoolError
    from repro.runtime.pool import PoolCall, get_pool, in_worker

    if in_worker():
        return [_replica_render(spec) for _ in range(replicas)]
    if pool == "keep":
        try:
            worker_pool = get_pool(replicas)
            return worker_pool.dispatch(
                [PoolCall(_replica_render, spec) for _ in range(replicas)]
            )
        except WorkerPoolError as exc:
            warnings.warn(
                f"persistent worker pool dispatch failed ({exc}); "
                "falling back to a per-run pool",
                RuntimeWarning, stacklevel=3,
            )
    workers = min(replicas, os.cpu_count() or 1)
    with ProcessPoolExecutor(max_workers=workers) as executor:
        futures = [
            executor.submit(_replica_render, spec) for _ in range(replicas)
        ]
        return [future.result() for future in futures]
