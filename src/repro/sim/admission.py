"""Shared admission core: the one place a live rack mutates.

Both front-ends that evolve a deployed rack online — the batch
:class:`~repro.sim.lifecycle.LifecycleEngine` replaying a timeline and
the always-on :mod:`repro.serve` control-plane daemon — make the same
sequence of moves per transition: *propose* a new chain set, *admit* it
through the incremental :meth:`Placer.solve <repro.core.placer.Placer.\
solve>` path (``base_placement`` pins already-admitted chains at their
t_min floor), *delta-redeploy* only the devices whose generated programs
changed, and *replay* a deterministic traffic phase to observe SLO
compliance. This module owns that sequence so the two front-ends cannot
drift:

* :class:`ChainEvent` — one lifecycle transition (``arrive`` with a DSL
  spec + SLO, ``scale`` of t_min, ``depart``), shared vocabulary between
  timelines and the daemon's typed commands.
* :class:`AdmissionDecision` — the typed outcome of one admission check,
  carried verbatim into lifecycle reports and serve responses.
* :class:`AdmissionCore` — the rack-owner state machine: active chains,
  placement, deployed rack, traffic engine, per-chain replay cursors.
  Rejections leave every piece of that state untouched; admitted chains
  are never evicted to make room.

Everything here is deterministic given (initial chains, seed, event
sequence): the same events replayed through a fresh core reproduce the
same placements, the same per-packet outcomes, and the same
:meth:`AdmissionCore.state_digest` — the property the serve daemon's
crash recovery (checkpoint-load + journal replay) is built on.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
import os
import pickle
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chain.graph import NFChain, chains_from_spec
from repro.chain.slo import SLO
from repro.core.cache import PlacementCache
from repro.core.placer import (
    Placer,
    PlacerConfig,
    PlacementReport,
    PlacementRequest,
)
from repro.exceptions import (
    FaultInjectionError,
    LifecycleError,
    PlacementError,
)
from repro.hw.spec import topology_for
from repro.hw.topology import Topology
from repro.metacompiler.compiler import MetaCompiler
from repro.obs import MetricsRegistry, get_registry, quantile
from repro.profiles.defaults import ProfileDatabase, default_profiles
from repro.sim.faults import PhaseReport
from repro.sim.measurement import QueueingModel
from repro.sim.runtime import DeployedRack
from repro.sim.traffic import (
    ChainTrafficReport,
    TrafficEngine,
    configure_rack_queueing,
)

LIFECYCLE_ACTIONS = ("arrive", "scale", "depart")

#: day-2 fault probes the serve daemon may apply to the live rack.
FAULT_PROBE_ACTIONS = ("fail", "recover", "degrade_link", "restore_link")


@dataclass(frozen=True)
class ChainEvent:
    """One lifecycle transition, fired at integer tick ``at``.

    ``arrive`` carries the chain's DSL ``spec`` (one ``chain <name>: ...``
    line whose name must equal ``chain``) plus its SLO in Mbps; ``scale``
    carries the new ``t_min_mbps`` (and optionally a new ``t_max_mbps``);
    ``depart`` needs only the chain name.
    """

    at: int
    action: str
    chain: str
    spec: str = ""
    t_min_mbps: float = 0.0
    t_max_mbps: float = float("inf")
    d_max_us: float = float("inf")

    def describe(self) -> str:
        extra = ""
        if self.action == "arrive":
            extra = f" t_min={self.t_min_mbps:g} t_max={self.t_max_mbps:g}"
        elif self.action == "scale":
            extra = f" t_min={self.t_min_mbps:g}"
        return f"t{self.at} {self.action} {self.chain}{extra}"

    def slo(self) -> SLO:
        return SLO(
            t_min=self.t_min_mbps,
            t_max=self.t_max_mbps,
            d_max=self.d_max_us,
        )


@dataclass(frozen=True)
class AdmissionDecision:
    """The typed outcome of one lifecycle event's admission check."""

    tick: int
    action: str
    chain: str
    accepted: bool
    #: the binding constraint for a rejection ("" when accepted) — the
    #: solver's infeasibility reason, verbatim.
    reason: str = ""
    mode: str = "full"
    pinned: int = 0
    placed: int = 0
    cache_hit: bool = False
    #: per-device delta-redeploy actions (empty on rejection).
    rebuilt: Tuple[str, ...] = ()
    reused: Tuple[str, ...] = ()
    removed: Tuple[str, ...] = ()
    #: admission-solve wall clock; excluded from rendered/JSON output so
    #: reports stay byte-identical, kept for benchmarks.
    seconds: float = 0.0

    def describe(self) -> str:
        verdict = "accepted" if self.accepted else f"REJECTED: {self.reason}"
        solve = f"{self.mode}"
        if self.mode == "incremental":
            solve += f" pinned={self.pinned} placed={self.placed}"
        if self.cache_hit:
            solve += " warm"
        redeploy = ""
        if self.accepted:
            redeploy = (
                f"; redeploy rebuilt={len(self.rebuilt)} "
                f"reused={len(self.reused)} removed={len(self.removed)}"
            )
        return (
            f"t{self.tick} {self.action} {self.chain} -> {verdict} "
            f"[{solve}{redeploy}]"
        )

    def as_dict(self) -> dict:
        """The canonical wire form (``seconds`` is deliberately absent so
        serialized decisions stay byte-identical across runs)."""
        return {
            "tick": self.tick,
            "action": self.action,
            "chain": self.chain,
            "accepted": self.accepted,
            "reason": self.reason,
            "mode": self.mode,
            "pinned": self.pinned,
            "placed": self.placed,
            "cache_hit": self.cache_hit,
            "rebuilt": list(self.rebuilt),
            "reused": list(self.reused),
            "removed": list(self.removed),
        }

    _FIELDS = frozenset({
        "tick", "action", "chain", "accepted", "reason", "mode",
        "pinned", "placed", "cache_hit", "rebuilt", "reused", "removed",
    })

    @classmethod
    def from_dict(cls, payload: dict) -> "AdmissionDecision":
        if not isinstance(payload, dict):
            raise LifecycleError(
                f"admission decision must be an object, got {payload!r}"
            )
        unknown = set(payload) - cls._FIELDS
        if unknown:
            raise LifecycleError(
                f"admission decision carries unknown fields "
                f"{sorted(unknown)}"
            )
        try:
            return cls(
                tick=int(payload["tick"]),
                action=str(payload["action"]),
                chain=str(payload["chain"]),
                accepted=bool(payload["accepted"]),
                reason=str(payload.get("reason", "")),
                mode=str(payload.get("mode", "full")),
                pinned=int(payload.get("pinned", 0)),
                placed=int(payload.get("placed", 0)),
                cache_hit=bool(payload.get("cache_hit", False)),
                rebuilt=tuple(payload.get("rebuilt", ())),
                reused=tuple(payload.get("reused", ())),
                removed=tuple(payload.get("removed", ())),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise LifecycleError(
                f"malformed admission decision: {exc}"
            ) from exc


#: monotonically unique serve-session ids within one parent process.
_session_ids = itertools.count()


def _new_session_id() -> str:
    return f"core-{os.getpid()}-{next(_session_ids)}"


class AdmissionCore:
    """Admit, place incrementally, delta-redeploy, and replay traffic.

    One core owns one live rack. All mutations go through
    :meth:`process` (lifecycle events) or :meth:`apply_fault` (day-2
    fault probes); both front-ends are expected to serialize their calls
    — the serve daemon does so with a single rack-owner worker task, the
    lifecycle engine by being synchronous.

    ``pool="keep"`` moves the rack into the persistent worker runtime: a
    dedicated serve session (affinity-pinned to one pool worker, FIFO)
    owns the cumulative rack state, and every rack-touching operation —
    cold deploy, delta redeploy, fault probes, traffic phases, checkpoint
    fetch — dispatches through :mod:`repro.runtime`. All control-plane
    state (active chains, placement, rates, cursors, fault bookkeeping)
    stays in this object, so decisions, phases, and
    :meth:`state_digest` are byte-identical across pool modes.
    """

    def __init__(
        self,
        initial_chains: Sequence[NFChain],
        *,
        topology: Optional[Topology] = None,
        profiles: Optional[ProfileDatabase] = None,
        strategy: str = "lemur",
        flows_per_chain: int = 32,
        batch_size: int = 32,
        seed: int = 23,
        registry: Optional[MetricsRegistry] = None,
        cache: Optional[PlacementCache] = None,
        full_resolve: bool = False,
        pool: str = "per-run",
        queueing: str = "none",
        objective: str = "throughput",
    ):
        if not initial_chains:
            raise LifecycleError(
                "admission needs at least one initial chain "
                "(an empty rack has nothing to deploy)"
            )
        self.initial_chains = list(initial_chains)
        self.topology = topology or topology_for("paper-testbed").build()
        self.profiles = profiles or default_profiles()
        self.strategy = strategy
        self.flows_per_chain = flows_per_chain
        self.batch_size = batch_size
        #: validated eagerly so a typo fails at construction, not mid-run.
        self.queueing = QueueingModel(queueing).kind
        self.objective = objective
        self.seed = seed
        self.obs = registry if registry is not None else get_registry()
        #: warm-start memo: a repeated (active set, base pattern) admission
        #: problem fingerprints identically and is served from cache.
        self.cache = cache if cache is not None else PlacementCache()
        self.full_resolve = full_resolve
        if pool not in ("keep", "per-run"):
            raise LifecycleError("pool must be 'keep' or 'per-run'")
        from repro.runtime.pool import in_worker
        #: nested pools are forbidden: a core living inside a pool worker
        #: always owns its rack in-process.
        self.pool = "per-run" if in_worker() else pool
        self._session_id = _new_session_id()
        self._rack_seq = 0
        #: pickled session rack captured by :meth:`prepare_checkpoint`
        #: (pool mode only) so a checkpointed core still carries the rack.
        self._rack_bytes: Optional[bytes] = None

        self.placer = Placer(
            topology=self.topology,
            profiles=self.profiles,
            config=PlacerConfig(strategy=strategy),
            cache=self.cache,
        )
        self.metacompiler = MetaCompiler(
            topology=self.topology, profiles=self.profiles
        )

        # mutable run state, owned exclusively by this core
        self.active: List[NFChain] = []
        self.placement = None
        self.rack: Optional[DeployedRack] = None
        self.traffic: Optional[TrafficEngine] = None
        self.rates: Dict[str, float] = {}
        #: per-chain deterministic replay cursors (flow-cycle positions).
        self.cursors: Dict[str, int] = {}
        #: fault probes currently applied (action bookkeeping for
        #: snapshots and the state digest; the rack holds the live state).
        self.fault_state: Dict[str, float] = {}

    # -- pooled session plumbing --------------------------------------------

    def _session_dispatch(self, **fields):
        """Run one op against this core's worker-side serve session.

        The session rides a pool affinity key, so every op executes FIFO
        on one worker; registry state recorded worker-side merges back
        here, keeping pooled metrics equal to in-process metrics.
        """
        from repro.runtime.pool import get_pool
        from repro.runtime.rackcache import SessionTask, session_call

        result, state = get_pool().call(
            session_call,
            SessionTask(session=self._session_id, **fields),
            affinity=self._session_id,
        )
        if state is not None:
            self.obs.merge_state(state)
        return result

    def _open_session(self, artifacts, placement) -> None:
        """Cold-deploy the rack inside a pool worker (pool mode)."""
        from repro.runtime.rackcache import ArtifactBundle, bundle_fingerprint

        payload = pickle.dumps((self.topology, artifacts, self.profiles))
        seq = self._session_dispatch(
            op="build",
            bundle=ArtifactBundle(bundle_fingerprint(payload), payload),
            placement=placement,
            seed=self.seed,
            flows_per_chain=self.flows_per_chain,
            batch_size=self.batch_size,
            queueing=self.queueing,
        )
        self._rack_seq = int(seq)

    def prepare_checkpoint(self) -> None:
        """Fetch the session rack so a pickled core still carries it.

        In-process cores checkpoint for free (the rack pickles with the
        core); a pooled core's rack lives in a worker, so the daemon calls
        this immediately before pickling.
        """
        if self.pool != "keep" or self.placement is None:
            return
        self._rack_bytes = self._session_dispatch(op="fetch")

    def reattach(self) -> None:
        """Rebuild the worker session from checkpointed rack bytes.

        The crash-recovery counterpart of :meth:`prepare_checkpoint`:
        after unpickling a pooled core, the daemon reattaches it to the
        (fresh) worker pool before replaying the journal suffix.
        """
        if self.pool != "keep" or self.placement is None:
            return
        if self._rack_bytes is None:
            raise LifecycleError(
                "cannot reattach a pooled admission core without "
                "checkpointed rack state"
            )
        self._session_id = _new_session_id()
        seq = self._session_dispatch(
            op="restore",
            rack_bytes=self._rack_bytes,
            placement=self.placement,
            flows_per_chain=self.flows_per_chain,
            batch_size=self.batch_size,
            queueing=self.queueing,
        )
        self._rack_seq = int(seq)

    @property
    def rack_seq(self) -> int:
        """The rack's injection sequence counter, wherever the rack lives."""
        if self.rack is not None:
            return getattr(self.rack, "_next_seq", 0)
        return self._rack_seq

    # -- bootstrap ----------------------------------------------------------

    def bootstrap(self) -> PlacementReport:
        """Solve and deploy the initial chain set (a full, cold solve)."""
        initial = self.placer.solve(PlacementRequest(
            chains=self.initial_chains, strategy=self.strategy,
            objective=self.objective,
        ))
        if not initial.placement.feasible:
            raise PlacementError(
                "admission needs a feasible initial placement: "
                f"{initial.placement.infeasible_reason}"
            )
        self.active = list(self.initial_chains)
        self.placement = initial.placement
        self.rates = dict(initial.placement.rates)
        artifacts = self.metacompiler.compile_placement(initial.placement)
        if self.pool == "keep":
            self._open_session(artifacts, initial.placement)
        else:
            self.rack = DeployedRack(
                self.topology, artifacts, self.profiles,
                seed=self.seed, registry=self.obs,
            )
            configure_rack_queueing(
                self.rack, initial.placement, self.queueing
            )
            self.traffic = TrafficEngine(
                self.rack, initial.placement,
                flows_per_chain=self.flows_per_chain,
                batch_size=self.batch_size,
            )
        self.obs.gauge("lifecycle.active_chains").set(len(self.active))
        return initial

    # -- admission ----------------------------------------------------------

    def propose(self, event: ChainEvent
                ) -> Tuple[Optional[List[NFChain]], str]:
        """The chain set the event asks for, or a static rejection."""
        names = {chain.name for chain in self.active}
        if event.action == "arrive":
            if event.chain in names:
                return None, f"chain {event.chain!r} is already active"
            (chain,) = chains_from_spec(event.spec)
            chain = chain.with_slo(event.slo())
            return self.active + [chain], ""
        if event.chain not in names:
            return None, f"no active chain named {event.chain!r}"
        if event.action == "depart":
            proposed = [c for c in self.active if c.name != event.chain]
            if not proposed:
                return None, "cannot depart the last active chain"
            return proposed, ""
        # scale
        proposed = []
        for chain in self.active:
            if chain.name == event.chain:
                slo = chain.slo.with_tmin(event.t_min_mbps)
                if event.t_max_mbps != float("inf"):
                    slo = replace(slo, t_max=event.t_max_mbps)
                chain = chain.with_slo(slo)
            proposed.append(chain)
        return proposed, ""

    def admit(self, event: ChainEvent,
              proposed: List[NFChain]) -> AdmissionDecision:
        """Solve the proposed chain set and, on success, delta-redeploy.

        The core's state only advances when the solve is feasible; a
        rejection leaves the running placement, rack, and rates exactly
        as they were — admitted chains are never evicted to make room.
        """
        base = None if self.full_resolve else self.placement
        mode = "full" if base is None else "incremental"
        try:
            report = self.placer.solve(PlacementRequest(
                chains=proposed,
                strategy=self.strategy,
                base_placement=base,
                objective=self.objective,
            ))
        except PlacementError as exc:
            return AdmissionDecision(
                tick=event.at, action=event.action, chain=event.chain,
                accepted=False, reason=str(exc), mode=mode,
            )
        if not report.placement.feasible:
            return AdmissionDecision(
                tick=event.at, action=event.action, chain=event.chain,
                accepted=False,
                reason=report.placement.infeasible_reason or "infeasible",
                mode=report.mode,
                pinned=report.pinned_chains,
                placed=report.placed_chains,
                cache_hit=report.cache_hit,
                seconds=report.seconds,
            )
        artifacts = self.metacompiler.compile_placement(report.placement)
        if self.pool == "keep":
            delta = self._session_dispatch(
                op="redeploy",
                artifacts=artifacts,
                placement=report.placement,
            )
        else:
            delta = self.rack.redeploy(artifacts)
            # rates changed with the placement: re-derive utilization
            configure_rack_queueing(
                self.rack, report.placement, self.queueing
            )
            self.traffic.placement = report.placement
        self.active = proposed
        self.placement = report.placement
        self.rates = dict(report.placement.rates)
        return AdmissionDecision(
            tick=event.at, action=event.action, chain=event.chain,
            accepted=True,
            mode=report.mode,
            pinned=report.pinned_chains,
            placed=report.placed_chains,
            cache_hit=report.cache_hit,
            rebuilt=tuple(delta.rebuilt),
            reused=tuple(delta.reused),
            removed=tuple(delta.removed),
            seconds=report.seconds,
        )

    def process(self, event: ChainEvent) -> AdmissionDecision:
        """Propose + admit one event, with admission observability."""
        if event.action not in LIFECYCLE_ACTIONS:
            raise LifecycleError(
                f"unknown lifecycle action {event.action!r}; "
                f"choose from {sorted(LIFECYCLE_ACTIONS)}"
            )
        self.obs.counter("lifecycle.events", action=event.action).inc()
        proposed, static_reason = self.propose(event)
        if proposed is None:
            decision = AdmissionDecision(
                tick=event.at, action=event.action, chain=event.chain,
                accepted=False, reason=static_reason,
            )
        else:
            decision = self.admit(event, proposed)
        self.obs.counter(
            "lifecycle.admission",
            decision="accepted" if decision.accepted else "rejected",
            action=event.action,
        ).inc()
        if not decision.accepted and decision.pinned > 0:
            # the solve failed while holding admitted chains at their
            # t_min floor: accepting would have required an eviction
            self.obs.counter("lifecycle.evictions_averted").inc()
        self.obs.gauge("lifecycle.active_chains").set(len(self.active))
        return decision

    # -- day-2 fault probes --------------------------------------------------

    def apply_fault(self, action: str, target: str,
                    severity: float = 1.0) -> None:
        """Apply one fault probe to the live rack (serve's ``InjectFault``).

        ``fail``/``recover`` toggle full device failure; ``degrade_link``
        drops ``severity`` of the server's traffic (deterministic per-seq
        hash, batch-order independent) and ``restore_link`` clears it.
        Unlike the chaos engine's guarded timelines, probes here do not
        trigger automatic replanning — they perturb the dataplane so the
        per-phase SLO table shows the damage.
        """
        if action not in FAULT_PROBE_ACTIONS:
            raise FaultInjectionError(
                f"unknown fault action {action!r}; "
                f"choose from {sorted(FAULT_PROBE_ACTIONS)}"
            )
        if target == self.topology.switch.name:
            raise FaultInjectionError(
                "cannot inject faults into the ToR switch "
                "(it coordinates the rack)"
            )
        self.topology.device(target)  # raises TopologyError if unknown
        if action == "degrade_link" and not 0.0 < severity <= 1.0:
            raise FaultInjectionError(
                f"degrade_link severity must be in (0, 1], got {severity}"
            )
        self.obs.counter(
            "faults.injected", action=action, target=target
        ).inc()
        if self.pool == "keep":
            self._session_dispatch(
                op="fault", action=action, target=target, severity=severity,
            )
        elif action == "fail":
            self.rack.set_device_failed(target)
        elif action == "recover":
            self.rack.set_device_failed(target, False)
        elif action == "degrade_link":
            self.rack.set_drop_fraction(target, severity)
        else:  # restore_link
            self.rack.set_drop_fraction(target, 0.0)
        if action == "fail":
            self.fault_state[f"fail:{target}"] = 1.0
        elif action == "recover":
            self.fault_state.pop(f"fail:{target}", None)
        elif action == "degrade_link":
            self.fault_state[f"degrade:{target}"] = severity
        else:  # restore_link
            self.fault_state.pop(f"degrade:{target}", None)

    # -- traffic phases ------------------------------------------------------

    def run_phase(self, label: str, packets_per_chain: int, *,
                  index: int, start_packet: int = 0) -> PhaseReport:
        """Inject one deterministic phase of traffic for every active
        chain and return the per-chain SLO compliance rows."""
        phase = PhaseReport(
            index=index,
            label=label,
            mode="live",
            start_packet=start_packet,
            t_mins={
                cp.name: cp.chain.slo.t_min
                for cp in self.placement.chains
            },
        )
        if self.pool == "keep":
            delivered_map, cursors, rack_seq, latency_map = (
                self._session_dispatch(
                    op="phase",
                    cursors=dict(self.cursors),
                    packets_per_chain=packets_per_chain,
                )
            )
            self.cursors.update(cursors)
            self._rack_seq = int(rack_seq)
            deliveries = [
                (cp, delivered_map[cp.name], latency_map[cp.name])
                for cp in self.placement.chains
            ]
        else:
            deliveries = []
            for cp in self.placement.chains:
                delivered, self.cursors[cp.name], samples = \
                    self.traffic.replay_batch(
                        cp, self.cursors.get(cp.name, 0), packets_per_chain
                    )
                deliveries.append((cp, delivered, samples))
        for cp, delivered, samples in deliveries:
            d_max = cp.chain.slo.d_max
            phase.chains.append(ChainTrafficReport(
                chain_name=cp.name,
                flows=self.flows_per_chain,
                injected=packets_per_chain,
                delivered=delivered,
                dropped=packets_per_chain - delivered,
                wall_seconds=0.0,
                assigned_mbps=self.rates.get(cp.name, 0.0),
                latency_p50_us=quantile(samples, 0.50),
                latency_p95_us=quantile(samples, 0.95),
                latency_p99_us=quantile(samples, 0.99),
                latency_slo_us=0.0 if math.isinf(d_max) else d_max,
            ))
        return phase

    # -- state identity ------------------------------------------------------

    def state_digest(self) -> str:
        """A canonical digest of the deterministic control-plane state.

        Covers the admitted chain set (names + SLOs), the placement's
        rendered assignment, the LP rates, per-chain replay cursors, the
        rack's injection sequence counter, and the live fault state —
        everything that shapes future admission decisions and per-packet
        outcomes. Excludes caches and metrics (performance state, not
        behavior). Two cores with equal digests produce byte-identical
        subsequent decisions and phases for the same event sequence.
        """
        payload = {
            "active": [
                [c.name, c.slo.t_min, c.slo.t_max, c.slo.d_max]
                for c in self.active
            ],
            "placement": (
                self.placement.describe() if self.placement else ""
            ),
            "rates": {k: round(v, 9) for k, v in sorted(self.rates.items())},
            "cursors": dict(sorted(self.cursors.items())),
            "rack_seq": self.rack_seq,
            "faults": dict(sorted(self.fault_state.items())),
        }
        canon = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(canon.encode()).hexdigest()


__all__ = [
    "AdmissionCore",
    "AdmissionDecision",
    "ChainEvent",
    "FAULT_PROBE_ACTIONS",
    "LIFECYCLE_ACTIONS",
]
