"""Fabric runtime: deploy, drive, and evolve chains across racks.

The single-rack engines (:class:`~repro.sim.admission.AdmissionCore`,
:class:`~repro.sim.traffic.TrafficEngine`) stay the unit of execution; a
fabric run composes one of them per rack and owns everything that spans
racks:

* **Stitching** — a chain homed away from the ingress rack gets an
  inter-rack hop installed on its home rack's dataplane
  (:meth:`DeployedRack.set_interrack_hop`): every delivered packet
  carries the route's round trip, and when the assigned rates crossing a
  link exceed its capacity the overload becomes a deterministic drop
  fraction (link capacity is a drop source, not a queue).
* **Admission** — :class:`FabricAdmissionCore` mirrors the
  ``AdmissionCore`` surface (``bootstrap`` / ``process`` / ``run_phase``
  / ``state_digest``) so the lifecycle engine and the serve daemon drive
  a fabric exactly like a rack. Arrivals spill across candidate racks in
  route order; a ``scale`` the home rack (or its route) cannot absorb
  migrates the chain to another rack; the last chain departing a rack
  tears that rack's core down.
* **SLO accounting** — per-rack cores hold chains with ``d_max`` already
  shrunk by the fabric RTT, and the dataplane stamps that RTT onto every
  packet. Merged phase rows therefore restore the *original* end-to-end
  ``d_max``, so the latency column and its bound describe the same
  quantity (no double charge).

Everything stays deterministic given (chains, fabric, seed, events):
per-rack cores use in-process racks (``pool="per-run"``), rack order is
sorted, and link drops reuse the seq-hash discipline via a link-salted
seed.
"""

from __future__ import annotations

import hashlib
import json
import math
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chain.graph import NFChain, chains_from_spec
from repro.chain.slo import SLO
from repro.core.cache import PlacementCache
from repro.core.hierarchy import MultiRackPlacer, MultiRackReport
from repro.core.partition import RackRoute, fabric_routes, partition_chains
from repro.core.placement import ChainPlacement, Placement
from repro.core.placer import PlacerConfig, PlacementRequest
from repro.exceptions import (
    FaultInjectionError,
    LifecycleError,
    PartitionError,
    PlacementError,
    TopologyError,
)
from repro.hw.multirack import MultiRackTopology
from repro.metacompiler.compiler import MetaCompiler
from repro.obs import MetricsRegistry, get_registry
from repro.profiles.defaults import ProfileDatabase, default_profiles
from repro.sim.admission import (
    LIFECYCLE_ACTIONS,
    AdmissionCore,
    AdmissionDecision,
    ChainEvent,
)
from repro.sim.faults import (
    ChaosEngine,
    ChaosReport,
    ChaosSpec,
    FaultTimeline,
    PhaseReport,
)
from repro.sim.runtime import DeployedRack
from repro.sim.traffic import (
    TrafficEngine,
    TrafficReport,
    TrafficSpec,
    configure_rack_queueing,
)


# ---------------------------------------------------------------------------
# inter-rack hop installation (shared by traffic + admission paths)
# ---------------------------------------------------------------------------


def link_drop_fractions(
    fabric: MultiRackTopology,
    remote: Dict[str, RackRoute],
    rates: Dict[str, float],
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, float]:
    """Per-link overload drop fraction at the given rate assignment.

    A link carrying more assigned rate than its capacity drops the
    excess fraction of every packet crossing it — the dataplane face of
    the solver's link-capacity constraint. Loads land on the
    ``interrack.link.load_mbps`` gauge so saturation is observable
    before it becomes packet loss.
    """
    registry = registry if registry is not None else get_registry()
    load: Dict[str, float] = {}
    for chain, route in remote.items():
        rate = rates.get(chain, 0.0)
        for link in route.links:
            load[link] = load.get(link, 0.0) + rate
    drops: Dict[str, float] = {}
    for link in fabric.links:
        carried = load.get(link.name, 0.0)
        registry.gauge("interrack.link.load_mbps", link=link.name).set(carried)
        if carried > link.capacity_mbps > 0:
            drops[link.name] = 1.0 - link.capacity_mbps / carried
    return drops


def route_hop(route: RackRoute,
              drops: Dict[str, float]) -> Tuple[str, float]:
    """Collapse a multi-link route into one hop: the compounded drop
    probability, attributed (and hash-salted) to the most-lossy link —
    the binding one — with ties broken by path order."""
    survive = 1.0
    worst_link = route.links[0]
    worst_drop = -1.0
    for name in route.links:
        drop = drops.get(name, 0.0)
        survive *= 1.0 - drop
        if drop > worst_drop:
            worst_drop = drop
            worst_link = name
    return worst_link, 1.0 - survive


def install_fabric_hops(
    rack: DeployedRack,
    chain_names: Sequence[str],
    remote: Dict[str, RackRoute],
    drops: Dict[str, float],
) -> None:
    """(Re)install inter-rack hops for a home rack's remote chains."""
    rack.clear_interrack_hops()
    for chain in sorted(chain_names):
        route = remote.get(chain)
        if route is None or not route.links:
            continue
        link, drop = route_hop(route, drops)
        rack.set_interrack_hop(
            chain, link, route.latency_us, drop_fraction=drop,
        )


# ---------------------------------------------------------------------------
# fabric traffic replay
# ---------------------------------------------------------------------------


@dataclass
class FabricTrafficReport:
    """One fabric-wide traffic replay: the hierarchical solve + the
    merged per-chain table (rows carry end-to-end ``d_max``)."""

    solve: MultiRackReport
    report: TrafficReport
    assignment: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.report.ok

    def as_dict(self) -> dict:
        payload = self.report.as_dict()
        payload["racks"] = dict(sorted(self.assignment.items()))
        payload["mode"] = self.solve.mode
        return payload

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def describe(self) -> str:
        lines = [self.solve.placement.partition.describe()]
        for chain, route in sorted(self.solve.placement.remote.items()):
            lines.append(
                f"  {chain}: via {'+'.join(route.links)} "
                f"(+{route.rtt_us:g} µs RTT)"
            )
        lines.append(self.report.describe())
        return "\n".join(lines)

    def render(self) -> str:
        return self.describe()


def run_fabric_traffic(
    spec: TrafficSpec,
    fabric: MultiRackTopology,
    registry: Optional[MetricsRegistry] = None,
) -> FabricTrafficReport:
    """Place hierarchically, deploy one rack per partition, stitch
    remote chains over the inter-rack links, and replay every chain.

    Racks replay serially in sorted order so outcomes are independent of
    ``spec.shards`` (which instead fans the per-rack *solves* out over
    the worker pool).
    """
    chains = spec.build_chains()
    profiles = default_profiles()
    placer = MultiRackPlacer(
        fabric, profiles, PlacerConfig(strategy=spec.strategy)
    )
    solve = placer.solve(PlacementRequest.multi_rack(
        chains, jobs=spec.shards, objective=spec.objective,
    ))
    placement = solve.placement
    if not placement.feasible:
        raise PlacementError(
            "traffic replay needs a feasible placement: "
            f"{placement.infeasible_reason}"
        )
    d_max = {chain.name: chain.slo.d_max for chain in chains}
    drops = link_drop_fractions(
        fabric, placement.remote, placement.rates, registry
    )

    merged = TrafficReport()
    started = time.perf_counter()
    for rack in sorted(placement.reports):
        topology = fabric.rack(rack)
        per_rack = placement.placement_for(rack)
        artifacts = MetaCompiler(
            topology=topology, profiles=profiles
        ).compile_placement(per_rack)
        deployed = DeployedRack(
            topology, artifacts, profiles,
            seed=spec.seed, registry=registry,
        )
        configure_rack_queueing(deployed, per_rack, spec.queueing)
        install_fabric_hops(
            deployed, [cp.name for cp in per_rack.chains],
            placement.remote, drops,
        )
        engine = TrafficEngine(
            deployed, per_rack,
            flows_per_chain=spec.flows_per_chain,
            batch_size=spec.batch_size,
            vectorized=spec.vectorized,
        )
        for row in engine.run(spec.packets_per_chain).chains:
            bound = d_max.get(row.chain_name, float("inf"))
            merged.chains.append(replace(
                row,
                latency_slo_us=0.0 if math.isinf(bound) else bound,
            ))
    merged.chains.sort(key=lambda row: row.chain_name)
    merged.run_wall_seconds = time.perf_counter() - started
    return FabricTrafficReport(
        solve=solve,
        report=merged,
        assignment=dict(placement.partition.assignment),
    )


# ---------------------------------------------------------------------------
# fabric chaos: one guarded engine per rack, timeline split by target
# ---------------------------------------------------------------------------


class _StitchedChaosEngine(ChaosEngine):
    """A per-rack chaos engine that reinstalls its inter-rack hops on
    every (re)deploy, so stitching survives guard replans."""

    def __init__(self, *args, fabric_remote=None, fabric_drops=None,
                 **kwargs):
        self._fabric_remote = dict(fabric_remote or {})
        self._fabric_drops = dict(fabric_drops or {})
        super().__init__(*args, **kwargs)

    def _deploy(self, placement) -> None:
        super()._deploy(placement)
        install_fabric_hops(
            self.rack,
            [cp.name for cp in placement.chains],
            self._fabric_remote,
            self._fabric_drops,
        )


@dataclass
class FabricChaosReport:
    """One fabric chaos run: per-rack guarded reports side by side.

    Fault phases are rack-local (each rack's guard reacts to its own
    timeline slice), so the reports stay per rack instead of pretending
    a merged phase sequence exists. ``ok`` is the conjunction.
    """

    seed: int
    assignment: Dict[str, str] = field(default_factory=dict)
    racks: Dict[str, ChaosReport] = field(default_factory=dict)
    #: timeline events addressed to racks that host no chains — applied
    #: nowhere, surfaced so a typo'd target is visible.
    dropped_events: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.racks.values())

    @property
    def violations(self) -> int:
        return sum(r.violations for r in self.racks.values())

    @property
    def replans(self) -> int:
        return sum(r.replans for r in self.racks.values())

    @property
    def degradations(self) -> int:
        return sum(r.degradations for r in self.racks.values())

    @property
    def total_injected(self) -> int:
        return sum(r.total_injected for r in self.racks.values())

    @property
    def total_delivered(self) -> int:
        return sum(r.total_delivered for r in self.racks.values())

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "assignment": dict(sorted(self.assignment.items())),
            "dropped_events": list(self.dropped_events),
            "racks": {
                rack: report.as_dict()
                for rack, report in sorted(self.racks.items())
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        lines = [f"fabric chaos report (seed={self.seed})"]
        for chain, rack in sorted(self.assignment.items()):
            lines.append(f"  {chain} -> {rack}")
        for entry in self.dropped_events:
            lines.append(f"  dropped (rack hosts no chains): {entry}")
        for rack in sorted(self.racks):
            lines.append(f"-- rack {rack} --")
            lines.append(self.racks[rack].render())
        lines.append(
            f"fabric totals: injected={self.total_injected} "
            f"delivered={self.total_delivered} "
            f"violations={self.violations} "
            f"degradations={self.degradations} replans={self.replans}"
        )
        return "\n".join(lines)

    def describe(self) -> str:
        return self.render()


def run_fabric_chaos(
    spec: ChaosSpec,
    fabric: MultiRackTopology,
    registry: Optional[MetricsRegistry] = None,
) -> FabricChaosReport:
    """Partition, stitch, and run one guarded chaos engine per rack.

    The fault timeline splits by each target's home rack (offsets then
    count that rack's injected packets). Chains keep their *original*
    ``d_max``: the partitioner already charged the inter-rack RTT when
    choosing homes, and the dataplane stamps that RTT onto every packet,
    so the guard's windowed tail and the phase tables compare the full
    path latency against the full budget — no double charge.
    """
    chains = spec.build_chains()
    profiles = default_profiles()
    try:
        partition = partition_chains(
            chains, fabric, profiles,
            packet_bits=PlacerConfig(strategy=spec.strategy).packet_bits,
        )
    except PartitionError as exc:
        raise PlacementError(
            f"chaos replay needs a feasible partition: {exc}"
        ) from exc
    remote = partition.remote_chains(fabric.ingress)
    # link drops from the t_min floors (the partitioner's own capacity
    # vocabulary); per-rack LP rates are not known fabric-wide here.
    floors = {chain.name: chain.slo.t_min for chain in chains}
    drops = link_drop_fractions(fabric, remote, floors, registry)

    by_rack: Dict[str, List[NFChain]] = {}
    for chain in chains:
        by_rack.setdefault(partition.rack_of(chain.name), []).append(chain)
    events_by_rack: Dict[str, list] = {}
    dropped: List[str] = []
    for event in spec.timeline.sorted_events():
        try:
            rack = fabric.rack_of_device(event.target)
        except TopologyError as exc:
            raise FaultInjectionError(str(exc)) from exc
        if rack in by_rack:
            events_by_rack.setdefault(rack, []).append(event)
        else:
            dropped.append(f"{rack}: {event.describe()}")

    report = FabricChaosReport(
        seed=spec.seed,
        assignment=dict(partition.assignment),
        dropped_events=dropped,
    )
    for rack in sorted(by_rack):
        timeline = FaultTimeline(
            events=tuple(events_by_rack.get(rack, ())), seed=spec.seed,
        )
        engine = _StitchedChaosEngine(
            by_rack[rack],
            timeline,
            fabric_remote=remote,
            fabric_drops=drops,
            topology=fabric.rack(rack),
            profiles=profiles,
            guard=spec.guard,
            strategy=spec.strategy,
            flows_per_chain=spec.flows_per_chain,
            batch_size=spec.batch_size,
            seed=spec.seed,
            registry=registry,
            queueing=spec.queueing,
            objective=spec.objective,
        )
        report.racks[rack] = engine.run(
            packets_per_chain=spec.packets_per_chain
        )
    return report


# ---------------------------------------------------------------------------
# merged live placement view
# ---------------------------------------------------------------------------


@dataclass
class FabricPlacement:
    """The live merged view over per-rack cores' placements.

    Quacks enough like :class:`~repro.core.placement.Placement` for the
    front-ends (``chains``, ``rates``, ``feasible``, ``describe``) while
    carrying the fabric bookkeeping the digest needs.
    """

    assignment: Dict[str, str] = field(default_factory=dict)
    racks: Dict[str, Placement] = field(default_factory=dict)
    remote: Dict[str, RackRoute] = field(default_factory=dict)
    rates: Dict[str, float] = field(default_factory=dict)
    feasible: bool = True
    infeasible_reason: Optional[str] = None

    @property
    def chains(self) -> List[ChainPlacement]:
        out: List[ChainPlacement] = []
        for rack in sorted(self.racks):
            out.extend(self.racks[rack].chains)
        out.sort(key=lambda cp: cp.name)
        return out

    @property
    def aggregate_rate(self) -> float:
        return sum(self.rates.values())

    def rate_of(self, chain_name: str) -> float:
        return self.rates.get(chain_name, 0.0)

    def describe(self) -> str:
        lines = [f"fabric placement: {len(self.assignment)} chains "
                 f"on {len(self.racks)} racks"]
        for chain, rack in sorted(self.assignment.items()):
            route = self.remote.get(chain)
            suffix = (f" (+{route.rtt_us:g} µs RTT via "
                      f"{'+'.join(route.links)})" if route else "")
            lines.append(f"  {chain} -> {rack}{suffix}")
        for rack in sorted(self.racks):
            body = self.racks[rack].describe()
            lines.append(f"  -- rack {rack} --")
            lines.append("  " + body.replace("\n", "\n  "))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# fabric admission core
# ---------------------------------------------------------------------------


class FabricAdmissionCore:
    """The multi-rack twin of :class:`AdmissionCore`: same surface, one
    subordinate core per occupied rack.

    Division of labor: each rack core owns its rack (placement, deploy,
    traffic cursors, fault projection) and counts its own admission
    checks; this core owns everything cross-rack — the chain→rack
    assignment, inter-rack hop installation, arrival spill, scale-driven
    migration, rack teardown, and the merged phase/digest views.
    Subordinate cores always run ``pool="per-run"`` (in-process racks),
    so a fabric core pickles whole for serve checkpoints.
    """

    def __init__(
        self,
        initial_chains: Sequence[NFChain],
        *,
        topology: MultiRackTopology,
        profiles: Optional[ProfileDatabase] = None,
        strategy: str = "lemur",
        flows_per_chain: int = 32,
        batch_size: int = 32,
        seed: int = 23,
        registry: Optional[MetricsRegistry] = None,
        cache: Optional[PlacementCache] = None,
        full_resolve: bool = False,
        pool: str = "per-run",
        queueing: str = "none",
        objective: str = "throughput",
    ):
        if not isinstance(topology, MultiRackTopology):
            raise LifecycleError(
                "FabricAdmissionCore needs a MultiRackTopology "
                f"(got {type(topology).__name__}); use AdmissionCore "
                "for a single rack"
            )
        if not initial_chains:
            raise LifecycleError(
                "admission needs at least one initial chain "
                "(an empty rack has nothing to deploy)"
            )
        if pool not in ("keep", "per-run"):
            raise LifecycleError("pool must be 'keep' or 'per-run'")
        self.initial_chains = list(initial_chains)
        self.fabric = topology
        self.topology = topology
        self.profiles = profiles or default_profiles()
        self.strategy = strategy
        self.flows_per_chain = flows_per_chain
        self.batch_size = batch_size
        self.seed = seed
        self.obs = registry if registry is not None else get_registry()
        #: shared across rack cores — placement fingerprints include the
        #: (per-rack) topology, so entries can never collide across racks.
        self.cache = cache if cache is not None else PlacementCache()
        self.full_resolve = full_resolve
        self.queueing = queueing
        self.objective = objective
        self.config = PlacerConfig(strategy=strategy)

        #: ingress→rack routes for every rack, fixed by the fabric.
        self.routes: Dict[str, RackRoute] = fabric_routes(self.fabric)
        #: one subordinate core per rack that currently hosts chains.
        self.cores: Dict[str, AdmissionCore] = {}
        self.assignment: Dict[str, str] = {}
        #: original end-to-end ``d_max`` per chain (the rack cores hold
        #: the RTT-shrunk bound; reports restore this one).
        self._d_max: Dict[str, float] = {}
        self.active: List[NFChain] = []
        self.rates: Dict[str, float] = {}
        self.placement: Optional[FabricPlacement] = None
        # AdmissionCore-surface compat for front-end read-only views
        self.rack = None
        self.traffic = None
        self.fault_state: Dict[str, float] = {}

    # -- candidate ordering -------------------------------------------------

    def _candidates(self) -> List[str]:
        """Racks in spill-preference order: ingress, then by route
        latency (ties on name) — the partitioner's static order."""
        others = sorted(
            (r for r in self.fabric.racks if r != self.fabric.ingress),
            key=lambda r: (self.routes[r].latency_us, r),
        )
        return [self.fabric.ingress] + others

    def _shrunk_d_max(self, d_max: float, rack: str) -> float:
        if rack == self.fabric.ingress or math.isinf(d_max):
            return d_max
        return d_max - self.routes[rack].rtt_us

    def _handed_chain(self, chain: NFChain, rack: str,
                      d_max: float) -> NFChain:
        """The chain as the rack core should hold it (RTT charged)."""
        slo = chain.slo
        return chain.with_slo(SLO(
            t_min=slo.t_min, t_max=slo.t_max,
            d_max=self._shrunk_d_max(d_max, rack),
        ))

    # -- subordinate core lifecycle -----------------------------------------

    def _new_core(self, rack: str,
                  chains: List[NFChain]) -> AdmissionCore:
        return AdmissionCore(
            chains,
            topology=self.fabric.rack(rack),
            profiles=self.profiles,
            strategy=self.strategy,
            flows_per_chain=self.flows_per_chain,
            batch_size=self.batch_size,
            seed=self.seed,
            registry=self.obs,
            cache=self.cache,
            full_resolve=self.full_resolve,
            pool="per-run",
            queueing=self.queueing,
            objective=self.objective,
        )

    @staticmethod
    def _placement_devices(placement) -> Tuple[str, ...]:
        devices = set()
        for cp in placement.chains:
            devices.update(cp.assignment.values())
        return tuple(sorted(devices))

    def _teardown_rack(self, rack: str) -> Tuple[str, ...]:
        """Drop a rack core entirely (its last chain left)."""
        core = self.cores.pop(rack)
        self.obs.counter("lifecycle.rack_teardowns").inc()
        return self._placement_devices(core.placement)

    # -- cross-rack consistency ---------------------------------------------

    def _remote(self) -> Dict[str, RackRoute]:
        return {
            chain: self.routes[rack]
            for chain, rack in self.assignment.items()
            if rack != self.fabric.ingress
        }

    def _sync(self) -> None:
        """Rebuild the merged views + reinstall hops after any change."""
        self.active = sorted(
            (c for core in self.cores.values() for c in core.active),
            key=lambda c: c.name,
        )
        self.rates = {}
        racks: Dict[str, Placement] = {}
        for rack in sorted(self.cores):
            core = self.cores[rack]
            self.rates.update(core.rates)
            racks[rack] = core.placement
        remote = self._remote()
        drops = link_drop_fractions(
            self.fabric, remote, self.rates, self.obs
        )
        for rack in sorted(self.cores):
            core = self.cores[rack]
            install_fabric_hops(
                core.rack, [c.name for c in core.active], remote, drops,
            )
        self.placement = FabricPlacement(
            assignment=dict(self.assignment),
            racks=racks,
            remote=remote,
            rates=dict(self.rates),
        )
        self.obs.gauge("lifecycle.active_chains").set(len(self.active))

    def _link_floor_check(self, chain_name: str, rack: str,
                          t_min: float) -> Optional[str]:
        """Would ``chain_name``'s floor at ``t_min`` over-commit a link
        on its route? Returns the binding reason, or None."""
        if rack == self.fabric.ingress:
            return None
        route = self.routes[rack]
        floors: Dict[str, float] = {}
        for other, home in self.assignment.items():
            if home == self.fabric.ingress or other == chain_name:
                continue
            for link in self.routes[home].links:
                floor = next(
                    (c.slo.t_min for c in self.active if c.name == other),
                    0.0,
                )
                floors[link] = floors.get(link, 0.0) + floor
        for link in self.fabric.links:
            if link.name not in route.links:
                continue
            committed = floors.get(link.name, 0.0) + t_min
            if committed > link.capacity_mbps:
                return (
                    f"link {link.name} capacity exhausted: floors need "
                    f"{committed:g} Mbps, link carries "
                    f"{link.capacity_mbps:g} Mbps"
                )
        return None

    # -- bootstrap ----------------------------------------------------------

    def bootstrap(self) -> FabricPlacement:
        """Partition the initial chains, then cold-bootstrap one core
        per occupied rack (sorted order, so deterministic)."""
        try:
            partition = partition_chains(
                self.initial_chains,
                self.fabric,
                self.profiles,
                packet_bits=self.config.packet_bits,
            )
        except PartitionError as exc:
            raise PlacementError(
                f"admission needs a feasible initial placement: {exc}"
            ) from exc
        by_name = {chain.name: chain for chain in self.initial_chains}
        for chain in self.initial_chains:
            rack = partition.rack_of(chain.name)
            self.assignment[chain.name] = rack
            self._d_max[chain.name] = chain.slo.d_max
        for rack in sorted(set(self.assignment.values())):
            chains = [
                self._handed_chain(
                    by_name[name], rack, self._d_max[name]
                )
                for name in sorted(partition.chains_for(rack))
            ]
            core = self._new_core(rack, chains)
            try:
                core.bootstrap()
            except PlacementError as exc:
                raise PlacementError(f"rack {rack}: {exc}") from exc
            self.cores[rack] = core
        self._sync()
        return self.placement

    # -- admission ----------------------------------------------------------

    def process(self, event: ChainEvent) -> AdmissionDecision:
        if event.action not in LIFECYCLE_ACTIONS:
            raise LifecycleError(
                f"unknown lifecycle action {event.action!r}; "
                f"choose from {sorted(LIFECYCLE_ACTIONS)}"
            )
        if event.action == "arrive":
            decision = self._arrive(event)
        elif event.action == "depart":
            decision = self._depart(event)
        else:
            decision = self._scale(event)
        if decision.accepted:
            self._sync()
        else:
            self.obs.gauge("lifecycle.active_chains").set(len(self.active))
        return decision

    def _reject(self, event: ChainEvent, reason: str) -> AdmissionDecision:
        """A fabric-level static rejection (counted here: no rack core
        ever saw the event)."""
        self.obs.counter("lifecycle.events", action=event.action).inc()
        self.obs.counter(
            "lifecycle.admission", decision="rejected", action=event.action,
        ).inc()
        return AdmissionDecision(
            tick=event.at, action=event.action, chain=event.chain,
            accepted=False, reason=reason,
        )

    def _arrive(self, event: ChainEvent) -> AdmissionDecision:
        if event.chain in self.assignment:
            return self._reject(
                event, f"chain {event.chain!r} is already active"
            )
        reasons: List[str] = []
        for index, rack in enumerate(self._candidates()):
            shrunk = self._shrunk_d_max(event.d_max_us, rack)
            if shrunk <= 0.0:
                reasons.append(
                    f"{rack}: d_max {event.d_max_us:g} µs <= inter-rack "
                    f"RTT {self.routes[rack].rtt_us:g} µs"
                )
                continue
            link_reason = self._link_floor_check(
                event.chain, rack, event.t_min_mbps
            )
            if link_reason is not None:
                reasons.append(f"{rack}: {link_reason}")
                continue
            handed = replace(event, d_max_us=shrunk)
            decision = self._arrive_at(rack, handed)
            if decision.accepted:
                self.assignment[event.chain] = rack
                self._d_max[event.chain] = event.d_max_us
                if index > 0:
                    self.obs.counter("lifecycle.spills").inc()
                return decision
            reasons.append(f"{rack}: {decision.reason}")
        return AdmissionDecision(
            tick=event.at, action="arrive", chain=event.chain,
            accepted=False,
            reason="no rack admitted the chain — " + "; ".join(reasons),
        )

    def _arrive_at(self, rack: str,
                   event: ChainEvent) -> AdmissionDecision:
        """One rack's admission check for an arrival (cold-bootstrapping
        the rack core when the rack is empty)."""
        core = self.cores.get(rack)
        if core is not None:
            return core.process(event)
        (chain,) = chains_from_spec(event.spec)
        chain = chain.with_slo(event.slo())
        fresh = self._new_core(rack, [chain])
        self.obs.counter("lifecycle.events", action="arrive").inc()
        try:
            report = fresh.bootstrap()
        except PlacementError as exc:
            self.obs.counter(
                "lifecycle.admission", decision="rejected", action="arrive",
            ).inc()
            return AdmissionDecision(
                tick=event.at, action="arrive", chain=event.chain,
                accepted=False, reason=str(exc),
            )
        self.cores[rack] = fresh
        self.obs.counter(
            "lifecycle.admission", decision="accepted", action="arrive",
        ).inc()
        return AdmissionDecision(
            tick=event.at, action="arrive", chain=event.chain,
            accepted=True, mode="full",
            placed=len(report.placement.chains),
            cache_hit=report.cache_hit,
            rebuilt=self._placement_devices(report.placement),
            seconds=report.seconds,
        )

    def _depart(self, event: ChainEvent) -> AdmissionDecision:
        rack = self.assignment.get(event.chain)
        if rack is None:
            return self._reject(
                event, f"no active chain named {event.chain!r}"
            )
        core = self.cores[rack]
        if len(core.active) == 1:
            if len(self.active) == 1:
                return self._reject(
                    event, "cannot depart the last active chain"
                )
            self.obs.counter("lifecycle.events", action="depart").inc()
            removed = self._teardown_rack(rack)
            del self.assignment[event.chain]
            del self._d_max[event.chain]
            self.obs.counter(
                "lifecycle.admission", decision="accepted", action="depart",
            ).inc()
            return AdmissionDecision(
                tick=event.at, action="depart", chain=event.chain,
                accepted=True, mode="teardown", removed=removed,
            )
        decision = core.process(event)
        if decision.accepted:
            del self.assignment[event.chain]
            del self._d_max[event.chain]
        return decision

    def _scale(self, event: ChainEvent) -> AdmissionDecision:
        rack = self.assignment.get(event.chain)
        if rack is None:
            return self._reject(
                event, f"no active chain named {event.chain!r}"
            )
        core = self.cores[rack]
        link_reason = self._link_floor_check(
            event.chain, rack, event.t_min_mbps
        )
        if link_reason is None:
            decision = core.process(event)
            if decision.accepted:
                return decision
        else:
            # the route itself is the binding constraint: don't even ask
            # the home rack, go straight to migration
            self.obs.counter("lifecycle.events", action="scale").inc()
            self.obs.counter(
                "lifecycle.admission", decision="rejected", action="scale",
            ).inc()
            decision = AdmissionDecision(
                tick=event.at, action="scale", chain=event.chain,
                accepted=False, reason=f"{rack}: {link_reason}",
            )
        migrated = self._migrate(event, rack)
        return migrated if migrated is not None else decision

    def _migrate(self, event: ChainEvent,
                 home: str) -> Optional[AdmissionDecision]:
        """Move a chain whose home rack cannot absorb a scale-up.

        Arrive-first, depart-second: the chain lands on the destination
        (at the scaled SLO, full re-solve there) before it leaves its
        home rack, so a failed migration leaves the fabric exactly as it
        was — the original rejection stands.
        """
        home_core = self.cores[home]
        current = next(
            c for c in home_core.active if c.name == event.chain
        )
        d_max = self._d_max[event.chain]
        t_max = (current.slo.t_max if math.isinf(event.t_max_mbps)
                 else event.t_max_mbps)
        # same lift as SLO.with_tmin: scaling past the old ceiling raises it
        t_max = max(t_max, event.t_min_mbps)
        for rack in self._candidates():
            if rack == home:
                continue
            shrunk = self._shrunk_d_max(d_max, rack)
            if shrunk <= 0.0:
                continue
            if self._link_floor_check(
                event.chain, rack, event.t_min_mbps
            ) is not None:
                continue
            moved = current.with_slo(SLO(
                t_min=event.t_min_mbps, t_max=t_max, d_max=shrunk,
            ))
            dest = self.cores.get(rack)
            fresh_dest = dest is None
            if fresh_dest:
                dest = self._new_core(rack, [moved])
                try:
                    report = dest.bootstrap()
                except PlacementError:
                    continue
                arrive = AdmissionDecision(
                    tick=event.at, action="arrive", chain=event.chain,
                    accepted=True, mode="full",
                    rebuilt=self._placement_devices(report.placement),
                )
            else:
                arrive = dest.admit(
                    ChainEvent(
                        at=event.at, action="arrive", chain=event.chain,
                        t_min_mbps=event.t_min_mbps, t_max_mbps=t_max,
                        d_max_us=shrunk,
                    ),
                    dest.active + [moved],
                )
                if not arrive.accepted:
                    continue
            # the destination holds the chain; now leave home
            if len(home_core.active) == 1:
                removed = self._teardown_rack(home)
            else:
                depart = home_core.process(ChainEvent(
                    at=event.at, action="depart", chain=event.chain,
                ))
                if not depart.accepted:  # pragma: no cover - shrink solve
                    # roll the arrival back so the chain is not doubled
                    if fresh_dest:
                        self.cores.pop(rack, None)
                    else:
                        dest.process(ChainEvent(
                            at=event.at, action="depart",
                            chain=event.chain,
                        ))
                    return None
                removed = depart.removed
            if fresh_dest:
                self.cores[rack] = dest
            self.assignment[event.chain] = rack
            self.obs.counter("lifecycle.migrations").inc()
            return AdmissionDecision(
                tick=event.at, action="scale", chain=event.chain,
                accepted=True, mode=f"migrate:{home}->{rack}",
                placed=arrive.placed,
                cache_hit=arrive.cache_hit,
                rebuilt=arrive.rebuilt,
                reused=arrive.reused,
                removed=removed,
            )
        return None

    # -- day-2 fault probes --------------------------------------------------

    def apply_fault(self, action: str, target: str,
                    severity: float = 1.0) -> None:
        """Route a fault probe to the rack hosting the target device
        (targets use rack-prefixed names, e.g. ``r1.server0``)."""
        rack = self.fabric.rack_of_device(target)
        core = self.cores.get(rack)
        if core is None:
            raise FaultInjectionError(
                f"rack {rack!r} hosts no chains — nothing to fault"
            )
        core.apply_fault(action, target, severity)
        self.fault_state = {}
        for name in sorted(self.cores):
            self.fault_state.update(self.cores[name].fault_state)

    # -- traffic phases ------------------------------------------------------

    def run_phase(self, label: str, packets_per_chain: int, *,
                  index: int, start_packet: int = 0) -> PhaseReport:
        """One deterministic phase over every rack (sorted order), with
        rows restored to the end-to-end ``d_max`` — measured latency
        already includes the stamped inter-rack RTT, so the bound and
        the measurement describe the same packet path."""
        merged = PhaseReport(
            index=index, label=label, mode="live",
            start_packet=start_packet, t_mins={},
        )
        for rack in sorted(self.cores):
            phase = self.cores[rack].run_phase(
                label, packets_per_chain,
                index=index, start_packet=start_packet,
            )
            merged.t_mins.update(phase.t_mins)
            for row in phase.chains:
                bound = self._d_max.get(row.chain_name, float("inf"))
                merged.chains.append(replace(
                    row,
                    latency_slo_us=0.0 if math.isinf(bound) else bound,
                ))
        merged.chains.sort(key=lambda row: row.chain_name)
        return merged

    # -- durability ----------------------------------------------------------

    def prepare_checkpoint(self) -> None:
        """Fan the checkpoint fetch across rack cores (the serve daemon's
        pickling contract — per-run rack cores carry their racks inline,
        so this is cheap, but the surface must match ``AdmissionCore``)."""
        for rack in sorted(self.cores):
            self.cores[rack].prepare_checkpoint()

    def reattach(self) -> None:
        """Crash-recovery counterpart of :meth:`prepare_checkpoint`."""
        for rack in sorted(self.cores):
            self.cores[rack].reattach()

    # -- state identity ------------------------------------------------------

    def state_digest(self) -> str:
        """Canonical digest over the fabric assignment + rack digests."""
        payload = {
            "assignment": dict(sorted(self.assignment.items())),
            "d_max": {
                name: repr(value)
                for name, value in sorted(self._d_max.items())
            },
            "racks": {
                rack: self.cores[rack].state_digest()
                for rack in sorted(self.cores)
            },
        }
        canon = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(canon.encode()).hexdigest()


# ---------------------------------------------------------------------------
# front-end factory
# ---------------------------------------------------------------------------


def make_admission_core(
    initial_chains: Sequence[NFChain],
    *,
    topology=None,
    **kwargs,
):
    """The one switch both front-ends use: a fabric topology gets a
    :class:`FabricAdmissionCore`, anything else the single-rack core. A
    one-rack fabric degenerates to its rack (no partitioning, no hops)."""
    if isinstance(topology, MultiRackTopology):
        if len(topology.racks) == 1:
            topology = topology.rack(topology.ingress)
        else:
            return FabricAdmissionCore(
                initial_chains, topology=topology, **kwargs
            )
    return AdmissionCore(initial_chains, topology=topology, **kwargs)


__all__ = [
    "FabricAdmissionCore",
    "FabricChaosReport",
    "FabricPlacement",
    "FabricTrafficReport",
    "install_fabric_hops",
    "link_drop_fractions",
    "make_admission_core",
    "route_hop",
    "run_fabric_chaos",
    "run_fabric_traffic",
]
