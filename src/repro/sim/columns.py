"""Columnar (structure-of-arrays) packet batches for the vectorized dataplane.

The scalar dataplane moves :class:`~repro.net.packet.Packet` objects one
attribute at a time; at high volume the Python object walk dominates. A
:class:`PacketColumns` batch instead keeps **one frozen template packet per
flow signature** plus numpy arrays for everything that is per-packet: the
flow signature, injection sequence, cycle charges (total and per device),
NSH ``(spi, si)`` labels, and per-hop cycle/latency columns. Because every
packet of a signature is byte-identical, a service-path hop only has to be
*probed* once per (device, coordinates, template-bytes) — the runtime runs
one clone through the real platform runtime, records the per-module counter
deltas and the transformed output template, and then replays the effect
across the whole column arithmetically (see
:meth:`repro.sim.runtime.DeployedRack.run_columns`).

Divergent, stateful, or payload-mutating NFs fall back transparently:
:meth:`materialize_packets` rebuilds real ``Packet`` objects mid-flight and
the scalar block loop takes over, bit-identical to a scalar run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.net.packet import Packet


def vector_fault_mask(seq: np.ndarray, seed: int, loss: float) -> np.ndarray:
    """Vectorized :meth:`DeployedRack._fault_reason` partial-loss decision.

    Bit-exact uint64 replication of the scalar hash: the mask is a
    power-of-two truncation (so modular wrap-around is harmless) and the
    final ``x / 2**32`` is exact in float64 for any 32-bit ``x``.
    """
    x = (seq.astype(np.uint64) * np.uint64(2654435761)
         + np.uint64((seed * 40503 + 0x9E3779B9) & 0xFFFFFFFFFFFFFFFF))
    x &= np.uint64(0xFFFFFFFF)
    x ^= x >> np.uint64(16)
    x = (x * np.uint64(0x45D9F3B)) & np.uint64(0xFFFFFFFF)
    x ^= x >> np.uint64(16)
    return (x.astype(np.float64) / 4294967296.0) < loss


@dataclass
class HopColumn:
    """Per-hop record column: the vectorized ``hops`` metadata entry."""

    device: str
    platform: str
    cycles: np.ndarray
    exec_us: np.ndarray

    def take(self, index) -> "HopColumn":
        return HopColumn(self.device, self.platform,
                         self.cycles[index], self.exec_us[index])


class PacketColumns:
    """A batch of packets in structure-of-arrays form.

    ``templates`` maps flow signature -> the *current* frozen template
    packet for that flow (replaced wholesale as hops transform it; never
    mutated in place). The arrays are aligned per packet:

    * ``sig``: flow signature of each packet (``int64``)
    * ``seq``: rack injection sequence (``int64``; assigned by the rack)
    * ``spi`` / ``si``: current NSH service-path labels (``int64``)
    * ``cycles``: total cycles charged so far (``int64``)
    * ``device_cycles``: device name -> per-packet cycles on that device's
      clock, in first-charge order (``device_order``)
    * ``hops``: one :class:`HopColumn` per completed hop
    """

    __slots__ = ("templates", "sig", "seq", "spi", "si", "cycles",
                 "device_order", "device_cycles", "hops")

    def __init__(self, templates: Dict[int, Packet], sig: np.ndarray,
                 seq: Optional[np.ndarray] = None):
        n = len(sig)
        self.templates = templates
        self.sig = np.asarray(sig, dtype=np.int64)
        self.seq = (seq if seq is not None
                    else np.zeros(n, dtype=np.int64))
        self.spi = np.zeros(n, dtype=np.int64)
        self.si = np.zeros(n, dtype=np.int64)
        self.cycles = np.zeros(n, dtype=np.int64)
        self.device_order: List[str] = []
        self.device_cycles: Dict[str, np.ndarray] = {}
        self.hops: List[HopColumn] = []

    @classmethod
    def for_flows(cls, flows: Sequence[Packet],
                  sig: Sequence[int]) -> "PacketColumns":
        """Batch ``len(sig)`` packets over a flow-template set: packet ``i``
        is (virtually) a clone of ``flows[sig[i]]``."""
        templates = {index: packet for index, packet in enumerate(flows)}
        return cls(templates, np.asarray(sig, dtype=np.int64))

    def __len__(self) -> int:
        return len(self.sig)

    # -- derived columns (gathered from the current templates) -------------

    def _gather(self, fn, dtype) -> np.ndarray:
        values = {s: fn(t) for s, t in self.templates.items()}
        return np.asarray([values[int(s)] for s in self.sig], dtype=dtype)

    def lengths(self) -> np.ndarray:
        """Current wire length of each packet."""
        return self._gather(len, np.int64)

    def ttls(self) -> np.ndarray:
        """Current IPv4 TTL of each packet (0 where not IPv4)."""
        return self._gather(
            lambda t: t.ipv4.ttl if t.ipv4 is not None else 0, np.int64)

    def flow_digests(self) -> np.ndarray:
        """CRC32 flow digest of each packet."""
        return self._gather(lambda t: t.flow_digest(), np.uint64)

    def flow_keys(self) -> np.ndarray:
        """Packed 13-byte flow keys (empty bytes where not IPv4)."""
        return self._gather(
            lambda t: t.flow_key_bytes() or b"", np.dtype("S13"))

    # -- restructuring ------------------------------------------------------

    def slice(self, start: int, end: int) -> "PacketColumns":
        """A consecutive sub-block (templates are shared copy-on-write:
        the dict is copied, the frozen packets are not)."""
        return self._rebuild(slice(start, end))

    def compress(self, mask: np.ndarray) -> "PacketColumns":
        """Keep only the packets where ``mask`` is True."""
        return self._rebuild(mask)

    def _rebuild(self, index) -> "PacketColumns":
        out = PacketColumns(dict(self.templates), self.sig[index],
                            self.seq[index])
        out.spi = self.spi[index]
        out.si = self.si[index]
        out.cycles = self.cycles[index]
        out.device_order = list(self.device_order)
        out.device_cycles = {
            device: arr[index] for device, arr in self.device_cycles.items()
        }
        out.hops = [hop.take(index) for hop in self.hops]
        return out

    def charge_device(self, device: str, delta: np.ndarray) -> None:
        """Accumulate per-packet cycles on ``device``'s clock."""
        existing = self.device_cycles.get(device)
        if existing is None:
            self.device_order.append(device)
            self.device_cycles[device] = delta.astype(np.int64)
        else:
            self.device_cycles[device] = existing + delta

    # -- scalar bridge ------------------------------------------------------

    def materialize_packets(self, chain_id: Optional[str] = None):
        """Rebuild real ``Packet`` objects (plus their per-hop records) so
        the scalar block loop can take over mid-flight."""
        packets: List[Packet] = []
        hop_records: Dict[int, List[dict]] = {}
        for i in range(len(self.sig)):
            packet = self.templates[int(self.sig[i])].copy()
            meta = packet.metadata
            meta.seq = int(self.seq[i])
            if chain_id is not None:
                meta.chain_id = chain_id
            meta.cycles_consumed = int(self.cycles[i])
            meta.cycles_by_device = {
                device: int(self.device_cycles[device][i])
                for device in self.device_order
                if self.device_cycles[device][i]
            }
            hop_records[meta.seq] = [
                {"device": hop.device, "platform": hop.platform,
                 "cycles": int(hop.cycles[i]),
                 "exec_us": float(hop.exec_us[i])}
                for hop in self.hops
            ]
            packets.append(packet)
        return packets, hop_records


@dataclass
class _FinishedBlock:
    """A delivered block plus its latency columns (stamped lazily)."""

    columns: PacketColumns
    exec_us: np.ndarray
    #: utilization-dependent queueing wait (zeros when queueing is off)
    queue_us: np.ndarray
    latency_us: np.ndarray
    bounce_us: float
    switch_us: float
    #: inter-rack fabric round trip (None when the chain is rack-local;
    #: mirrors the scalar stamp, which only writes the field for chains
    #: with a configured inter-rack hop)
    interrack_us: Optional[float] = None


@dataclass
class ColumnarRunResult:
    """One :meth:`DeployedRack.run_columns` call's outcome.

    Delivery counts are available without materializing packets (the hot
    path the benchmarks measure); :meth:`materialize` rebuilds the full
    per-packet ``RunResult`` view for equivalence checks and tracing.
    """

    chain_id: str
    count: int
    seq_base: int
    #: seq -> delivered packet or None, for packets that went through the
    #: scalar fallback bridge.
    scalar: Dict[int, Optional[Packet]] = field(default_factory=dict)
    blocks: List[_FinishedBlock] = field(default_factory=list)

    @property
    def delivered(self) -> int:
        columnar = sum(len(block.columns) for block in self.blocks)
        scalar = sum(1 for p in self.scalar.values() if p is not None)
        return columnar + scalar

    @property
    def dropped(self) -> int:
        return self.count - self.delivered

    def __len__(self) -> int:
        return self.count

    def materialize(self) -> List[Optional[Packet]]:
        """Per-packet outputs in injection order (``None`` = dropped)."""
        outputs: List[Optional[Packet]] = [None] * self.count
        for seq, packet in self.scalar.items():
            outputs[seq - self.seq_base] = packet
        for block in self.blocks:
            cols = block.columns
            for i in range(len(cols)):
                seq = int(cols.seq[i])
                packet = cols.templates[int(cols.sig[i])].copy()
                meta = packet.metadata
                meta.seq = seq
                meta.chain_id = self.chain_id
                meta.cycles_consumed = int(cols.cycles[i])
                meta.cycles_by_device = {
                    device: int(cols.device_cycles[device][i])
                    for device in cols.device_order
                    if cols.device_cycles[device][i]
                }
                fields = dict(meta.fields)
                fields["exec_us"] = float(block.exec_us[i])
                fields["queue_us"] = float(block.queue_us[i])
                fields["bounce_us"] = block.bounce_us
                fields["switch_us"] = block.switch_us
                if block.interrack_us is not None:
                    fields["interrack_us"] = block.interrack_us
                fields["latency_us"] = float(block.latency_us[i])
                fields["hops"] = [
                    {"device": hop.device, "platform": hop.platform,
                     "cycles": int(hop.cycles[i]),
                     "exec_us": float(hop.exec_us[i])}
                    for hop in cols.hops
                ]
                meta.fields = fields
                outputs[seq - self.seq_base] = packet
        return outputs
