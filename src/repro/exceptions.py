"""Exception hierarchy shared across the Lemur reproduction.

Every subsystem raises a subclass of :class:`ReproError` so that callers can
catch library failures without masking programming errors (``TypeError``,
``KeyError`` and friends always propagate).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class SpecError(ReproError):
    """The NF chain specification is malformed (lexer/parser/AST errors)."""


class SpecSyntaxError(SpecError):
    """Syntax error in the chain-spec DSL, with position information."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, col {column}: {message}"
        super().__init__(message)


class VocabularyError(SpecError):
    """An NF name is not in the (extensible) NF vocabulary."""


class GraphError(ReproError):
    """The NF graph is structurally invalid (cycles, dangling merges...)."""


class PlacementError(ReproError):
    """The Placer could not produce a placement."""


class InfeasiblePlacementError(PlacementError):
    """No placement satisfies the SLOs under the given resources."""


class ProfileError(ReproError):
    """An NF profile is missing or inconsistent."""


class CompileError(ReproError):
    """Meta-compiler or platform compiler failure."""


class P4CompileError(CompileError):
    """The PISA pipeline does not fit the switch (stages/memory) or the
    unified parser has conflicting header transitions."""


class ParserMergeConflict(P4CompileError):
    """Two NF-local parse trees disagree on a header transition (§A.2.1)."""


class VerifierError(CompileError):
    """The eBPF verifier rejected a SmartNIC program."""


class OpenFlowError(CompileError):
    """The OpenFlow switch cannot realize the requested table order/rules."""


class DataplaneError(ReproError):
    """Runtime error inside a simulated dataplane."""


class TopologyError(ReproError):
    """The rack topology description is invalid."""


class PartitionError(PlacementError):
    """The chain-to-rack partitioner could not produce an assignment
    (capacity-infeasible, latency budget exhausted, or disconnected
    fabric); carries the binding constraint in its message."""


class LifecycleError(ReproError):
    """A chain-lifecycle timeline or run is malformed."""


class FaultInjectionError(ReproError):
    """A fault timeline is invalid or a chaos run broke an invariant
    (e.g. replica runs of the same seed diverged)."""


class TrafficError(ReproError):
    """A traffic-replay experiment spec is malformed."""


class WorkerPoolError(ReproError):
    """The persistent worker runtime failed (dead worker, bad dispatch)."""


class ServeError(ReproError):
    """The control-plane daemon was misconfigured or broke an invariant."""


class CommandError(ServeError):
    """A serve command payload is malformed (bad type/fields/values)."""
