"""Placement data structures.

A *pattern* maps each NF node to a hardware element; a *placement* adds
run-to-completion subgroups with core allocations and the LP's per-chain
rate assignment (§3.2 "a placement includes a pattern, a core allocation for
each subgroup, and the rates assigned to NF chains").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.chain.graph import NFChain
from repro.hw.platform import Platform


@dataclass(frozen=True)
class NodeAssignment:
    """Where one NF runs: platform + concrete device name."""

    platform: Platform
    device: str

    def __str__(self) -> str:
        return f"{self.platform.value}:{self.device}"


@dataclass
class Subgroup:
    """A run-to-completion group of server NFs sharing cores (§3.2).

    ``cycles`` is the per-ingress-packet cost of one pass through the
    subgroup (member NF costs weighted by the fraction of chain traffic
    reaching them, plus coordination overheads). ``replicable`` is False when
    the subgroup contains a non-replicable NF (NAT, Limiter) or a
    branch/merge node.
    """

    sg_id: str
    chain_name: str
    server: str
    node_ids: Tuple[str, ...]
    cycles: float
    replicable: bool
    cores: int = 1

    def rate_mbps(self, freq_hz: float, packet_bits: int) -> float:
        """Max chain-ingress rate this subgroup supports with its cores."""
        if self.cycles <= 0:
            return float("inf")
        pps = self.cores * freq_hz / self.cycles
        return pps * packet_bits / 1e6


@dataclass
class ChainPlacement:
    """One chain's pattern + subgroups + derived quantities."""

    chain: NFChain
    assignment: Dict[str, NodeAssignment]
    subgroups: List[Subgroup] = field(default_factory=list)
    #: SmartNIC rate caps: device name -> max chain rate (Mbps).
    nic_caps: Dict[str, float] = field(default_factory=dict)
    #: Per-server NIC traversal multiplicity: expected times a unit of chain
    #: traffic enters (== exits) each server (for the link-capacity LP).
    server_visits: Dict[str, float] = field(default_factory=dict)
    #: Number of switch<->server/SmartNIC bounces along the worst-case path.
    bounces: int = 0
    #: Worst-case chain latency (µs) under this placement.
    latency_us: float = 0.0
    #: Estimated chain rate (Mbps) given subgroup core allocations.
    estimated_rate: float = 0.0

    @property
    def name(self) -> str:
        return self.chain.name

    def switch_node_ids(self) -> set:
        return {
            nid for nid, a in self.assignment.items()
            if a.platform is Platform.PISA
        }

    def openflow_node_ids(self) -> set:
        return {
            nid for nid, a in self.assignment.items()
            if a.platform is Platform.OPENFLOW
        }

    def cores_used(self) -> Dict[str, int]:
        """Server name -> cores consumed by this chain's subgroups."""
        usage: Dict[str, int] = {}
        for sg in self.subgroups:
            usage[sg.server] = usage.get(sg.server, 0) + sg.cores
        return usage

    def with_cores(self, allocation: Dict[str, int]) -> "ChainPlacement":
        """Copy with new per-subgroup core counts (keyed by sg_id)."""
        new_subgroups = [
            replace(sg, cores=allocation.get(sg.sg_id, sg.cores))
            for sg in self.subgroups
        ]
        return replace(self, subgroups=new_subgroups)


@dataclass
class Placement:
    """A full multi-chain placement with rates — the Placer's output."""

    chains: List[ChainPlacement]
    rates: Dict[str, float] = field(default_factory=dict)
    feasible: bool = False
    objective_mbps: float = 0.0  # aggregate marginal throughput
    infeasible_reason: Optional[str] = None
    strategy: str = "lemur"
    switch_stages_used: Optional[int] = None

    @property
    def aggregate_rate(self) -> float:
        return sum(self.rates.values())

    @property
    def aggregate_tmin(self) -> float:
        return sum(cp.chain.slo.t_min for cp in self.chains)

    def rate_of(self, chain_name: str) -> float:
        return self.rates.get(chain_name, 0.0)

    def marginal_of(self, chain_name: str) -> float:
        for cp in self.chains:
            if cp.name == chain_name:
                return max(0.0, self.rate_of(chain_name) - cp.chain.slo.t_min)
        raise KeyError(chain_name)

    def predicted_rate(self) -> float:
        """Sum of estimated chain rates, capped by assigned rates' caps —
        the ◇ marker in Figure 2."""
        return sum(self.rates.values()) if self.rates else 0.0

    def total_cores(self) -> Dict[str, int]:
        usage: Dict[str, int] = {}
        for cp in self.chains:
            for server, cores in cp.cores_used().items():
                usage[server] = usage.get(server, 0) + cores
        return usage

    def describe(self) -> str:
        """Human-readable summary for reports and examples."""
        lines = [f"Placement[{self.strategy}] feasible={self.feasible} "
                 f"marginal={self.objective_mbps:.0f} Mbps"]
        if self.infeasible_reason:
            lines.append(f"  reason: {self.infeasible_reason}")
        for cp in self.chains:
            rate = self.rates.get(cp.name, 0.0)
            lines.append(
                f"  {cp.name}: rate={rate:.0f} Mbps "
                f"(t_min={cp.chain.slo.t_min:.0f}), est={cp.estimated_rate:.0f}, "
                f"bounces={cp.bounces}"
            )
            for nid in cp.chain.graph.topological_order():
                node = cp.chain.graph.nodes[nid]
                sg = next((s for s in cp.subgroups if nid in s.node_ids), None)
                core_info = f" cores={sg.cores}" if sg and nid == sg.node_ids[0] else ""
                lines.append(
                    f"    {node.nf_class:<12} -> {cp.assignment[nid]}{core_info}"
                )
        return "\n".join(lines)
