"""Shared placement pipeline: patterns → subgroups → cores → LP → checks.

Every placement scheme (Lemur's heuristic, Optimal, the baselines, the
ablations) funnels through :func:`build_placement`, which performs the
common finishing steps of §3.2:

1. form run-to-completion subgroups from the pattern;
2. rebalance subgroups across servers (multi-server topologies);
3. derive per-chain caps, visits, bounces and latency;
4. allocate cores under the scheme's policy;
5. filter on latency SLOs;
6. verify the PISA stage budget (or the OpenFlow fixed table order);
7. solve the rate LP and report aggregate marginal throughput.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.chain.graph import NFChain
from repro.core.corealloc import allocate_cores
from repro.core.lp import solve_rates
from repro.core.placement import ChainPlacement, NodeAssignment, Placement
from repro.core.rates import analyze_chain
from repro.core.subgroups import form_subgroups
from repro.exceptions import P4CompileError
from repro.hw.openflow import OpenFlowSwitchModel
from repro.hw.platform import Platform
from repro.hw.topology import Topology
from repro.p4c.compiler import PISACompiler
from repro.profiles.defaults import ProfileDatabase
from repro.units import DEFAULT_PACKET_BITS


def rebalance_servers(
    chains: Sequence[NFChain],
    assignments: List[Dict[str, NodeAssignment]],
    topology: Topology,
    profiles: ProfileDatabase,
) -> List[Dict[str, NodeAssignment]]:
    """Spread subgroups across servers in multi-server topologies.

    Patterns are enumerated against a canonical server; here whole
    subgroups migrate to the server with the most free cores (largest
    subgroup first), which both respects per-server budgets and gives
    replicable subgroups headroom — "two subgroups in an NF chain may be
    placed on different servers" (§3.2).
    """
    servers = [
        s for s in topology.servers if s.name not in topology.failed_devices
    ]
    if len(servers) <= 1:
        return assignments

    all_subgroups = []
    for chain, assignment in zip(chains, assignments):
        for sg in form_subgroups(chain, assignment, profiles):
            all_subgroups.append((chain, assignment, sg))
    all_subgroups.sort(key=lambda item: -item[2].cycles)

    free = {s.name: s.allocatable_cores for s in servers}
    for _chain, assignment, sg in all_subgroups:
        target = max(free, key=lambda name: free[name])
        free[target] -= 1
        for nid in sg.node_ids:
            assignment[nid] = NodeAssignment(Platform.SERVER, target)
    return assignments


def build_placement(
    chains: Sequence[NFChain],
    assignments: List[Dict[str, NodeAssignment]],
    topology: Topology,
    profiles: ProfileDatabase,
    packet_bits: int = DEFAULT_PACKET_BITS,
    core_policy: str = "lemur",
    compiler: Optional[PISACompiler] = None,
    check_stages: bool = True,
    strategy: str = "lemur",
) -> Placement:
    """Finish a pattern choice into a full (possibly infeasible) placement."""
    assignments = rebalance_servers(
        list(chains), [dict(a) for a in assignments], topology, profiles
    )

    chain_placements: List[ChainPlacement] = []
    for chain, assignment in zip(chains, assignments):
        subgroups = form_subgroups(chain, assignment, profiles)
        chain_placements.append(
            analyze_chain(chain, assignment, subgroups, topology, profiles,
                          packet_bits)
        )

    placement = Placement(chains=chain_placements, strategy=strategy)

    allocation = allocate_cores(
        chain_placements, topology, packet_bits, policy=core_policy
    )
    if not allocation.feasible:
        placement.infeasible_reason = allocation.reason
        return placement

    for cp in chain_placements:
        if cp.latency_us > cp.chain.slo.d_max:
            placement.infeasible_reason = (
                f"chain {cp.name}: latency {cp.latency_us:.1f} µs exceeds "
                f"d_max {cp.chain.slo.d_max:.1f} µs"
            )
            return placement

    if check_stages:
        reason, stages_used = switch_fit(chain_placements, topology, compiler)
        if reason is not None:
            placement.infeasible_reason = reason
            return placement
        if stages_used is not None:
            placement.switch_stages_used = stages_used

    solution = solve_rates(chain_placements, topology)
    if not solution.feasible:
        placement.infeasible_reason = solution.reason
        return placement

    placement.rates = solution.rates
    placement.objective_mbps = solution.objective_mbps
    placement.feasible = True
    return placement


def rescore_placement(
    decided: Placement,
    chains: Sequence[NFChain],
    topology: Topology,
    profiles: ProfileDatabase,
    packet_bits: int = DEFAULT_PACKET_BITS,
    strategy: Optional[str] = None,
) -> Placement:
    """Re-evaluate a decided placement under a different profile database.

    Keeps the pattern *and* core allocation fixed (they are the decisions
    under test) and recomputes estimates, SLO satisfaction, and the rate
    LP with ``profiles``. Used by the No-Profiling ablation (§5.3) and the
    profiling-error sensitivity experiment (§5.2): decisions made with
    wrong profiles are scored as the real testbed would.
    """
    from repro.core.rates import estimate_chain_rate

    rebuilt: List[ChainPlacement] = []
    for chain, decided_cp in zip(chains, decided.chains):
        subgroups = form_subgroups(chain, decided_cp.assignment, profiles)
        core_map = {sg.sg_id: sg.cores for sg in decided_cp.subgroups}
        for sg in subgroups:
            sg.cores = core_map.get(sg.sg_id, 1)
        rebuilt.append(
            analyze_chain(chain, decided_cp.assignment, subgroups,
                          topology, profiles, packet_bits)
        )

    out = Placement(chains=rebuilt, strategy=strategy or decided.strategy)
    for cp in rebuilt:
        if cp.estimated_rate + 1e-9 < cp.chain.slo.t_min:
            out.infeasible_reason = (
                f"chain {cp.name}: decided configuration achieves "
                f"{cp.estimated_rate:.0f} Mbps < t_min "
                f"{cp.chain.slo.t_min:.0f} Mbps under true profiles"
            )
            return out
        if cp.latency_us > cp.chain.slo.d_max:
            out.infeasible_reason = (
                f"chain {cp.name}: latency {cp.latency_us:.1f} µs > d_max"
            )
            return out
    solution = solve_rates(rebuilt, topology)
    out.feasible = solution.feasible
    out.rates = solution.rates
    out.objective_mbps = solution.objective_mbps
    out.infeasible_reason = solution.reason
    return out


def verify_switch_fit(
    chain_placements: Sequence[ChainPlacement],
    topology: Topology,
    compiler: Optional[PISACompiler] = None,
) -> Optional[str]:
    """Stage/table-order feasibility on the ToR. Returns a reason or None."""
    return switch_fit(chain_placements, topology, compiler)[0]


def switch_fit(
    chain_placements: Sequence[ChainPlacement],
    topology: Topology,
    compiler: Optional[PISACompiler] = None,
) -> Tuple[Optional[str], Optional[int]]:
    """Stage/table-order feasibility plus PISA stage usage, one compile.

    Returns ``(infeasibility reason or None, stage count or None)`` so
    callers that report stage usage (the incremental solve path) do not
    pay a second full pipeline compile after verification.
    """
    switch = topology.switch
    if switch.platform is Platform.PISA:
        compiler = compiler or PISACompiler(switch)  # type: ignore[arg-type]
        pairs = [
            (cp.chain.graph, cp.switch_node_ids()) for cp in chain_placements
        ]
        try:
            result = compiler.compile(pairs)
        except P4CompileError as exc:
            return f"P4 compilation rejected the placement: {exc}", None
        if not result.fits:
            return (
                f"pipeline needs {result.stage_count} stages "
                f"> {compiler.switch.num_stages} available"
            ), result.stage_count
        return None, result.stage_count
    if isinstance(switch, OpenFlowSwitchModel):
        used_vids = 0
        for cp in chain_placements:
            of_nodes = [
                nid for nid in cp.chain.graph.topological_order()
                if cp.assignment[nid].platform is Platform.OPENFLOW
            ]
            names = [cp.chain.graph.nodes[nid].nf_class for nid in of_nodes]
            if not switch.supports_order(names):
                return (
                    f"chain {cp.name}: OpenFlow fixed table order cannot "
                    f"execute {names}"
                ), None
            # each chain consumes one VLAN-encoded service path per bounce+1
            used_vids += cp.bounces + 1
        if used_vids >= 2 ** switch.vid_bits:
            return "VLAN vid space exhausted for SPI/SI encoding", None
        return None, None
    return None, None


def _stage_count(
    chain_placements: Sequence[ChainPlacement],
    topology: Topology,
    compiler: Optional[PISACompiler],
) -> Optional[int]:
    if topology.switch.platform is not Platform.PISA:
        return None
    compiler = compiler or PISACompiler(topology.switch)  # type: ignore[arg-type]
    pairs = [(cp.chain.graph, cp.switch_node_ids()) for cp in chain_placements]
    try:
        return compiler.compile(pairs).stage_count
    except P4CompileError:
        return None
