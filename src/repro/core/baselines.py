"""Alternative placement strategies the paper compares against (§5.1).

* **HW Preferred** — as many NFs as possible on the PISA switch
  (preferential hardware use, SilkRoad-style); spare cores spread evenly
  across chains.
* **SW Preferred** — every NF with a software implementation on commodity
  servers (kernel-bypass NFV, NetBricks-style); hardware only where no
  software version exists.
* **Minimum Bounce** — minimize switch↔server traversals (Kernighan-Lin
  partitioning à la E2); unwilling to add a bounce even when offloading an
  intermediate NF to P4 would free server cores.
* **Greedy** — HW Preferred's placement, but profile-driven core
  allocation: meet every chain's minimum rate first, then saturate chains
  to t_max sequentially by index.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.chain.graph import NFChain
from repro.core.patterns import (
    enumerate_patterns,
    preferred_assignment,
)
from repro.core.pipeline import build_placement
from repro.core.placement import NodeAssignment, Placement
from repro.core.rates import _count_excursions
from repro.exceptions import PlacementError
from repro.hw.platform import Platform
from repro.hw.topology import Topology
from repro.profiles.defaults import ProfileDatabase
from repro.units import DEFAULT_PACKET_BITS


def hw_preferred_place(
    chains: Sequence[NFChain],
    topology: Topology,
    profiles: ProfileDatabase,
    packet_bits: int = DEFAULT_PACKET_BITS,
) -> Placement:
    """Hardware-first placement with even core distribution."""
    assignments = [
        preferred_assignment(chain, topology, prefer="hw") for chain in chains
    ]
    return build_placement(
        chains, assignments, topology, profiles, packet_bits,
        core_policy="even", strategy="hw-preferred",
    )


def sw_preferred_place(
    chains: Sequence[NFChain],
    topology: Topology,
    profiles: ProfileDatabase,
    packet_bits: int = DEFAULT_PACKET_BITS,
) -> Placement:
    """Software-first placement (servers wherever a C++ NF exists)."""
    assignments = [
        preferred_assignment(chain, topology, prefer="sw") for chain in chains
    ]
    return build_placement(
        chains, assignments, topology, profiles, packet_bits,
        core_policy="lemur", strategy="sw-preferred",
    )


def greedy_place(
    chains: Sequence[NFChain],
    topology: Topology,
    profiles: ProfileDatabase,
    packet_bits: int = DEFAULT_PACKET_BITS,
) -> Placement:
    """HW-preferred pattern + SLO-aware sequential core allocation (§5.1).

    Greedy "uses hardware when possible and attempts to meet the minimum
    SLO using differential core allocation" but "starts with a HW Preferred
    placement instead of a full exploration", so it can run out of cores
    where Lemur would re-place NFs.
    """
    assignments = [
        preferred_assignment(chain, topology, prefer="hw") for chain in chains
    ]
    return build_placement(
        chains, assignments, topology, profiles, packet_bits,
        core_policy="by_index", strategy="greedy",
    )


def min_bounce_place(
    chains: Sequence[NFChain],
    topology: Topology,
    profiles: ProfileDatabase,
    packet_bits: int = DEFAULT_PACKET_BITS,
    pattern_limit: int = 50_000,
) -> Placement:
    """Bounce-minimizing placement (E2-style partitioning).

    Per chain, the pattern with the fewest switch↔server excursions wins;
    ties prefer more hardware NFs (the partitioner still offloads chain
    endpoints when free). Core allocation then follows Lemur's policy so
    the comparison isolates the placement decision.
    """
    assignments: List[Dict[str, NodeAssignment]] = []
    for chain in chains:
        best: Optional[Tuple[int, int, Dict[str, NodeAssignment]]] = None
        for pattern in enumerate_patterns(chain, topology, limit=pattern_limit):
            excursions = max(
                (
                    _count_excursions(lc.node_ids, pattern)
                    for lc in chain.graph.linearize()
                ),
                default=0,
            )
            hw_count = sum(
                1 for a in pattern.values()
                if a.platform in (Platform.PISA, Platform.OPENFLOW)
            )
            key = (excursions, -hw_count)
            if best is None or key < (best[0], best[1]):
                best = (excursions, -hw_count, pattern)
        if best is None:
            raise PlacementError(f"no pattern for chain {chain.name}")
        assignments.append(best[2])
    return build_placement(
        chains, assignments, topology, profiles, packet_bits,
        core_policy="lemur", strategy="min-bounce",
    )
