"""Subgroup formation and coalescing (§3.2).

Successive server-placed NFs coalesce into *run-to-completion subgroups*
(zero-copy, no scheduling overhead, no cross-core communication). Subgroups
containing a non-replicable NF (NAT, Limiter — Table 3's bold rows) or a
branch/merge node are never replicated across cores.

The heuristic's step 2 explores *coalescing across a switch NF*: moving an
intermediate PISA-placed NF back to the server can fuse the two surrounding
subgroups, freeing a core for other chains. Three rules are implemented:
strict, aggressive, and conservative (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chain.graph import NFChain, NFGraph
from repro.core.placement import ChainPlacement, NodeAssignment, Subgroup
from repro.hw.platform import Platform
from repro.profiles.defaults import (
    DEMUX_LB_CYCLES,
    NSH_ENCAP_DECAP_CYCLES,
    ProfileDatabase,
)


def form_subgroups(
    chain: NFChain,
    assignment: Dict[str, NodeAssignment],
    profiles: ProfileDatabase,
) -> List[Subgroup]:
    """Partition server-placed NFs into run-to-completion subgroups.

    Two server NFs share a subgroup iff they are adjacent in the chain, on
    the same server, and the edge between them is the only edge at both
    endpoints (no branch or merge splits a run-to-completion batch).
    Per-subgroup cost weights each member by the fraction of chain ingress
    traffic reaching it and adds the NSH encap/decap overhead once per
    subgroup (§5.3).
    """
    graph = chain.graph
    fractions = graph.node_fractions()
    order = graph.topological_order()
    server_ids = [
        nid for nid in order
        if assignment[nid].platform is Platform.SERVER
    ]
    component: Dict[str, int] = {}
    next_component = 0
    for nid in server_ids:
        preds = [
            p for p in graph.predecessors(nid)
            if p in component and assignment[p].device == assignment[nid].device
        ]
        joinable = (
            len(preds) == 1
            and len(graph.in_edges(nid)) == 1
            and len(graph.out_edges(preds[0])) == 1
        )
        if joinable:
            component[nid] = component[preds[0]]
        else:
            component[nid] = next_component
            next_component += 1

    members: Dict[int, List[str]] = {}
    for nid in server_ids:
        members.setdefault(component[nid], []).append(nid)

    subgroups: List[Subgroup] = []
    for comp_id in sorted(members):
        node_ids = members[comp_id]
        cycles = float(NSH_ENCAP_DECAP_CYCLES)
        replicable = True
        for nid in node_ids:
            node = graph.nodes[nid]
            cycles += fractions[nid] * profiles.server_cycles(
                node.nf_class, node.params
            )
            if not node.info.replicable:
                replicable = False
            if graph.is_branch_or_merge(nid):
                replicable = False
        subgroups.append(
            Subgroup(
                sg_id=f"{graph.name}/sg{comp_id}",
                chain_name=graph.name,
                server=assignment[node_ids[0]].device,
                node_ids=tuple(node_ids),
                cycles=cycles,
                replicable=replicable,
            )
        )
    return subgroups


def replication_overhead_cycles(subgroup: Subgroup) -> float:
    """Extra demux load-balancing cost once a subgroup is replicated (§5.3)."""
    return float(DEMUX_LB_CYCLES) if subgroup.cores > 1 else 0.0


# --------------------------------------------------------------------------
# Coalescing across switch NFs (heuristic step 2)
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class CoalesceCandidate:
    """A switch NF sandwiched between two server subgroups (linearly)."""

    switch_node: str
    before_sg: str
    after_sg: str


def find_coalesce_candidates(
    chain: NFChain,
    assignment: Dict[str, NodeAssignment],
    subgroups: Sequence[Subgroup],
) -> List[CoalesceCandidate]:
    """Switch NFs whose offload to the server would fuse two subgroups.

    The pattern is ``{...A} -> C -> {B...}`` where C is on the PISA switch,
    its sole predecessor ends one server subgroup, and its sole successor
    starts another on the same server.
    """
    graph = chain.graph
    sg_of: Dict[str, Subgroup] = {}
    for sg in subgroups:
        for nid in sg.node_ids:
            sg_of[nid] = sg

    candidates: List[CoalesceCandidate] = []
    for nid, assign in assignment.items():
        if assign.platform is not Platform.PISA:
            continue
        if graph.is_branch_or_merge(nid):
            continue
        preds = graph.predecessors(nid)
        succs = graph.successors(nid)
        if len(preds) != 1 or len(succs) != 1:
            continue
        pred_sg = sg_of.get(preds[0])
        succ_sg = sg_of.get(succs[0])
        if pred_sg is None or succ_sg is None or pred_sg is succ_sg:
            continue
        if pred_sg.server != succ_sg.server:
            continue
        # the boundary nodes must not themselves branch/merge
        if len(graph.out_edges(preds[0])) != 1 or len(graph.in_edges(succs[0])) != 1:
            continue
        candidates.append(
            CoalesceCandidate(
                switch_node=nid,
                before_sg=pred_sg.sg_id,
                after_sg=succ_sg.sg_id,
            )
        )
    return candidates


def coalesced_cycles(
    chain: NFChain,
    candidate: CoalesceCandidate,
    subgroups: Sequence[Subgroup],
    profiles: ProfileDatabase,
) -> float:
    """Per-ingress-packet cycles of the fused subgroup (A + C + B).

    One NSH boundary overhead disappears (two subgroups become one).
    """
    fractions = chain.graph.node_fractions()
    before = _sg_by_id(subgroups, candidate.before_sg)
    after = _sg_by_id(subgroups, candidate.after_sg)
    node = chain.graph.nodes[candidate.switch_node]
    moved = fractions[candidate.switch_node] * profiles.server_cycles(
        node.nf_class, node.params
    )
    return before.cycles + after.cycles + moved - NSH_ENCAP_DECAP_CYCLES


def evaluate_coalesce(
    chain: NFChain,
    candidate: CoalesceCandidate,
    subgroups: Sequence[Subgroup],
    profiles: ProfileDatabase,
    freq_hz: float,
    packet_bits: int,
    rule: str,
    current_bottleneck_mbps: float,
) -> bool:
    """Should this candidate be coalesced under ``rule``?

    * ``strict`` — the fused subgroup on 2 cores beats 1+1 cores on the
      separate subgroups (and the fused subgroup must be replicable).
    * ``aggressive`` — fuse whenever a single core still satisfies t_min
      (may backfire; frees the most cores).
    * ``conservative`` — fuse only if a single fused core does not lower
      the chain's current bottleneck rate.
    """
    before = _sg_by_id(subgroups, candidate.before_sg)
    after = _sg_by_id(subgroups, candidate.after_sg)
    fused_cycles = coalesced_cycles(chain, candidate, subgroups, profiles)
    to_mbps = lambda cores, cycles: cores * freq_hz / cycles * packet_bits / 1e6

    fused_replicable = (
        before.replicable
        and after.replicable
        and chain.graph.nodes[candidate.switch_node].info.replicable
    )

    if rule == "strict":
        if not fused_replicable:
            return False
        separate = min(to_mbps(1, before.cycles), to_mbps(1, after.cycles))
        return to_mbps(2, fused_cycles) > separate
    if rule == "aggressive":
        return to_mbps(1, fused_cycles) >= chain.slo.t_min
    if rule == "conservative":
        return to_mbps(1, fused_cycles) >= current_bottleneck_mbps
    raise ValueError(f"unknown coalescing rule {rule!r}")


def apply_coalesce(
    chain: NFChain,
    candidate: CoalesceCandidate,
    assignment: Dict[str, NodeAssignment],
    profiles: ProfileDatabase,
) -> Tuple[Dict[str, NodeAssignment], List[Subgroup]]:
    """Move the switch NF to the server and re-form subgroups."""
    before_server = None
    for sg_node in chain.graph.predecessors(candidate.switch_node):
        before_server = assignment[sg_node].device
    new_assignment = dict(assignment)
    new_assignment[candidate.switch_node] = NodeAssignment(
        platform=Platform.SERVER, device=before_server or "server0"
    )
    return new_assignment, form_subgroups(chain, new_assignment, profiles)


def _sg_by_id(subgroups: Sequence[Subgroup], sg_id: str) -> Subgroup:
    for sg in subgroups:
        if sg.sg_id == sg_id:
            return sg
    raise KeyError(sg_id)
