"""Lemur's fast placement heuristic (§3.2 "A Fast, Scalable Heuristic").

Three steps:

1. **Check stage constraints.** Greedily place every NF with a hardware
   implementation on the PISA switch; while the unified pipeline exceeds
   the stage budget, move the *lowest cycle-cost* switch NF to the server
   (a cheap NF is easiest to absorb in software while hardware line-rate is
   preserved for expensive ones). The result is the *baseline placement*;
   later steps only ever remove NFs from the switch, so the stage
   constraint stays satisfied.

2. **Coalesce sub-groups.** Offloading an intermediate switch NF can fuse
   the server subgroups around it, freeing cores. Three placements emerge:
   the baseline, an *aggressive* one (strict + aggressive rules) and a
   *conservative* one (strict + conservative rules).

3. **Maximize marginal throughputs.** For each candidate, allocate cores,
   solve the link-constrained LP, and keep the feasible placement with the
   highest aggregate marginal throughput.

When chains carry delay SLOs, a bounce-minimizing variant is added to the
candidate set, letting the heuristic trade throughput for latency (§5.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.chain.graph import NFChain
from repro.core.patterns import node_options, preferred_assignment
from repro.core.pipeline import build_placement
from repro.core.placement import NodeAssignment, Placement
from repro.core.rates import estimate_chain_rate
from repro.core.subgroups import (
    apply_coalesce,
    evaluate_coalesce,
    find_coalesce_candidates,
    form_subgroups,
)
from repro.exceptions import P4CompileError
from repro.hw.platform import Platform
from repro.hw.topology import Topology
from repro.obs import get_registry
from repro.p4c.compiler import ContextCompiler, PISACompiler
from repro.profiles.defaults import ProfileDatabase
from repro.units import DEFAULT_PACKET_BITS

Assignments = List[Dict[str, NodeAssignment]]


def heuristic_place(
    chains: Sequence[NFChain],
    topology: Topology,
    profiles: ProfileDatabase,
    packet_bits: int = DEFAULT_PACKET_BITS,
    core_policy: str = "lemur",
    strategy_name: str = "lemur",
    context_pairs: Optional[Sequence] = None,
) -> Placement:
    """Run the full three-step heuristic and return the best placement.

    Each heuristic stage (stage-constraint baseline, the coalescing
    variants, candidate evaluation) is timed into the observability
    registry under ``placer.stage.seconds{stage=...}`` so `repro stats`
    and the §5.3 scaling benchmarks can see where placement time goes.

    ``context_pairs`` — (graph, switch-node-ids) pairs of chains already
    compiled onto the switch — makes every stage check compile against
    that pinned program, for incremental solves where switch stages are
    shared with chains this call is not placing.
    """
    chains = list(chains)
    compiler = _compiler_for(topology)
    if compiler is not None and context_pairs:
        compiler = ContextCompiler(compiler.switch, context_pairs)
    registry = get_registry()

    with registry.timer("placer.stage.seconds", stage="stage_constraints"):
        baseline = _stage_constrained_baseline(
            chains, topology, profiles, compiler
        )
    candidates: List[Tuple[str, Assignments]] = [("baseline", baseline)]
    with registry.timer("placer.stage.seconds", stage="coalesce_aggressive"):
        candidates.append((
            "aggressive",
            _coalesce_all(chains, baseline, topology, profiles, packet_bits,
                          rules=("strict", "aggressive")),
        ))
    with registry.timer("placer.stage.seconds", stage="coalesce_conservative"):
        candidates.append((
            "conservative",
            _coalesce_all(chains, baseline, topology, profiles, packet_bits,
                          rules=("strict", "conservative")),
        ))
    if any(cp.slo.d_max != float("inf") for cp in chains):
        with registry.timer("placer.stage.seconds", stage="min_bounce"):
            candidates.append((
                "min-bounce-variant",
                _bounce_reducing_variant(chains, baseline, topology,
                                         profiles),
            ))

    best: Optional[Placement] = None
    evaluated: set = set()
    for label, assignments in candidates:
        key = tuple(
            tuple(sorted((nid, a.platform, a.device) for nid, a in per.items()))
            for per in assignments
        )
        if key in evaluated:
            # coalescing produced the same assignment as an earlier
            # candidate (common for small deltas) — the evaluation, its
            # P4 compile and its rate LP would be identical, so skip it.
            registry.counter("placer.candidates", label=f"{label}_dup").inc()
            continue
        evaluated.add(key)
        with registry.timer("placer.stage.seconds",
                            stage=f"evaluate_{label}"):
            placement = build_placement(
                chains, assignments, topology, profiles, packet_bits,
                core_policy=core_policy, compiler=compiler,
                strategy=strategy_name,
            )
        registry.counter("placer.candidates", label=label).inc()
        if placement.feasible and (
            best is None or placement.objective_mbps > best.objective_mbps + 1e-9
        ):
            best = placement
        elif best is None:
            best = placement  # keep an infeasible one for its reason
    assert best is not None
    return best


# -- step 1 -------------------------------------------------------------------

def _stage_constrained_baseline(
    chains: Sequence[NFChain],
    topology: Topology,
    profiles: ProfileDatabase,
    compiler: Optional[PISACompiler],
) -> Assignments:
    """Greedy hardware placement, then evict cheap NFs until stages fit."""
    assignments: Assignments = [
        preferred_assignment(chain, topology, prefer="hw") for chain in chains
    ]
    if compiler is None:
        return assignments

    while True:
        pairs = [
            (chain.graph,
             {nid for nid, a in assignment.items()
              if a.platform is Platform.PISA})
            for chain, assignment in zip(chains, assignments)
        ]
        try:
            if compiler.compile(pairs).fits:
                return assignments
        except P4CompileError:
            pass  # parser conflict etc.: keep evicting

        evicted = _evict_cheapest_switch_nf(
            chains, assignments, topology, profiles
        )
        if not evicted:
            # nothing left to move: return the all-soft placement; the
            # stage check downstream will report the (now unlikely) misfit
            return assignments


def _evict_cheapest_switch_nf(
    chains: Sequence[NFChain],
    assignments: Assignments,
    topology: Topology,
    profiles: ProfileDatabase,
) -> bool:
    """Move the lowest server-cycle-cost switch NF to a software option."""
    best: Optional[Tuple[float, int, str, NodeAssignment]] = None
    for index, (chain, assignment) in enumerate(zip(chains, assignments)):
        for nid, assign in assignment.items():
            if assign.platform is not Platform.PISA:
                continue
            node = chain.graph.nodes[nid]
            fallback = _software_option(chain, nid, topology)
            if fallback is None:
                continue
            cost = profiles.server_cycles(node.nf_class, node.params)
            if best is None or cost < best[0]:
                best = (cost, index, nid, fallback)
    if best is None:
        return False
    _cost, index, nid, fallback = best
    assignments[index][nid] = fallback
    return True


def _software_option(
    chain: NFChain, node_id: str, topology: Topology
) -> Optional[NodeAssignment]:
    for option in node_options(chain, node_id, topology):
        if option.platform in (Platform.SERVER, Platform.SMARTNIC):
            return option
    return None


# -- step 2 -------------------------------------------------------------------

def _coalesce_all(
    chains: Sequence[NFChain],
    baseline: Assignments,
    topology: Topology,
    profiles: ProfileDatabase,
    packet_bits: int,
    rules: Tuple[str, ...],
) -> Assignments:
    """Apply the coalescing rules per chain until fixpoint."""
    out: Assignments = []
    freq_hz = topology.servers[0].freq_hz if topology.servers else 1.7e9
    for chain, assignment in zip(chains, baseline):
        assignment = dict(assignment)
        changed = True
        while changed:
            changed = False
            subgroups = form_subgroups(chain, assignment, profiles)
            from repro.core.rates import analyze_chain  # local to avoid cycle
            cp = analyze_chain(chain, assignment, subgroups, topology,
                               profiles, packet_bits)
            bottleneck = cp.estimated_rate
            for candidate in find_coalesce_candidates(chain, assignment,
                                                      subgroups):
                if any(
                    evaluate_coalesce(
                        chain, candidate, subgroups, profiles, freq_hz,
                        packet_bits, rule, bottleneck,
                    )
                    for rule in rules
                ):
                    assignment, subgroups = apply_coalesce(
                        chain, candidate, assignment, profiles
                    )
                    changed = True
                    break
        out.append(assignment)
    return out


# -- latency-driven variant ----------------------------------------------------

def _bounce_reducing_variant(
    chains: Sequence[NFChain],
    baseline: Assignments,
    topology: Topology,
    profiles: ProfileDatabase,
) -> Assignments:
    """Fold switch NFs into the server until each path has one bounce.

    Used when delay SLOs are present: fewer switch↔server excursions
    directly reduce chain latency at the cost of server cycles (§5.3:
    "Lemur is forced to reduce the number of bounces"). Along every
    linearized path, all movable switch NFs strictly between the path's
    first and last server NF move to the server; NFs with no software
    implementation (e.g. IPv4Fwd) stay put.
    """
    out: Assignments = []
    for chain, assignment in zip(chains, baseline):
        assignment = dict(assignment)
        for linear in chain.graph.linearize():
            server_positions = [
                index for index, nid in enumerate(linear.node_ids)
                if assignment[nid].platform is Platform.SERVER
            ]
            if len(server_positions) < 2:
                continue
            first, last = server_positions[0], server_positions[-1]
            for nid in linear.node_ids[first + 1:last]:
                if assignment[nid].platform is not Platform.PISA:
                    continue
                fallback = _software_option(chain, nid, topology)
                if fallback is not None and fallback.platform is Platform.SERVER:
                    assignment[nid] = fallback
        out.append(assignment)
    return out


def _compiler_for(topology: Topology) -> Optional[PISACompiler]:
    if topology.switch.platform is Platform.PISA:
        return PISACompiler(topology.switch)  # type: ignore[arg-type]
    return None
