"""The Placer (§3): SLO-satisfying NF placement across heterogeneous hardware.

Given NF chains with SLOs and a rack topology, the Placer decides, for every
NF, whether it runs on the PISA switch, a SmartNIC, an OpenFlow switch, or a
server (and with how many cores), such that each chain receives its minimum
rate and aggregate *marginal* throughput is maximized.

Public entry points:

* :class:`repro.core.placer.Placer` — the top-level API (heuristic by
  default, matching the paper);
* :func:`repro.core.bruteforce.brute_force_place` — the Optimal baseline;
* :mod:`repro.core.baselines` — HW Preferred, SW Preferred, Minimum Bounce,
  Greedy;
* :mod:`repro.core.ablations` — No Profiling / No Core Allocation variants;
* :mod:`repro.core.milp` — the MILP formulation (conservative stage model).
"""

from repro.core.placement import (
    ChainPlacement,
    NodeAssignment,
    Placement,
    Subgroup,
)
from repro.core.cache import (
    PlacementCache,
    get_cache,
    placement_fingerprint,
    scoped_cache,
    set_cache,
)
from repro.core.placer import (
    Placer,
    PlacerConfig,
    PlacementReport,
    PlacementRequest,
)
from repro.core.bruteforce import brute_force_place
from repro.core.heuristic import heuristic_place
from repro.core.baselines import (
    greedy_place,
    hw_preferred_place,
    min_bounce_place,
    sw_preferred_place,
)

__all__ = [
    "NodeAssignment",
    "Subgroup",
    "ChainPlacement",
    "Placement",
    "Placer",
    "PlacerConfig",
    "PlacementRequest",
    "PlacementReport",
    "PlacementCache",
    "placement_fingerprint",
    "get_cache",
    "set_cache",
    "scoped_cache",
    "brute_force_place",
    "heuristic_place",
    "hw_preferred_place",
    "sw_preferred_place",
    "min_bounce_place",
    "greedy_place",
]
