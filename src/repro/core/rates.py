"""Chain throughput estimation and link-load analysis (§3.2).

The estimated rate of a chain is the minimum over its server subgroups and
SmartNIC NFs (the PISA/OpenFlow switch processes at line rate). Subgroup
rates scale with allocated cores; replicated subgroups pay the demux
load-balancing overhead (§5.3). Branches are handled by weighting each NF's
cost with the fraction of chain ingress traffic reaching it — equivalent to
the paper's decompose-into-linear-chains-and-merge-estimates procedure under
operator-provided split ratios.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.chain.graph import NFChain
from repro.core.placement import ChainPlacement, NodeAssignment, Subgroup
from repro.hw.platform import Platform
from repro.hw.topology import Topology
from repro.profiles.defaults import (
    DEMUX_LB_CYCLES,
    NSH_ENCAP_DECAP_CYCLES,
    ProfileDatabase,
)
from repro.units import DEFAULT_PACKET_BITS

#: One-way switch transit time (µs): parse + pipeline + serialize.
SWITCH_TRANSIT_US = 1.0


def subgroup_rate_mbps(
    subgroup: Subgroup,
    freq_hz: float,
    packet_bits: int = DEFAULT_PACKET_BITS,
    demux_penalty: bool = True,
) -> float:
    """Max chain-ingress rate a subgroup supports with its core count.

    Replicated subgroups (cores > 1) pay the demultiplexer's per-packet
    load-balancing cycles (§5.3, ~180 cycles) on top of their own cost —
    unless Metron-style ToR steering removes the software demux
    (``demux_penalty=False``).
    """
    cycles = subgroup.cycles
    if subgroup.cores > 1 and demux_penalty:
        cycles += DEMUX_LB_CYCLES
    pps = subgroup.cores * freq_hz / cycles
    return pps * packet_bits / 1e6


def estimate_chain_rate(
    placement: ChainPlacement,
    topology: Topology,
    packet_bits: int = DEFAULT_PACKET_BITS,
) -> float:
    """Estimated chain rate = min over subgroup and SmartNIC caps (§3.2)."""
    limits: List[float] = []
    for sg in placement.subgroups:
        server = topology.server(sg.server)
        limits.append(subgroup_rate_mbps(
            sg, server.freq_hz, packet_bits,
            demux_penalty=not topology.metron_steering,
        ))
    limits.extend(placement.nic_caps.values())
    # the chain ingresses through one switch port
    switch_rate = getattr(topology.switch, "port_rate_mbps", None)
    if switch_rate:
        limits.append(switch_rate)
    return min(limits) if limits else float(switch_rate or 0.0)


def server_offered_load(
    placements: Sequence[ChainPlacement],
    rates: Dict[str, float],
    server_name: str,
) -> float:
    """Aggregate rate (Mbps) the chains push through one server's NIC.

    Each chain contributes its assigned rate weighted by its per-server
    NIC traversal multiplicity — the same quantity the rate LP's capacity
    rows use. The SLO guard compares this against degraded link capacity
    to size deterministic shortfall drops.
    """
    return sum(
        cp.server_visits.get(server_name, 0.0) * rates.get(cp.name, 0.0)
        for cp in placements
    )


def device_utilization(
    placements: Sequence[ChainPlacement],
    rates: Dict[str, float],
    topology: Topology,
    packet_bits: int = DEFAULT_PACKET_BITS,
) -> Dict[str, float]:
    """Per-device compute utilization at the assigned rates.

    For a server, utilization is demanded cycles per second (each chain's
    packet rate times its subgroups' per-packet cycles, demux penalty
    included) over the cycles its *allocated* cores supply — a subgroup
    running alone at its estimated max rate lands at exactly 1.0. For a
    SmartNIC it is the sum of assigned rate over the per-chain NIC cap.
    Deterministic: derived purely from the placement and the LP's rates,
    never from wall clock. This is the ``rho`` the queueing-aware delay
    model (:class:`repro.sim.measurement.QueueingModel`) turns into a
    per-device wait factor.
    """
    demand: Dict[str, float] = {}
    supply: Dict[str, float] = {}
    nic_util: Dict[str, float] = {}
    for cp in placements:
        rate = rates.get(cp.name, 0.0)
        if rate < 0:
            rate = 0.0
        pps = rate * 1e6 / packet_bits
        for sg in cp.subgroups:
            server = topology.server(sg.server)
            cycles = sg.cycles
            if sg.cores > 1 and not topology.metron_steering:
                cycles += DEMUX_LB_CYCLES
            demand[sg.server] = demand.get(sg.server, 0.0) + pps * cycles
            supply[sg.server] = (
                supply.get(sg.server, 0.0) + sg.cores * server.freq_hz
            )
        for device, cap in cp.nic_caps.items():
            if cap > 0:
                nic_util[device] = nic_util.get(device, 0.0) + rate / cap
    utilization = {
        server: (demand[server] / supply[server]) if supply[server] else 0.0
        for server in demand
    }
    utilization.update(nic_util)
    return utilization


def chain_tail_latency_us(
    cp: ChainPlacement,
    topology: Topology,
    profiles: ProfileDatabase,
    queue_factors: Dict[str, float],
) -> float:
    """Worst-path latency with per-device queueing wait factored in.

    Scales each device-executed component of the fixed-cost model by
    ``1 + factor`` (factor = rho/(1-rho) under M/M/1), mirroring what the
    deployed rack stamps per packet — the placer's tail-SLO admission
    check compares this against ``d_max``.
    """
    worst = 0.0
    for linear in cp.chain.graph.linearize():
        excursions = _count_excursions(linear.node_ids, cp.assignment)
        latency = _path_latency_us(
            cp.chain, linear.node_ids, cp.assignment, cp.subgroups,
            topology, profiles, excursions, queue_factors=queue_factors,
        )
        worst = max(worst, latency)
    return worst


def server_core_usage(
    placements: Sequence[ChainPlacement],
) -> Dict[str, int]:
    """Server name -> cores consumed by these chains' subgroups.

    The Placer's incremental path reserves this much capacity while the
    delta chains are placed, so pinned chains keep their cores.
    """
    usage: Dict[str, int] = {}
    for cp in placements:
        for server, cores in cp.cores_used().items():
            usage[server] = usage.get(server, 0) + cores
    return usage


def analyze_chain(
    chain: NFChain,
    assignment: Dict[str, NodeAssignment],
    subgroups: Sequence[Subgroup],
    topology: Topology,
    profiles: ProfileDatabase,
    packet_bits: int = DEFAULT_PACKET_BITS,
) -> ChainPlacement:
    """Derive all placement-dependent quantities for one chain.

    Computes SmartNIC rate caps, per-server NIC traversal multiplicities
    (for the link-capacity LP), bounce counts, and worst-path latency; the
    estimated rate is filled in from the current core allocation.
    """
    graph = chain.graph
    fractions = graph.node_fractions()

    cp = ChainPlacement(
        chain=chain,
        assignment=dict(assignment),
        subgroups=list(subgroups),
    )

    # -- SmartNIC caps ------------------------------------------------------
    nic_load: Dict[str, float] = {}
    for nid, assign in assignment.items():
        if assign.platform is not Platform.SMARTNIC:
            continue
        node = graph.nodes[nid]
        nic_cycles = profiles.nic_cycles(node.nf_class)
        if nic_cycles is None:
            continue
        nic_load[assign.device] = nic_load.get(assign.device, 0.0) + (
            fractions[nid] * nic_cycles
        )
    for device, cycles in nic_load.items():
        nic = topology.smartnic(device)
        pps = nic.engines * nic.freq_hz / cycles
        cp.nic_caps[device] = min(pps * packet_bits / 1e6, nic.rate_mbps)

    # -- per-server NIC traversal multiplicity --------------------------------
    visits: Dict[str, float] = {}
    for entry in graph.entry_nodes():
        assign = assignment[entry]
        if assign.platform is Platform.SERVER:
            visits[assign.device] = visits.get(assign.device, 0.0) + 1.0
    for edge in graph.edges:
        dst_assign = assignment[edge.dst]
        if dst_assign.platform is not Platform.SERVER:
            continue
        src_assign = assignment[edge.src]
        if (src_assign.platform is Platform.SERVER
                and src_assign.device == dst_assign.device):
            continue
        weight = fractions[edge.src] * edge.fraction
        visits[dst_assign.device] = visits.get(dst_assign.device, 0.0) + weight
    cp.server_visits = visits

    # -- bounces & latency over linear decomposition --------------------------
    cp.bounces = 0
    worst_latency = 0.0
    for linear in graph.linearize():
        excursions = _count_excursions(linear.node_ids, assignment)
        latency = _path_latency_us(
            chain, linear.node_ids, assignment, subgroups, topology, profiles,
            excursions,
        )
        cp.bounces = max(cp.bounces, excursions)
        worst_latency = max(worst_latency, latency)
    cp.latency_us = worst_latency

    cp.estimated_rate = estimate_chain_rate(cp, topology, packet_bits)
    return cp


def _count_excursions(
    node_ids: Sequence[str],
    assignment: Dict[str, NodeAssignment],
) -> int:
    """Contiguous off-switch segments along a path (each is one bounce).

    Traffic enters and leaves the ISP at the ToR (§4.1), so a path that
    starts or ends off-switch still implies a switch transit on both sides.
    """
    excursions = 0
    on_switch_prev = True
    for nid in node_ids:
        platform = assignment[nid].platform
        off_switch = platform in (Platform.SERVER, Platform.SMARTNIC)
        if off_switch and on_switch_prev:
            excursions += 1
        on_switch_prev = not off_switch
    return excursions


def _path_latency_us(
    chain: NFChain,
    node_ids: Sequence[str],
    assignment: Dict[str, NodeAssignment],
    subgroups: Sequence[Subgroup],
    topology: Topology,
    profiles: ProfileDatabase,
    excursions: int,
    queue_factors: Optional[Dict[str, float]] = None,
) -> float:
    """Worst-case one-packet latency along a path (§5.3 latency model).

    Propagation/transmission/queueing is charged per bounce; NF execution
    is cycles/f for server and SmartNIC NFs; switch NFs ride the pipeline's
    fixed transit. NSH encap/decap cycles are charged once per subgroup
    crossed (§5.3 overheads). ``queue_factors`` (device -> rho/(1-rho))
    additionally scales every device-executed component by ``1 + factor``,
    yielding the queueing-aware estimate.
    """
    factors = queue_factors or {}
    latency = excursions * topology.bounce_rtt_us
    switch_passes = excursions + 1
    latency += switch_passes * SWITCH_TRANSIT_US

    crossed_subgroups = set()
    for nid in node_ids:
        assign = assignment[nid]
        node = chain.graph.nodes[nid]
        if assign.platform is Platform.SERVER:
            server = topology.server(assign.device)
            cycles = profiles.server_cycles(node.nf_class, node.params)
            latency += (cycles / server.freq_hz * 1e6
                        * (1.0 + factors.get(assign.device, 0.0)))
            for sg in subgroups:
                if nid in sg.node_ids:
                    crossed_subgroups.add(sg.sg_id)
        elif assign.platform is Platform.SMARTNIC:
            nic = topology.smartnic(assign.device)
            nic_cycles = profiles.nic_cycles(node.nf_class) or 0.0
            latency += (nic_cycles / nic.freq_hz * 1e6
                        * (1.0 + factors.get(assign.device, 0.0)))
    for sg in subgroups:
        if sg.sg_id in crossed_subgroups:
            server = topology.server(sg.server)
            latency += (NSH_ENCAP_DECAP_CYCLES / server.freq_hz * 1e6
                        * (1.0 + factors.get(sg.server, 0.0)))
    return latency
