"""Lemur component ablations (§5.3, Figure 2f).

* **No Profiling** — every NF is assumed to cost the same cycles, so the
  Placer cannot distinguish expensive from cheap NFs; cores are wasted on
  cheap subgroups and the variant goes infeasible at high δ.
* **No Core Allocation** — no subgroup ever receives an extra core, so
  SLOs are only satisfiable while one core per subgroup suffices.
"""

from __future__ import annotations

from typing import Sequence

from repro.chain.graph import NFChain
from repro.core.heuristic import heuristic_place
from repro.core.pipeline import rescore_placement
from repro.core.placement import Placement
from repro.hw.topology import Topology
from repro.profiles.defaults import ProfileDatabase
from repro.units import DEFAULT_PACKET_BITS


def no_profiling_place(
    chains: Sequence[NFChain],
    topology: Topology,
    profiles: ProfileDatabase,
    packet_bits: int = DEFAULT_PACKET_BITS,
    uniform_cycles: float = 5000.0,
) -> Placement:
    """Lemur's heuristic driven by a flat profile database.

    Placement and core-allocation *decisions* use uniform costs; the
    decided configuration is then re-scored with the true profiles (as the
    real testbed would), so reported rates and feasibility reflect what
    the variant actually achieves.
    """
    flat = profiles.uniform(uniform_cycles)
    decided = heuristic_place(
        chains, topology, flat, packet_bits,
        strategy_name="no-profiling",
    )
    if not decided.feasible:
        return decided
    return rescore_placement(
        decided, chains, topology, profiles, packet_bits,
        strategy="no-profiling",
    )


def no_core_allocation_place(
    chains: Sequence[NFChain],
    topology: Topology,
    profiles: ProfileDatabase,
    packet_bits: int = DEFAULT_PACKET_BITS,
) -> Placement:
    """Lemur's heuristic with subgroup scaling disabled (1 core each)."""
    return heuristic_place(
        chains, topology, profiles, packet_bits,
        core_policy="none", strategy_name="no-core-allocation",
    )
