"""Rate-assignment LP (§3.2 "Finding Maximum Marginal Throughput").

Given per-chain estimated rates and per-server NIC traversal
multiplicities, assign each chain a rate r_i maximizing aggregate marginal
throughput Σ(r_i − t_min_i) subject to:

* t_min_i ≤ r_i ≤ min(t_max_i, estimated_i, ToR port rate);
* for every server NIC and direction: Σ_i visits_{i,S} · r_i ≤ capacity_S
  — each switch↔server bounce of chain i consumes NIC bandwidth once per
  direction, which is how the LP accounts for the cost of bounces.

Solved with scipy's HiGHS backend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy.optimize import linprog

from repro.core.placement import ChainPlacement
from repro.hw.topology import Topology
from repro.obs import get_registry
from repro.profiles.defaults import DEMUX_LB_CYCLES
from repro.units import DEFAULT_PACKET_BITS


def _record_solve(objective: str, result) -> None:
    """Count one LP solve and its simplex/IPM iterations in the registry."""
    registry = get_registry()
    registry.counter("lp.solves", objective=objective).inc()
    iterations = getattr(result, "nit", 0) or 0
    registry.counter("lp.iterations", objective=objective).inc(
        int(iterations)
    )


@dataclass
class RateSolution:
    """LP outcome: per-chain rates + aggregate marginal objective."""

    rates: Dict[str, float] = field(default_factory=dict)
    feasible: bool = False
    objective_mbps: float = 0.0
    reason: Optional[str] = None


def _utilization_rows(
    placements: Sequence[ChainPlacement],
    topology: Topology,
    utilization_cap: float,
    packet_bits: int,
) -> tuple:
    """Linear rows capping per-device compute utilization (tail latency).

    For each server: Σ_i cycles_{i,S} · r_i ≤ cap · cores_S · f_S ·
    packet_bits / 1e6 (both sides divided by the pps-per-Mbps constant),
    where cycles_{i,S} sums chain i's subgroup costs on S (demux penalty
    included) and cores_S counts the cores those subgroups allocated.
    For each SmartNIC: Σ_i r_i / cap_i ≤ cap. Bounding ρ at
    ``utilization_cap`` bounds the M/M/1 wait factor ρ/(1−ρ), which is
    how the ``tail_latency`` placement objective trades marginal
    throughput for tail latency.
    """
    n = len(placements)
    server_coeffs: Dict[str, np.ndarray] = {}
    server_supply: Dict[str, float] = {}
    nic_coeffs: Dict[str, np.ndarray] = {}
    for index, cp in enumerate(placements):
        for sg in cp.subgroups:
            server = topology.server(sg.server)
            cycles = sg.cycles
            if sg.cores > 1 and not topology.metron_steering:
                cycles += DEMUX_LB_CYCLES
            coeffs = server_coeffs.setdefault(sg.server, np.zeros(n))
            coeffs[index] += cycles
            server_supply[sg.server] = (
                server_supply.get(sg.server, 0.0)
                + sg.cores * server.freq_hz
            )
        for device, nic_cap in cp.nic_caps.items():
            if nic_cap > 0:
                coeffs = nic_coeffs.setdefault(device, np.zeros(n))
                coeffs[index] += 1.0 / nic_cap
    rows: List[np.ndarray] = []
    caps: List[float] = []
    for name in sorted(server_coeffs):
        rows.append(server_coeffs[name])
        caps.append(
            utilization_cap * server_supply[name] * packet_bits / 1e6
        )
    for name in sorted(nic_coeffs):
        rows.append(nic_coeffs[name])
        caps.append(utilization_cap)
    return rows, caps


def solve_rates(
    placements: Sequence[ChainPlacement],
    topology: Topology,
    objective: str = "marginal",
    utilization_cap: Optional[float] = None,
    packet_bits: int = DEFAULT_PACKET_BITS,
) -> RateSolution:
    """Assign per-chain rates.

    ``objective`` selects the allocation policy:

    * ``marginal`` (default, the paper's) — maximize Σ(r_i − t_min_i);
    * ``max_min`` — lexicographic max-min fairness on marginal rates
      (footnote 2 of the paper leaves fair allocation to future work;
      this implements it via iterative LP water-filling).

    ``utilization_cap`` (the ``tail_latency`` placement objective)
    appends per-device compute-utilization rows so no placed core runs
    hotter than the cap — bounding the queueing wait at the cost of
    burst headroom. Chains whose t_min floors alone exceed the cap make
    the LP infeasible, which admission reports as the binding reason.
    """
    if objective == "max_min":
        return solve_rates_max_min(
            placements, topology,
            utilization_cap=utilization_cap, packet_bits=packet_bits,
        )
    if objective != "marginal":
        raise ValueError(f"unknown rate objective {objective!r}")
    if not placements:
        return RateSolution(feasible=True)

    n = len(placements)
    lower = np.zeros(n)
    upper = np.zeros(n)
    port_rate = getattr(topology.switch, "port_rate_mbps", math.inf)

    for i, cp in enumerate(placements):
        slo = cp.chain.slo
        lower[i] = slo.t_min
        cap = min(cp.estimated_rate, port_rate)
        if not math.isinf(slo.t_max):
            cap = min(cap, slo.t_max)
        upper[i] = cap
        if upper[i] + 1e-9 < lower[i]:
            return RateSolution(
                feasible=False,
                reason=(
                    f"chain {cp.name}: estimated rate "
                    f"{cp.estimated_rate:.0f} Mbps < t_min {slo.t_min:.0f} Mbps"
                ),
            )

    # NIC capacity rows: one per (server, NIC). Traffic enters and exits a
    # server the same number of times, so one row covers both directions.
    rows: List[np.ndarray] = []
    caps: List[float] = []
    for server in topology.servers:
        if server.name in topology.failed_devices:
            continue
        coeffs = np.array(
            [cp.server_visits.get(server.name, 0.0) for cp in placements]
        )
        if coeffs.any():
            rows.append(coeffs)
            caps.append(server.primary_nic().rate_mbps)

    if utilization_cap is not None:
        extra_rows, extra_caps = _utilization_rows(
            placements, topology, utilization_cap, packet_bits,
        )
        rows.extend(extra_rows)
        caps.extend(extra_caps)

    a_ub = np.vstack(rows) if rows else None
    b_ub = np.array(caps) if rows else None

    result = linprog(
        c=-np.ones(n),  # maximize Σ r_i  (t_min offsets are constant)
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=list(zip(lower, upper)),
        method="highs",
    )
    _record_solve("marginal", result)
    if not result.success:
        return RateSolution(
            feasible=False,
            reason=f"rate LP infeasible: {result.message}",
        )

    rates = {cp.name: float(r) for cp, r in zip(placements, result.x)}
    objective_mbps = sum(
        rates[cp.name] - cp.chain.slo.t_min for cp in placements
    )
    return RateSolution(rates=rates, feasible=True,
                        objective_mbps=objective_mbps)


def solve_rates_max_min(
    placements: Sequence[ChainPlacement],
    topology: Topology,
    utilization_cap: Optional[float] = None,
    packet_bits: int = DEFAULT_PACKET_BITS,
) -> RateSolution:
    """Lexicographic max-min fair marginal-rate assignment.

    Two-stage LP: first maximize the smallest achievable marginal rate t*
    (r_i ≥ t_min_i + t for every chain whose caps allow it), then maximize
    aggregate throughput subject to that fairness floor. Fairness costs
    aggregate throughput relative to the ``marginal`` objective but
    prevents one cheap chain from absorbing all burst headroom (§2
    footnote 2).
    """
    if not placements:
        return RateSolution(feasible=True)

    n = len(placements)
    port_rate = getattr(topology.switch, "port_rate_mbps", math.inf)
    lower = np.array([cp.chain.slo.t_min for cp in placements])
    upper = np.zeros(n)
    for i, cp in enumerate(placements):
        cap = min(cp.estimated_rate, port_rate)
        if not math.isinf(cp.chain.slo.t_max):
            cap = min(cap, cp.chain.slo.t_max)
        upper[i] = cap
        if cap + 1e-9 < lower[i]:
            return RateSolution(
                feasible=False,
                reason=(
                    f"chain {cp.name}: estimated rate {cap:.0f} Mbps "
                    f"< t_min {lower[i]:.0f} Mbps"
                ),
            )

    rows: List[np.ndarray] = []
    caps: List[float] = []
    for server in topology.servers:
        if server.name in topology.failed_devices:
            continue
        coeffs = np.array(
            [cp.server_visits.get(server.name, 0.0) for cp in placements]
        )
        if coeffs.any():
            rows.append(coeffs)
            caps.append(server.primary_nic().rate_mbps)

    if utilization_cap is not None:
        extra_rows, extra_caps = _utilization_rows(
            placements, topology, utilization_cap, packet_bits,
        )
        rows.extend(extra_rows)
        caps.extend(extra_caps)

    # Progressive filling: raise a common marginal floor t over the
    # chains that still have cap headroom; chains whose headroom is
    # exhausted saturate at their cap and drop out of the floor, so a
    # tightly-capped chain (e.g. a virtual pipe with zero burst headroom)
    # never drags the others down.
    headroom = upper - lower
    saturated = set()
    floor = np.array(lower, dtype=float)
    for _round in range(n):
        active = [i for i in range(n) if i not in saturated]
        if not active:
            break
        c = np.zeros(n + 1)
        c[-1] = -1.0
        a_ub_rows: List[np.ndarray] = []
        b_ub: List[float] = []
        for coeffs, cap in zip(rows, caps):
            row = np.zeros(n + 1)
            row[:n] = coeffs
            a_ub_rows.append(row)
            b_ub.append(cap)
        for i in active:
            row = np.zeros(n + 1)
            row[i] = -1.0
            row[-1] = 1.0
            a_ub_rows.append(row)
            b_ub.append(-lower[i])
        bounds = []
        for i in range(n):
            if i in saturated:
                # keep the fairness level it already earned; it may rise
                # to its cap but must not be squeezed below its floor
                bounds.append((floor[i], upper[i]))
            else:
                bounds.append((lower[i], upper[i]))
        bounds.append((0.0, None))
        stage1 = linprog(
            c=c,
            A_ub=np.vstack(a_ub_rows),
            b_ub=np.array(b_ub),
            bounds=bounds,
            method="highs",
        )
        _record_solve("max_min", stage1)
        if not stage1.success:
            return RateSolution(
                feasible=False,
                reason=f"max-min LP infeasible: {stage1.message}",
            )
        t_star = stage1.x[-1]
        for i in active:
            floor[i] = lower[i] + min(t_star, headroom[i])
        newly_saturated = {
            i for i in active if headroom[i] <= t_star + 1e-7
        }
        if not newly_saturated:
            break
        saturated |= newly_saturated

    # Final stage: maximize aggregate throughput above the fairness floor.
    stage2 = linprog(
        c=-np.ones(n),
        A_ub=np.vstack(rows) if rows else None,
        b_ub=np.array(caps) if rows else None,
        bounds=list(zip(floor, upper)),
        method="highs",
    )
    _record_solve("max_min", stage2)
    if not stage2.success:
        return RateSolution(
            feasible=False,
            reason=f"max-min LP stage 2 infeasible: {stage2.message}",
        )
    rates = {
        cp.name: float(r) for cp, r in zip(placements, stage2.x)
    }
    objective_mbps = sum(
        rates[cp.name] - cp.chain.slo.t_min for cp in placements
    )
    return RateSolution(rates=rates, feasible=True,
                        objective_mbps=objective_mbps)


def nic_headroom(
    placements: Sequence[ChainPlacement],
    rates: Dict[str, float],
    topology: Topology,
) -> Dict[str, float]:
    """Remaining NIC capacity per server at the assigned rates (reporting)."""
    headroom: Dict[str, float] = {}
    for server in topology.servers:
        load = sum(
            cp.server_visits.get(server.name, 0.0) * rates.get(cp.name, 0.0)
            for cp in placements
        )
        headroom[server.name] = server.primary_nic().rate_mbps - load
    return headroom
