"""Placement memoization (the sweep engine's warm path).

The evaluation grid — Figure 2 panels, ablations, reserve re-solves,
failure replans — repeatedly solves placement problems over near-identical
inputs. This module memoizes :class:`~repro.core.placement.Placement`
results keyed by a *canonical fingerprint* of the full problem statement:
chains (graphs, params, SLOs), topology state (devices, reserved cores,
failed devices), profile database (including injected error), strategy
name, and packet size. Any input that can change the answer is part of the
key, so a hit is always safe to reuse.

Entries are stored and returned as deep copies: callers may freely mutate
a returned placement (rate re-splits, core rebalancing) without corrupting
the cache, and cached entries never alias the solver's working state.

A process-wide default cache backs the sweep engine; tests swap it with
:func:`scoped_cache`. Forked sweep workers inherit the parent's populated
cache for free, so warm parallel runs hit too.
"""

from __future__ import annotations

import copy
import dataclasses
import enum
import hashlib
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.core.placement import Placement
from repro.obs import get_registry

#: Default retention bound; the Fig-2 grid is ~200 cells, so 1024 keeps
#: several full evaluation runs warm while bounding memory.
DEFAULT_MAX_ENTRIES = 1024


def canonical(obj) -> object:
    """Reduce ``obj`` to a deterministic, hashable-repr structure.

    Handles the model types placement inputs are built from: dataclasses
    (field order is declaration order), dicts/sets (sorted), sequences,
    enums, callables (by qualified name), and plain objects (public
    ``__dict__``, sorted). Private attributes are skipped so incidental
    state (e.g. ``NFGraph._next_id``) never perturbs the key.
    """
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return obj
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}.{obj.name}"
    if isinstance(obj, dict):
        return ("dict", tuple(
            (str(k), canonical(v))
            for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))
        ))
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted((canonical(v) for v in obj), key=repr)))
    if isinstance(obj, (list, tuple)):
        return ("seq", tuple(canonical(v) for v in obj))
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (type(obj).__name__, tuple(
            (f.name, canonical(getattr(obj, f.name)))
            for f in dataclasses.fields(obj)
        ))
    if callable(obj):
        return ("fn", getattr(obj, "__module__", ""),
                getattr(obj, "__qualname__", repr(type(obj))))
    state = getattr(obj, "__dict__", None)
    if state is not None:
        public = {k: v for k, v in state.items() if not k.startswith("_")}
        return (type(obj).__name__, canonical(public))
    return ("repr", repr(obj))


def placement_fingerprint(
    chains: Sequence,
    topology,
    profiles,
    strategy: str,
    packet_bits: int,
    extra: Tuple = (),
) -> str:
    """Canonical key of one placement problem (sha256 hex digest).

    ``extra`` admits solver knobs beyond the standard five inputs (e.g.
    the Placer's rate objective) without widening the signature.
    """
    payload = canonical((
        "placement/v1",
        tuple(canonical(c) for c in chains),
        canonical(topology),
        canonical(profiles),
        str(strategy),
        int(packet_bits),
        canonical(extra),
    ))
    return hashlib.sha256(repr(payload).encode()).hexdigest()


def warm_start_key(base: Placement) -> str:
    """Digest of a placement's decided pattern + cores (sha256 hex).

    An incremental solve's answer depends on which assignments it pins, so
    the warm-start base joins the fingerprint via this key. Only the
    *decisions* (chain name, NF→device assignment, per-subgroup cores)
    matter; rates and derived estimates are recomputed and deliberately
    excluded, keeping the key stable across LP re-splits.
    """
    payload = canonical(tuple(
        (
            cp.name,
            canonical(cp.assignment),
            tuple(sorted(
                (sg.sg_id, sg.server, sg.cores) for sg in cp.subgroups
            )),
        )
        for cp in sorted(base.chains, key=lambda cp: cp.name)
    ))
    return hashlib.sha256(repr(payload).encode()).hexdigest()


class PlacementCache:
    """LRU memo of fingerprint -> Placement with copy-on-read semantics."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES,
                 enabled: bool = True):
        self.max_entries = max_entries
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[str, Placement]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[Placement]:
        """Deep copy of the cached placement, or None (counts hit/miss)."""
        if not self.enabled:
            return None
        entry = self._entries.get(key)
        registry = get_registry()
        if entry is None:
            self.misses += 1
            registry.counter("placement_cache.lookups", result="miss").inc()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        registry.counter("placement_cache.lookups", result="hit").inc()
        return copy.deepcopy(entry)

    def put(self, key: str, placement: Placement) -> None:
        if not self.enabled:
            return
        self._entries[key] = copy.deepcopy(placement)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            get_registry().counter("placement_cache.evictions").inc()

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> Dict[str, float]:
        lookups = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }

    def __repr__(self) -> str:
        return (f"<PlacementCache {len(self._entries)} entries, "
                f"{self.hits} hits / {self.misses} misses>")


_cache = PlacementCache()


def get_cache() -> PlacementCache:
    """The process-wide default placement cache."""
    return _cache


def set_cache(cache: Optional[PlacementCache] = None) -> PlacementCache:
    """Install (and return) a new default cache; None means a fresh one."""
    global _cache
    _cache = cache if cache is not None else PlacementCache()
    return _cache


@contextmanager
def scoped_cache(
    cache: Optional[PlacementCache] = None,
) -> Iterator[PlacementCache]:
    """Temporarily swap the default cache (test/benchmark isolation)."""
    global _cache
    previous = _cache
    _cache = cache if cache is not None else PlacementCache()
    try:
        yield _cache
    finally:
        _cache = previous
