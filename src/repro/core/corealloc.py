"""Core allocation (§3.2 "Searching through Core Allocations").

Every subgroup needs at least one core. Replicable subgroups may receive
more to meet SLOs or raise marginal throughput. Four policies mirror the
paper's schemes:

* ``lemur`` — meet every chain's t_min first (water-filling the bottleneck
  subgroup), then spend spare cores where the aggregate marginal gain per
  core is largest;
* ``even`` — HW Preferred's policy: spare cores distributed round-robin
  across chains;
* ``by_index`` — Greedy's policy: meet t_min per chain, then pump chains to
  t_max sequentially by index;
* ``none`` — the No-Core-Allocation ablation: one core per subgroup, no
  scaling.

An exhaustive search (:func:`allocate_exhaustive`) exists as a correctness
oracle for tests and the brute-force placer on small instances.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.lp import RateSolution, solve_rates
from repro.core.placement import ChainPlacement, Subgroup
from repro.core.rates import estimate_chain_rate, subgroup_rate_mbps
from repro.exceptions import PlacementError
from repro.hw.topology import Topology
from repro.units import DEFAULT_PACKET_BITS


@dataclass
class AllocationResult:
    placements: List[ChainPlacement]
    feasible: bool
    reason: Optional[str] = None


def _server_budgets(topology: Topology) -> Dict[str, int]:
    return {
        s.name: s.allocatable_cores
        for s in topology.servers
        if s.name not in topology.failed_devices
    }


def _refresh_estimates(placements: List[ChainPlacement], topology: Topology,
                       packet_bits: int) -> None:
    for cp in placements:
        cp.estimated_rate = estimate_chain_rate(cp, topology, packet_bits)


def _rate_cap(cp: ChainPlacement, topology: Topology) -> float:
    port_rate = getattr(topology.switch, "port_rate_mbps", math.inf)
    cap = min(port_rate, cp.chain.slo.t_max)
    for nic_cap in cp.nic_caps.values():
        cap = min(cap, nic_cap)
    return cap


def _bottleneck_subgroup(cp: ChainPlacement, topology: Topology,
                         packet_bits: int,
                         budgets: Dict[str, int]) -> Optional[Subgroup]:
    """The chain's limiting subgroup, if it can usefully take another core."""
    best: Optional[Subgroup] = None
    best_rate = math.inf
    for sg in cp.subgroups:
        server = topology.server(sg.server)
        rate = subgroup_rate_mbps(sg, server.freq_hz, packet_bits)
        if rate < best_rate:
            best_rate = rate
            best = sg
    if best is None:
        return None
    if not best.replicable or budgets.get(best.server, 0) <= 0:
        return None
    # adding a core is useless if something else caps the chain harder
    if best_rate >= _rate_cap(cp, topology):
        return None
    return best


def _grant_core(cp: ChainPlacement, sg: Subgroup,
                budgets: Dict[str, int]) -> None:
    sg.cores += 1
    budgets[sg.server] -= 1


def allocate_minimum(
    placements: List[ChainPlacement],
    topology: Topology,
    packet_bits: int = DEFAULT_PACKET_BITS,
) -> AllocationResult:
    """One core per subgroup — the mandatory floor."""
    budgets = _server_budgets(topology)
    for cp in placements:
        for sg in cp.subgroups:
            sg.cores = 1
            budgets[sg.server] = budgets.get(sg.server, 0) - 1
    over = {s: b for s, b in budgets.items() if b < 0}
    if over:
        return AllocationResult(
            placements=placements, feasible=False,
            reason=f"not enough cores for one per subgroup: deficit {over}",
        )
    _refresh_estimates(placements, topology, packet_bits)
    return AllocationResult(placements=placements, feasible=True)


def meet_tmin(
    placements: List[ChainPlacement],
    topology: Topology,
    packet_bits: int = DEFAULT_PACKET_BITS,
) -> AllocationResult:
    """Water-fill bottleneck subgroups until every chain reaches t_min."""
    budgets = _server_budgets(topology)
    for cp in placements:
        for sg in cp.subgroups:
            budgets[sg.server] -= sg.cores
    _refresh_estimates(placements, topology, packet_bits)

    progress = True
    while progress:
        progress = False
        for cp in placements:
            if cp.estimated_rate + 1e-9 >= cp.chain.slo.t_min:
                continue
            sg = _bottleneck_subgroup(cp, topology, packet_bits, budgets)
            if sg is None:
                continue
            _grant_core(cp, sg, budgets)
            cp.estimated_rate = estimate_chain_rate(cp, topology, packet_bits)
            progress = True

    for cp in placements:
        if cp.estimated_rate + 1e-9 < cp.chain.slo.t_min:
            return AllocationResult(
                placements=placements, feasible=False,
                reason=(
                    f"chain {cp.name} stuck at {cp.estimated_rate:.0f} Mbps "
                    f"< t_min {cp.chain.slo.t_min:.0f} Mbps"
                ),
            )
    return AllocationResult(placements=placements, feasible=True)


def allocate_cores(
    placements: List[ChainPlacement],
    topology: Topology,
    packet_bits: int = DEFAULT_PACKET_BITS,
    policy: str = "lemur",
) -> AllocationResult:
    """Full allocation under the selected policy (see module docstring)."""
    minimum = allocate_minimum(placements, topology, packet_bits)
    if not minimum.feasible:
        return minimum
    if policy == "none":
        return _check_tmin(placements, topology, packet_bits)

    if policy == "even":
        # HW Preferred is *not* SLO-aware: spare cores go round-robin
        # regardless of t_min, so its rate is δ-independent and it fails
        # once a slow chain's even share cannot cover its minimum (§5.2).
        budgets = _server_budgets(topology)
        for cp in placements:
            for sg in cp.subgroups:
                budgets[sg.server] -= sg.cores
        _distribute_evenly(placements, topology, packet_bits, budgets)
        _refresh_estimates(placements, topology, packet_bits)
        return _check_tmin(placements, topology, packet_bits)

    met = meet_tmin(placements, topology, packet_bits)
    if not met.feasible:
        return met

    budgets = _server_budgets(topology)
    for cp in placements:
        for sg in cp.subgroups:
            budgets[sg.server] -= sg.cores

    if policy == "lemur":
        _maximize_marginal(placements, topology, packet_bits, budgets)
    elif policy == "by_index":
        _pump_by_index(placements, topology, packet_bits, budgets)
    else:
        raise PlacementError(f"unknown core allocation policy {policy!r}")

    _refresh_estimates(placements, topology, packet_bits)
    return AllocationResult(placements=placements, feasible=True)


def _check_tmin(placements: List[ChainPlacement], topology: Topology,
                packet_bits: int) -> AllocationResult:
    for cp in placements:
        if cp.estimated_rate + 1e-9 < cp.chain.slo.t_min:
            return AllocationResult(
                placements=placements, feasible=False,
                reason=(
                    f"chain {cp.name}: {cp.estimated_rate:.0f} Mbps < t_min "
                    f"without core scaling"
                ),
            )
    return AllocationResult(placements=placements, feasible=True)


def _maximize_marginal(placements: List[ChainPlacement], topology: Topology,
                       packet_bits: int, budgets: Dict[str, int]) -> None:
    """Spend spare cores on the (chain, subgroup) with the best rate gain.

    The chain rate is concave in its core count (min over subgroups of a
    linear function), so greedy marginal-gain selection is optimal for the
    capped-sum objective before link constraints; the LP then trims rates
    the NICs cannot carry.
    """
    while True:
        best_gain = 0.0
        best: Optional[Tuple[ChainPlacement, Subgroup]] = None
        for cp in placements:
            sg = _bottleneck_subgroup(cp, topology, packet_bits, budgets)
            if sg is None:
                continue
            before = min(cp.estimated_rate, _rate_cap(cp, topology))
            sg.cores += 1
            after = min(
                estimate_chain_rate(cp, topology, packet_bits),
                _rate_cap(cp, topology),
            )
            sg.cores -= 1
            gain = after - before
            if gain > best_gain + 1e-9:
                best_gain = gain
                best = (cp, sg)
        if best is None:
            return
        cp, sg = best
        _grant_core(cp, sg, budgets)
        cp.estimated_rate = estimate_chain_rate(cp, topology, packet_bits)


def _distribute_evenly(placements: List[ChainPlacement], topology: Topology,
                       packet_bits: int, budgets: Dict[str, int]) -> None:
    """Round-robin spare cores across chains (HW Preferred's policy)."""
    while True:
        granted = False
        for cp in placements:
            sg = _bottleneck_subgroup(cp, topology, packet_bits, budgets)
            if sg is None:
                continue
            _grant_core(cp, sg, budgets)
            cp.estimated_rate = estimate_chain_rate(cp, topology, packet_bits)
            granted = True
        if not granted:
            return


def _pump_by_index(placements: List[ChainPlacement], topology: Topology,
                   packet_bits: int, budgets: Dict[str, int]) -> None:
    """Greedy's policy: saturate chains to t_max in index order (§5.1)."""
    for cp in placements:
        while cp.estimated_rate < _rate_cap(cp, topology):
            sg = _bottleneck_subgroup(cp, topology, packet_bits, budgets)
            if sg is None:
                break
            _grant_core(cp, sg, budgets)
            cp.estimated_rate = estimate_chain_rate(cp, topology, packet_bits)


def allocate_exhaustive(
    placements: List[ChainPlacement],
    topology: Topology,
    packet_bits: int = DEFAULT_PACKET_BITS,
    max_combinations: int = 200_000,
) -> Tuple[AllocationResult, RateSolution]:
    """Enumerate all feasible integer core allocations; pick the LP-best.

    Exponential — used by the brute-force placer and as a test oracle. Only
    replicable subgroups vary; the others stay at one core.
    """
    budgets = _server_budgets(topology)
    all_subgroups: List[Subgroup] = [
        sg for cp in placements for sg in cp.subgroups
    ]
    for sg in all_subgroups:
        sg.cores = 1
    base_usage: Dict[str, int] = {}
    for sg in all_subgroups:
        base_usage[sg.server] = base_usage.get(sg.server, 0) + 1
    for server, used in base_usage.items():
        if used > budgets.get(server, 0):
            return (
                AllocationResult(placements=placements, feasible=False,
                                 reason="not enough cores for subgroups"),
                RateSolution(feasible=False, reason="core floor exceeded"),
            )

    variable = [sg for sg in all_subgroups if sg.replicable]
    spare = {
        server: budgets.get(server, 0) - base_usage.get(server, 0)
        for server in budgets
    }
    options: List[List[int]] = []
    for sg in variable:
        max_extra = spare.get(sg.server, 0)
        options.append(list(range(0, max_extra + 1)))

    total = 1
    for opts in options:
        total *= len(opts)
        if total > max_combinations:
            raise PlacementError(
                f"exhaustive core allocation too large (> {max_combinations})"
            )

    best_solution = RateSolution(feasible=False, reason="no allocation tried")
    best_alloc: Optional[List[int]] = None
    for combo in itertools.product(*options) if options else [()]:
        usage = dict(base_usage)
        valid = True
        for sg, extra in zip(variable, combo):
            usage[sg.server] = usage.get(sg.server, 0) + extra
            if usage[sg.server] > budgets.get(sg.server, 0):
                valid = False
                break
        if not valid:
            continue
        for sg, extra in zip(variable, combo):
            sg.cores = 1 + extra
        _refresh_estimates(placements, topology, packet_bits)
        solution = solve_rates(placements, topology)
        if solution.feasible and (
            not best_solution.feasible
            or solution.objective_mbps > best_solution.objective_mbps + 1e-9
        ):
            best_solution = solution
            best_alloc = list(combo)

    if best_alloc is None:
        return (
            AllocationResult(placements=placements, feasible=False,
                             reason=best_solution.reason),
            best_solution,
        )
    for sg, extra in zip(variable, best_alloc):
        sg.cores = 1 + extra
    _refresh_estimates(placements, topology, packet_bits)
    return AllocationResult(placements=placements, feasible=True), best_solution
