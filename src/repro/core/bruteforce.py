"""Brute-force ("Optimal") placement (§3.2).

The paper's brute force (a) enumerates placement patterns, (b) searches core
allocations per pattern, (c) maximizes marginal throughput per (pattern,
allocation) with the LP, and finally walks placements in decreasing
objective order, invoking the PISA compiler until one fits the stage budget.

The pattern cross-product explodes combinatorially (the paper's 4-chain run
took ~4 hours); we bound the search with per-chain deduplication, optional
per-chain top-K trimming, and a global combination budget — and always seed
the candidate set with the heuristic's own patterns so the reported
"Optimal" never falls below Lemur's heuristic.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chain.graph import NFChain
from repro.core.heuristic import heuristic_place
from repro.core.patterns import enumerate_patterns, pattern_signature
from repro.core.pipeline import build_placement, verify_switch_fit
from repro.core.placement import NodeAssignment, Placement
from repro.exceptions import PlacementError
from repro.hw.platform import Platform
from repro.hw.topology import Topology
from repro.p4c.compiler import PISACompiler
from repro.profiles.defaults import ProfileDatabase
from repro.units import DEFAULT_PACKET_BITS

Assignment = Dict[str, NodeAssignment]


def brute_force_place(
    chains: Sequence[NFChain],
    topology: Topology,
    profiles: ProfileDatabase,
    packet_bits: int = DEFAULT_PACKET_BITS,
    per_chain_limit: Optional[int] = 80,
    max_combinations: int = 30_000,
    core_policy: str = "lemur",
) -> Placement:
    """Ranked enumeration over pattern combinations; first stage-fit wins."""
    chains = list(chains)
    compiler = (
        PISACompiler(topology.switch)  # type: ignore[arg-type]
        if topology.switch.platform is Platform.PISA else None
    )

    per_chain: List[List[Assignment]] = []
    for chain in chains:
        patterns = _chain_patterns(chain, topology, per_chain_limit, profiles)
        per_chain.append(patterns)

    # Seed with the heuristic's choice so Optimal ⊇ Lemur's search space.
    heuristic = heuristic_place(chains, topology, profiles, packet_bits)
    if heuristic.feasible:
        for i, cp in enumerate(heuristic.chains):
            sig = pattern_signature(cp.assignment)
            existing = [
                j for j, p in enumerate(per_chain[i])
                if pattern_signature(p) == sig
            ]
            for j in existing:
                per_chain[i].pop(j)
            # prepend so budget trimming never drops the heuristic's choice
            per_chain[i].insert(0, dict(cp.assignment))

    total = 1
    for patterns in per_chain:
        total *= max(1, len(patterns))
    if total > max_combinations:
        per_chain = _trim_to_budget(per_chain, max_combinations)

    evaluated: List[Tuple[float, Placement]] = []
    for combo in itertools.product(*per_chain):
        placement = build_placement(
            chains, list(combo), topology, profiles, packet_bits,
            core_policy=core_policy, compiler=compiler,
            check_stages=False, strategy="optimal",
        )
        if placement.feasible:
            evaluated.append((placement.objective_mbps, placement))

    if not evaluated:
        fallback = heuristic
        fallback.strategy = "optimal"
        if not fallback.feasible:
            fallback.infeasible_reason = (
                fallback.infeasible_reason
                or "no pattern combination satisfies the SLOs"
            )
        return fallback

    # Decreasing objective; first placement whose switch pipeline compiles
    # within the stage budget is the answer (§3.2 "Putting it all together").
    evaluated.sort(key=lambda item: -item[0])
    for _objective, placement in evaluated:
        reason = verify_switch_fit(placement.chains, topology, compiler)
        if reason is None:
            return placement
    best = evaluated[0][1]
    best.feasible = False
    best.infeasible_reason = "no high-objective placement fits the switch"
    return best


def _chain_patterns(
    chain: NFChain,
    topology: Topology,
    per_chain_limit: Optional[int],
    profiles: ProfileDatabase,
) -> List[Assignment]:
    """Deduplicated (optionally trimmed) pattern list for one chain."""
    seen = set()
    patterns: List[Assignment] = []
    try:
        iterator = enumerate_patterns(chain, topology, limit=500_000)
        for pattern in iterator:
            sig = pattern_signature(pattern)
            if sig in seen:
                continue
            seen.add(sig)
            patterns.append(pattern)
    except PlacementError:
        # space too large: fall back to a small curated set
        from repro.core.patterns import preferred_assignment

        patterns = [
            preferred_assignment(chain, topology, prefer="hw"),
            preferred_assignment(chain, topology, prefer="sw"),
        ]
    if per_chain_limit is not None and len(patterns) > per_chain_limit:
        patterns.sort(key=lambda p: _pattern_rank(chain, p, profiles))
        patterns = patterns[:per_chain_limit]
    return patterns


def _pattern_rank(chain: NFChain, pattern: Assignment,
                  profiles: ProfileDatabase) -> Tuple[float, int]:
    """Rank patterns: least server cycle load first, then fewer bounces.

    Lower server load means higher single-core throughput, the dominant
    term in the objective; this keeps the trimmed set near the frontier.
    """
    fractions = chain.graph.node_fractions()
    server_cycles = 0.0
    for nid, assign in pattern.items():
        if assign.platform is Platform.SERVER:
            node = chain.graph.nodes[nid]
            server_cycles += fractions[nid] * profiles.server_cycles(
                node.nf_class, node.params
            )
    from repro.core.rates import _count_excursions

    bounces = max(
        (_count_excursions(lc.node_ids, pattern)
         for lc in chain.graph.linearize()),
        default=0,
    )
    return (server_cycles, bounces)


def _trim_to_budget(
    per_chain: List[List[Assignment]], max_combinations: int
) -> List[List[Assignment]]:
    """Shrink the largest per-chain lists until the product fits the budget."""
    per_chain = [list(p) for p in per_chain]
    while True:
        total = 1
        for patterns in per_chain:
            total *= max(1, len(patterns))
        if total <= max_combinations:
            return per_chain
        largest = max(range(len(per_chain)), key=lambda i: len(per_chain[i]))
        if len(per_chain[largest]) <= 1:
            return per_chain
        per_chain[largest] = per_chain[largest][
            : max(1, len(per_chain[largest]) * 3 // 4)
        ]
