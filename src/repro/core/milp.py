"""MILP placement formulation (§3.2 "Brute-force Placement" discussion).

The paper notes that "a MILP formulation can address a scalable
run-to-completion formulation while meeting SLO requirements and
link-capacity constraints, but off-the-shelf solvers cannot determine if a
set of NF chains respects hardware constraints, since that requires
actually invoking the hardware-specific compiler"; modelling the PISA
switch conservatively "would have resulted in stranded resources".

This module implements that formulation for linear chains over one PISA
switch + one server, solved with SciPy's HiGHS MILP backend:

* binaries ``x[c,i,p]`` place node *i* of chain *c* on platform *p*;
* binaries ``z[c,i,j]`` mark maximal server runs (run-to-completion
  subgroups) — an AND over the member placements and the two boundary
  conditions;
* integer cores ``k[c,i,j]`` scale active segments (non-replicable
  segments are pinned to one core);
* continuous rates ``r[c]`` with ``r ≤ (f/cycles_{ij}) · k + M(1−z)``;
* linearized segment flows ``y[c,i,j]`` charge the server NIC once per
  switch↔server bounce;
* a **conservative** switch budget: per-NF stage estimates must sum within
  the stage count — the stranded-resource model the paper contrasts with
  compiler-checked placement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.chain.graph import NFChain
from repro.core.placement import (
    ChainPlacement,
    NodeAssignment,
    Placement,
)
from repro.exceptions import PlacementError
from repro.hw.platform import Platform
from repro.hw.topology import Topology
from repro.profiles.defaults import (
    NSH_ENCAP_DECAP_CYCLES,
    ProfileDatabase,
)
from repro.units import DEFAULT_PACKET_BITS

#: Conservative per-NF stage estimates (table layers + margin; cf. [14]).
_STAGE_ESTIMATE: Dict[str, int] = {
    "ACL": 1, "IPv4Fwd": 1, "Tunnel": 1, "Detunnel": 1,
    "NAT": 1, "LB": 2, "BPF": 1,
}
#: steering + NSH encap + decap overhead under the conservative model
_STAGE_OVERHEAD = 3

_BIG_M_RATE = 1e6  # Mbps, safely above any link rate


@dataclass
class _Var:
    index: int
    integral: bool
    lower: float
    upper: float


class _VarTable:
    def __init__(self) -> None:
        self.vars: List[_Var] = []
        self.names: Dict[str, int] = {}

    def add(self, name: str, integral: bool, lower: float, upper: float
            ) -> int:
        if name in self.names:
            raise PlacementError(f"duplicate MILP variable {name}")
        index = len(self.vars)
        self.vars.append(_Var(index, integral, lower, upper))
        self.names[name] = index
        return index

    def __getitem__(self, name: str) -> int:
        return self.names[name]

    def __len__(self) -> int:
        return len(self.vars)


def milp_place(
    chains: Sequence[NFChain],
    topology: Topology,
    profiles: ProfileDatabase,
    packet_bits: int = DEFAULT_PACKET_BITS,
) -> Placement:
    """Solve the MILP and convert the solution into a Placement.

    Restricted to linear chains (the open-sourced MILP has the same
    scope); branched chains raise :class:`PlacementError`.
    """
    chains = list(chains)
    for chain in chains:
        if chain.graph.branch_nodes() or chain.graph.merge_nodes():
            raise PlacementError(
                f"MILP formulation handles linear chains only; "
                f"{chain.name} branches"
            )
    if len(topology.servers) != 1:
        raise PlacementError("MILP formulation targets one server")
    if topology.switch.platform is not Platform.PISA:
        raise PlacementError("MILP formulation targets a PISA ToR")

    server = topology.servers[0]
    switch = topology.switch
    freq = server.freq_hz
    rate_per_cycle = freq * packet_bits / 1e6  # Mbps·cycles

    table = _VarTable()
    rows: List[Tuple[Dict[int, float], float, float]] = []  # (coeffs, lo, hi)

    chain_nodes: List[List[str]] = []
    chain_opts: List[List[List[Platform]]] = []
    segments: List[List[Tuple[int, int]]] = []

    for c, chain in enumerate(chains):
        order = chain.graph.topological_order()
        chain_nodes.append(order)
        opts: List[List[Platform]] = []
        for nid in order:
            node = chain.graph.nodes[nid]
            allowed = []
            if node.info.available_on(Platform.PISA):
                allowed.append(Platform.PISA)
            if node.info.available_on(Platform.SERVER):
                allowed.append(Platform.SERVER)
            if not allowed:
                raise PlacementError(
                    f"{node.nf_class} has neither P4 nor server "
                    f"implementation"
                )
            opts.append(allowed)
        chain_opts.append(opts)

        # placement binaries + one-platform-per-node rows
        for i, nid in enumerate(order):
            coeffs: Dict[int, float] = {}
            for platform in opts[i]:
                index = table.add(f"x[{c},{i},{platform.value}]",
                                  True, 0.0, 1.0)
                coeffs[index] = 1.0
            rows.append((coeffs, 1.0, 1.0))

        # rate variable
        slo = chain.slo
        upper = min(
            slo.t_max,
            getattr(switch, "port_rate_mbps", math.inf),
        )
        if math.isinf(upper):
            upper = _BIG_M_RATE
        table.add(f"r[{c}]", False, slo.t_min, upper)

        # candidate segments [i..j] where all nodes can sit on the server
        segs: List[Tuple[int, int]] = []
        n = len(order)
        for i in range(n):
            if Platform.SERVER not in opts[i]:
                continue
            for j in range(i, n):
                if Platform.SERVER not in opts[j]:
                    break
                segs.append((i, j))
        segments.append(segs)
        for (i, j) in segs:
            z = table.add(f"z[{c},{i},{j}]", True, 0.0, 1.0)
            replicable = all(
                chain.graph.nodes[order[k]].info.replicable
                for k in range(i, j + 1)
            )
            max_cores = server.allocatable_cores if replicable else 1
            k_var = table.add(f"k[{c},{i},{j}]", True, 0.0, max_cores)
            y_var = table.add(f"y[{c},{i},{j}]", False, 0.0, _BIG_M_RATE)

            # z is the AND of member placements and boundary conditions
            and_terms: List[Tuple[int, float, float]] = []
            for k in range(i, j + 1):
                xk = table[f"x[{c},{k},{Platform.SERVER.value}]"]
                rows.append(({z: 1.0, xk: -1.0}, -math.inf, 0.0))
                and_terms.append((xk, 1.0, 0.0))
            boundary_count = 0
            if i > 0 and Platform.SERVER in chain_opts[c][i - 1]:
                xb = table[f"x[{c},{i - 1},{Platform.SERVER.value}]"]
                rows.append(({z: 1.0, xb: 1.0}, -math.inf, 1.0))
                and_terms.append((xb, -1.0, 1.0))
                boundary_count += 1
            if j < n - 1 and Platform.SERVER in chain_opts[c][j + 1]:
                xa = table[f"x[{c},{j + 1},{Platform.SERVER.value}]"]
                rows.append(({z: 1.0, xa: 1.0}, -math.inf, 1.0))
                and_terms.append((xa, -1.0, 1.0))
                boundary_count += 1
            # z >= sum(terms) - (count - 1)
            coeffs = {z: 1.0}
            constant = 0.0
            for var, sign, offset in and_terms:
                coeffs[var] = coeffs.get(var, 0.0) - sign
                constant += offset
            rows.append((coeffs, -(len(and_terms) - 1) + constant, math.inf))

            # cores active iff the segment is active
            rows.append(({k_var: 1.0, z: -1.0}, 0.0, math.inf))
            rows.append(({k_var: 1.0, z: -float(max_cores)},
                         -math.inf, 0.0))

            # rate cap: r <= rate_per_cycle / cycles * k + M (1 - z)
            cycles = float(NSH_ENCAP_DECAP_CYCLES)
            for kk in range(i, j + 1):
                node = chain.graph.nodes[order[kk]]
                cycles += profiles.server_cycles(node.nf_class, node.params)
            r = table[f"r[{c}]"]
            per_core = rate_per_cycle / cycles
            rows.append((
                {r: 1.0, k_var: -per_core, z: _BIG_M_RATE},
                -math.inf, _BIG_M_RATE,
            ))

            # linearized segment flow y = r·z for the NIC constraint
            rows.append(({y_var: 1.0, r: -1.0}, -math.inf, 0.0))
            rows.append(({y_var: 1.0, z: -_BIG_M_RATE}, -math.inf, 0.0))
            rows.append((
                {y_var: 1.0, r: -1.0, z: -_BIG_M_RATE},
                -_BIG_M_RATE, math.inf,
            ))

    # shared resources -------------------------------------------------------
    core_coeffs: Dict[int, float] = {}
    nic_coeffs: Dict[int, float] = {}
    stage_coeffs: Dict[int, float] = {}
    for c, chain in enumerate(chains):
        order = chain_nodes[c]
        for (i, j) in segments[c]:
            core_coeffs[table[f"k[{c},{i},{j}]"]] = 1.0
            nic_coeffs[table[f"y[{c},{i},{j}]"]] = 1.0
        for i, nid in enumerate(order):
            node = chain.graph.nodes[nid]
            if Platform.PISA in chain_opts[c][i]:
                estimate = _STAGE_ESTIMATE.get(node.nf_class, 1)
                stage_coeffs[
                    table[f"x[{c},{i},{Platform.PISA.value}]"]
                ] = float(estimate)
    rows.append((core_coeffs, 0.0, float(server.allocatable_cores)))
    rows.append((nic_coeffs, 0.0, server.primary_nic().rate_mbps))
    if stage_coeffs:
        rows.append((
            stage_coeffs, 0.0,
            float(switch.num_stages - _STAGE_OVERHEAD),
        ))

    # objective: maximize sum of rates (t_min offsets constant)
    objective = np.zeros(len(table))
    for c in range(len(chains)):
        objective[table[f"r[{c}]"]] = -1.0

    a_rows = np.zeros((len(rows), len(table)))
    lo = np.zeros(len(rows))
    hi = np.zeros(len(rows))
    for row_index, (coeffs, row_lo, row_hi) in enumerate(rows):
        for var, coeff in coeffs.items():
            a_rows[row_index, var] = coeff
        lo[row_index] = row_lo
        hi[row_index] = row_hi

    result = milp(
        c=objective,
        constraints=LinearConstraint(a_rows, lo, hi),
        integrality=np.array(
            [1 if v.integral else 0 for v in table.vars]
        ),
        bounds=Bounds(
            np.array([v.lower for v in table.vars]),
            np.array([v.upper for v in table.vars]),
        ),
    )

    if not result.success:
        return Placement(
            chains=[],
            feasible=False,
            infeasible_reason=f"MILP infeasible: {result.message}",
            strategy="milp",
        )
    return _solution_to_placement(
        chains, topology, profiles, packet_bits, table, result.x,
        chain_nodes, segments,
    )


def _solution_to_placement(
    chains: Sequence[NFChain],
    topology: Topology,
    profiles: ProfileDatabase,
    packet_bits: int,
    table: _VarTable,
    solution: np.ndarray,
    chain_nodes: List[List[str]],
    segments: List[List[Tuple[int, int]]],
) -> Placement:
    """Decode MILP variables into the library's Placement structures."""
    from repro.core.rates import analyze_chain
    from repro.core.subgroups import form_subgroups

    server = topology.servers[0]
    switch = topology.switch
    chain_placements: List[ChainPlacement] = []
    rates: Dict[str, float] = {}

    for c, chain in enumerate(chains):
        order = chain_nodes[c]
        assignment: Dict[str, NodeAssignment] = {}
        for i, nid in enumerate(order):
            server_var = table.names.get(f"x[{c},{i},{Platform.SERVER.value}]")
            on_server = (
                server_var is not None and solution[server_var] > 0.5
            )
            if on_server:
                assignment[nid] = NodeAssignment(Platform.SERVER, server.name)
            else:
                assignment[nid] = NodeAssignment(Platform.PISA, switch.name)
        subgroups = form_subgroups(chain, assignment, profiles)
        # apply the MILP's core decisions to matching subgroups
        node_pos = {nid: i for i, nid in enumerate(order)}
        for sg in subgroups:
            i = node_pos[sg.node_ids[0]]
            j = node_pos[sg.node_ids[-1]]
            k_index = table.names.get(f"k[{c},{i},{j}]")
            if k_index is not None:
                sg.cores = max(1, int(round(solution[k_index])))
        cp = analyze_chain(chain, assignment, subgroups, topology,
                           profiles, packet_bits)
        chain_placements.append(cp)
        rates[chain.name] = float(solution[table[f"r[{c}]"]])

    objective = sum(
        rates[cp.name] - cp.chain.slo.t_min for cp in chain_placements
    )
    return Placement(
        chains=chain_placements,
        rates=rates,
        feasible=True,
        objective_mbps=objective,
        strategy="milp",
    )
