"""Chain-to-rack partitioner: stage one of the hierarchical placer.

Multi-rack placement decomposes into (1) assigning each chain a *home
rack* and (2) running the ordinary single-rack Placer per rack. This
module does step (1): a deterministic greedy first-fit bin-pack over a
capacity proxy, followed by an optional LP refinement pass (scipy
``linprog`` over the fractional relaxation) that re-balances the greedy
assignment when it can lower total inter-rack latency cost without
violating capacity.

The capacity proxy per chain/rack pair:

* **cores** — worst-case software demand if every NF of the chain runs
  on servers: ``ceil(pps(t_min) * Σ cycles(nf) * fraction(nf) / f)``.
* **latency** — a chain homed off the ingress rack pays the inter-rack
  round trip (2 × one-way µs, summed over the link path) out of its
  ``d_max``; racks whose RTT consumes the whole budget are ineligible.
* **link capacity** — the chain's floor rate ``t_min`` must fit on every
  link along the path from the ingress to the home rack.

The proxy deliberately over-estimates core demand (a real placement may
offload onto the switch or a SmartNIC) so that whatever partition it
produces, the per-rack solve is *more* likely to succeed, not less. When
no rack fits a chain, :class:`~repro.exceptions.PartitionError` carries
the binding constraint per candidate rack in its message.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chain.graph import NFChain
from repro.exceptions import PartitionError
from repro.hw.multirack import MultiRackTopology
from repro.obs import get_registry
from repro.profiles.defaults import ProfileDatabase, default_profiles
from repro.units import DEFAULT_PACKET_BITS


@dataclass(frozen=True)
class RackRoute:
    """How a chain homed on ``rack`` is reached from the ingress."""

    rack: str
    links: Tuple[str, ...]  # link names along ingress -> rack, in order
    latency_us: float  # one-way, summed over the path
    bottleneck_mbps: float  # min capacity along the path

    @property
    def rtt_us(self) -> float:
        return 2.0 * self.latency_us


@dataclass
class PartitionResult:
    """A chain→rack assignment plus how it was obtained."""

    assignment: Dict[str, str] = field(default_factory=dict)  # chain -> rack
    routes: Dict[str, RackRoute] = field(default_factory=dict)  # rack -> route
    core_demand: Dict[str, int] = field(default_factory=dict)  # chain -> cores
    spills: int = 0  # chains homed off the ingress rack
    method: str = "greedy"  # "greedy" or "greedy+lp"
    seconds: float = 0.0

    def chains_for(self, rack: str) -> List[str]:
        return [c for c, r in self.assignment.items() if r == rack]

    def rack_of(self, chain: str) -> str:
        return self.assignment[chain]

    def remote_chains(self, ingress: str) -> Dict[str, RackRoute]:
        """chain -> route, for chains homed away from the ingress."""
        return {
            chain: self.routes[rack]
            for chain, rack in self.assignment.items()
            if rack != ingress
        }

    def describe(self) -> str:
        lines = [f"partition ({self.method}): {len(self.assignment)} chains"]
        racks: Dict[str, List[str]] = {}
        for chain, rack in sorted(self.assignment.items()):
            racks.setdefault(rack, []).append(chain)
        for rack in sorted(racks):
            lines.append(f"  {rack}: {', '.join(racks[rack])}")
        if self.spills:
            lines.append(f"  spills: {self.spills}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# routing: shortest-latency paths from the ingress rack
# ---------------------------------------------------------------------------


def fabric_routes(fabric: MultiRackTopology) -> Dict[str, RackRoute]:
    """Dijkstra by one-way latency from the ingress to every rack.

    Ties break on fewer hops then rack name, so the routing — and
    everything downstream of it — is deterministic.
    """
    ingress = fabric.ingress
    routes: Dict[str, RackRoute] = {
        ingress: RackRoute(ingress, (), 0.0, float("inf"))
    }
    # (latency, hops, rack) frontier; small fabrics, so a simple scan
    done = set()
    while True:
        candidate = None
        for rack, route in routes.items():
            if rack in done:
                continue
            key = (route.latency_us, len(route.links), rack)
            if candidate is None or key < candidate[0]:
                candidate = (key, rack)
        if candidate is None:
            break
        rack = candidate[1]
        done.add(rack)
        route = routes[rack]
        for link in fabric.links:
            if rack not in (link.a, link.b):
                continue
            other = link.other(rack)
            latency = route.latency_us + link.latency_us
            bottleneck = min(route.bottleneck_mbps, link.capacity_mbps)
            existing = routes.get(other)
            key = (latency, len(route.links) + 1)
            if existing is None or key < (existing.latency_us, len(existing.links)):
                routes[other] = RackRoute(
                    other, route.links + (link.name,), latency, bottleneck
                )
    return routes


# ---------------------------------------------------------------------------
# per-chain demand proxy
# ---------------------------------------------------------------------------


def chain_core_demand(
    chain: NFChain,
    freq_hz: float,
    profiles: ProfileDatabase,
    packet_bits: int = DEFAULT_PACKET_BITS,
) -> int:
    """Worst-case (all-software) core demand to sustain ``t_min``."""
    fractions = chain.graph.node_fractions()
    cycles = 0.0
    for name, node in chain.graph.nodes.items():
        per_packet = profiles.server_cycles(node.nf_class, node.params)
        cycles += per_packet * fractions.get(name, 1.0)
    pps = chain.slo.t_min * 1e6 / packet_bits
    if cycles <= 0 or pps <= 0:
        return 1
    return max(1, math.ceil(pps * cycles / freq_hz))


# ---------------------------------------------------------------------------
# the partitioner
# ---------------------------------------------------------------------------


def partition_chains(
    chains: List[NFChain],
    fabric: MultiRackTopology,
    profiles: Optional[ProfileDatabase] = None,
    *,
    rack_pins: Optional[Dict[str, str]] = None,
    packet_bits: int = DEFAULT_PACKET_BITS,
    refine: bool = True,
) -> PartitionResult:
    """Assign every chain a home rack (greedy first-fit + LP refinement).

    Raises :class:`PartitionError` when some chain fits no rack; the
    message names the binding constraint for each candidate.
    """
    profiles = profiles or default_profiles()
    pins = dict(rack_pins or {})
    started = time.perf_counter()
    registry = get_registry()

    for chain_name, rack in pins.items():
        if rack not in fabric.racks:
            raise PartitionError(
                f"chain {chain_name!r} is pinned to unknown rack {rack!r} "
                f"(have {sorted(fabric.racks)})"
            )

    routes = fabric_routes(fabric)
    free_cores = {
        name: topo.total_server_cores() for name, topo in fabric.racks.items()
    }
    link_free = {link.name: link.capacity_mbps for link in fabric.links}
    demand = {
        chain.name: chain_core_demand(
            chain, _rack_freq(fabric, fabric.ingress), profiles, packet_bits
        )
        for chain in chains
    }

    # Candidate order per chain: ingress first, then by (path latency,
    # most free cores at partition start, name).
    def candidate_racks() -> List[str]:
        others = [r for r in fabric.racks if r != fabric.ingress]
        others.sort(key=lambda r: (routes[r].latency_us, -free_cores[r], r))
        return [fabric.ingress] + others

    def eligibility(chain: NFChain, rack: str) -> Optional[str]:
        """None if the chain fits on ``rack`` now, else the binding reason."""
        route = routes.get(rack)
        if route is None:
            return f"rack {rack}: unreachable from ingress {fabric.ingress!r}"
        need = demand[chain.name]
        if need > free_cores[rack]:
            return (
                f"rack {rack}: cores exhausted "
                f"(need {need}, {free_cores[rack]} free)"
            )
        if rack != fabric.ingress:
            if route.rtt_us >= chain.slo.d_max:
                return (
                    f"rack {rack}: latency budget exhausted "
                    f"(d_max {chain.slo.d_max:g} µs <= inter-rack RTT "
                    f"{route.rtt_us:g} µs)"
                )
            for link_name in route.links:
                if chain.slo.t_min > link_free[link_name]:
                    return (
                        f"rack {rack}: link {link_name} capacity exhausted "
                        f"(need {chain.slo.t_min:g} Mbps, "
                        f"{link_free[link_name]:g} Mbps free)"
                    )
        return None

    def commit(chain: NFChain, rack: str) -> None:
        assignment[chain.name] = rack
        free_cores[rack] -= demand[chain.name]
        if rack != fabric.ingress:
            for link_name in routes[rack].links:
                link_free[link_name] -= chain.slo.t_min

    assignment: Dict[str, str] = {}
    # Heaviest chains first (FFD); pinned chains commit before free ones.
    order = sorted(
        chains, key=lambda c: (c.name not in pins, -c.slo.t_min, c.name)
    )
    for chain in order:
        if chain.name in pins:
            rack = pins[chain.name]
            reason = eligibility(chain, rack)
            if reason is not None:
                raise PartitionError(
                    f"pinned chain {chain.name!r} does not fit its rack — "
                    f"{reason}"
                )
            commit(chain, rack)
            continue
        reasons = []
        placed = False
        for rack in candidate_racks():
            reason = eligibility(chain, rack)
            if reason is None:
                commit(chain, rack)
                placed = True
                break
            reasons.append(reason)
        if not placed:
            raise PartitionError(
                f"no rack fits chain {chain.name!r}: " + "; ".join(reasons)
            )

    result = PartitionResult(
        assignment={c.name: assignment[c.name] for c in chains},
        routes=routes,
        core_demand=demand,
        method="greedy",
    )

    if refine and len(fabric.racks) > 1 and len(chains) > 1:
        refined = _lp_refine(chains, fabric, routes, demand, pins, result)
        if refined is not None:
            result = refined

    result.spills = sum(
        1 for rack in result.assignment.values() if rack != fabric.ingress
    )
    result.seconds = time.perf_counter() - started
    if registry is not None:
        for rack in fabric.racks:
            registry.gauge("partition.chains", rack=rack).set(
                len(result.chains_for(rack))
            )
        registry.counter("partition.spills").inc(result.spills)
        registry.histogram("partition.seconds").observe(result.seconds)
    return result


def _rack_freq(fabric: MultiRackTopology, rack: str) -> float:
    topo = fabric.racks[rack]
    if topo.servers:
        return topo.servers[0].freq_hz
    return 1.7e9


def _lp_refine(
    chains: List[NFChain],
    fabric: MultiRackTopology,
    routes: Dict[str, RackRoute],
    demand: Dict[str, int],
    pins: Dict[str, str],
    greedy: PartitionResult,
) -> Optional[PartitionResult]:
    """Fractional relaxation: min Σ cost(c,r)·x_{c,r} s.t. capacity.

    Cost is the chain's RTT penalty on rack r (plus a tiny constant for
    any spill so the LP prefers the ingress when capacity allows).
    Deterministic rounding takes the argmax rack per chain; if the
    rounded assignment violates any capacity, the greedy result stands.
    """
    try:
        from scipy.optimize import linprog
    except Exception:  # pragma: no cover - scipy is baked into the image
        return None

    racks = list(fabric.racks)
    eligible: Dict[Tuple[str, str], int] = {}
    costs: List[float] = []
    index = 0
    for chain in chains:
        for rack in racks:
            if chain.name in pins and pins[chain.name] != rack:
                continue
            route = routes.get(rack)
            if route is None:
                continue
            if rack != fabric.ingress and route.rtt_us >= chain.slo.d_max:
                continue
            eligible[(chain.name, rack)] = index
            spill_penalty = 0.0 if rack == fabric.ingress else 1.0
            costs.append(route.rtt_us + spill_penalty)
            index += 1
    if index == 0:
        return None

    n = index
    a_eq, b_eq = [], []
    for chain in chains:
        row = [0.0] * n
        any_var = False
        for rack in racks:
            j = eligible.get((chain.name, rack))
            if j is not None:
                row[j] = 1.0
                any_var = True
        if not any_var:
            return None
        a_eq.append(row)
        b_eq.append(1.0)

    a_ub, b_ub = [], []
    for rack in racks:
        row = [0.0] * n
        for chain in chains:
            j = eligible.get((chain.name, rack))
            if j is not None:
                row[j] = float(demand[chain.name])
        a_ub.append(row)
        b_ub.append(float(fabric.racks[rack].total_server_cores()))
    for link in fabric.links:
        row = [0.0] * n
        for chain in chains:
            for rack in racks:
                j = eligible.get((chain.name, rack))
                if j is None or rack == fabric.ingress:
                    continue
                if link.name in routes[rack].links:
                    row[j] = chain.slo.t_min
        if any(row):
            a_ub.append(row)
            b_ub.append(link.capacity_mbps)

    res = linprog(
        c=costs,
        A_eq=a_eq,
        b_eq=b_eq,
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=[(0.0, 1.0)] * n,
        method="highs",
    )
    if not res.success:
        return None

    # Deterministic rounding: per chain, the eligible rack with the
    # largest fraction; ties break toward the ingress then rack name.
    assignment: Dict[str, str] = {}
    for chain in chains:
        best = None
        for rack in racks:
            j = eligible.get((chain.name, rack))
            if j is None:
                continue
            frac = res.x[j]
            key = (-round(frac, 9), rack != fabric.ingress, rack)
            if best is None or key < best[0]:
                best = (key, rack)
        assignment[chain.name] = best[1]

    # Validate the rounded assignment against the hard capacities.
    cores_used = {rack: 0 for rack in racks}
    link_used = {link.name: 0.0 for link in fabric.links}
    for chain in chains:
        rack = assignment[chain.name]
        cores_used[rack] += demand[chain.name]
        if rack != fabric.ingress:
            for link_name in routes[rack].links:
                link_used[link_name] += chain.slo.t_min
    for rack in racks:
        if cores_used[rack] > fabric.racks[rack].total_server_cores():
            return None
    for link in fabric.links:
        if link_used[link.name] > link.capacity_mbps:
            return None

    return PartitionResult(
        assignment=assignment,
        routes=routes,
        core_demand=demand,
        method="greedy+lp",
    )


__all__ = [
    "RackRoute",
    "PartitionResult",
    "fabric_routes",
    "chain_core_demand",
    "partition_chains",
]
