"""Placement-pattern enumeration (§3.2 "Enumerating Placement Patterns").

A pattern assigns each NF node a platform; the space is constrained by NF
availability (Table 3) and the devices present in the topology. Patterns
are enumerated with canonical device names (the first server / SmartNIC);
multi-server balancing happens later at subgroup granularity.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional

from repro.chain.graph import NFChain
from repro.core.placement import NodeAssignment
from repro.exceptions import PlacementError
from repro.hw.platform import Platform
from repro.hw.topology import Topology


def node_options(
    chain: NFChain,
    node_id: str,
    topology: Topology,
) -> List[NodeAssignment]:
    """Assignments available to one NF in this topology.

    Order matters: it encodes the hardware preference (PISA, then OpenFlow,
    then SmartNIC, then server) that greedy schemes rely on.
    """
    node = chain.graph.nodes[node_id]
    options: List[NodeAssignment] = []
    switch = topology.switch
    if (switch.platform is Platform.PISA
            and node.info.available_on(Platform.PISA)
            and switch.name not in topology.failed_devices):
        options.append(NodeAssignment(Platform.PISA, switch.name))
    if (switch.platform is Platform.OPENFLOW
            and node.info.available_on(Platform.OPENFLOW)
            and switch.name not in topology.failed_devices):
        options.append(NodeAssignment(Platform.OPENFLOW, switch.name))
    if node.info.available_on(Platform.SMARTNIC):
        for nic in topology.devices_for(Platform.SMARTNIC):
            options.append(NodeAssignment(Platform.SMARTNIC, nic.name))
            break  # canonical NIC; others considered during rebalancing
    if node.info.available_on(Platform.SERVER):
        servers = topology.devices_for(Platform.SERVER)
        if servers:
            options.append(NodeAssignment(Platform.SERVER, servers[0].name))
    if not options:
        raise PlacementError(
            f"NF {node.nf_class} ({node_id}) has no implementation on any "
            f"device in this topology"
        )
    return options


def enumerate_patterns(
    chain: NFChain,
    topology: Topology,
    limit: int = 100_000,
) -> Iterator[Dict[str, NodeAssignment]]:
    """Yield every feasible platform pattern for one chain (bounded).

    Raises :class:`PlacementError` if the space exceeds ``limit`` — callers
    should prune via :func:`dedupe_patterns` or sample instead.
    """
    order = chain.graph.topological_order()
    options = [node_options(chain, nid, topology) for nid in order]
    total = 1
    for opts in options:
        total *= len(opts)
    if total > limit:
        raise PlacementError(
            f"chain {chain.name}: {total} patterns exceed the enumeration "
            f"limit ({limit})"
        )
    for combo in itertools.product(*options):
        yield dict(zip(order, combo))


def pattern_signature(assignment: Dict[str, NodeAssignment]) -> tuple:
    """Hashable identity of a pattern (for deduplication)."""
    return tuple(sorted(
        (nid, a.platform.value, a.device) for nid, a in assignment.items()
    ))


def preferred_assignment(
    chain: NFChain,
    topology: Topology,
    prefer: str = "hw",
) -> Dict[str, NodeAssignment]:
    """Single-pattern construction for greedy schemes.

    ``hw`` takes each node's most-accelerated option (PISA/OF first);
    ``sw`` places every NF with a software implementation on a server,
    falling back to hardware only when no software version exists
    (IPv4Fwd, which is P4-only in the evaluation).
    """
    assignment: Dict[str, NodeAssignment] = {}
    for nid in chain.graph.topological_order():
        options = node_options(chain, nid, topology)
        if prefer == "hw":
            assignment[nid] = options[0]
        elif prefer == "sw":
            server_opts = [
                o for o in options if o.platform is Platform.SERVER
            ]
            assignment[nid] = server_opts[0] if server_opts else options[0]
        else:
            raise PlacementError(f"unknown preference {prefer!r}")
    return assignment
