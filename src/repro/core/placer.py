"""Top-level Placer API (§3).

:class:`Placer` bundles the topology, profile database, and configuration;
``place()`` runs the selected strategy. Extensions from the paper's
discussion section are provided: failure replanning (§7) and precomputed
placements for time-varying SLOs (§7).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.chain.graph import NFChain
from repro.chain.slo import SLO
from repro.core.ablations import no_core_allocation_place, no_profiling_place
from repro.core.baselines import (
    greedy_place,
    hw_preferred_place,
    min_bounce_place,
    sw_preferred_place,
)
from repro.core.bruteforce import brute_force_place
from repro.core.heuristic import heuristic_place
from repro.core.placement import Placement
from repro.exceptions import PlacementError
from repro.hw.topology import Topology, default_testbed
from repro.obs import get_registry
from repro.profiles.defaults import ProfileDatabase, default_profiles
from repro.units import DEFAULT_PACKET_BITS


@dataclass
class PlacerConfig:
    """Knobs for the Placer.

    ``rate_objective`` selects how the rate LP splits burst headroom:
    ``marginal`` (the paper's revenue objective) or ``max_min``
    (progressive-filling fairness — §2 footnote 2's future-work item).
    """

    packet_bytes: int = 1500
    strategy: str = "lemur"
    rate_objective: str = "marginal"

    @property
    def packet_bits(self) -> int:
        return self.packet_bytes * 8


#: strategy name -> placement function
_STRATEGIES: Dict[str, Callable[..., Placement]] = {
    "lemur": heuristic_place,
    "optimal": brute_force_place,
    "hw-preferred": hw_preferred_place,
    "sw-preferred": sw_preferred_place,
    "min-bounce": min_bounce_place,
    "greedy": greedy_place,
    "no-profiling": no_profiling_place,
    "no-core-allocation": no_core_allocation_place,
}


def available_strategies() -> List[str]:
    return sorted(_STRATEGIES)


@dataclass
class Placer:
    """The Lemur Placer.

    >>> placer = Placer()
    >>> placement = placer.place(chains)      # doctest: +SKIP
    """

    topology: Topology = field(default_factory=default_testbed)
    profiles: ProfileDatabase = field(default_factory=default_profiles)
    config: PlacerConfig = field(default_factory=PlacerConfig)

    def place(
        self,
        chains: Sequence[NFChain],
        strategy: Optional[str] = None,
    ) -> Placement:
        """Place chains; returns a (possibly infeasible) Placement."""
        name = strategy or self.config.strategy
        fn = _STRATEGIES.get(name)
        if fn is None:
            raise PlacementError(
                f"unknown strategy {name!r}; choose from {available_strategies()}"
            )
        registry = get_registry()
        with registry.timer("placer.place.seconds", strategy=name):
            placement = fn(
                list(chains), self.topology, self.profiles,
                packet_bits=self.config.packet_bits,
            )
            if placement.feasible and self.config.rate_objective != "marginal":
                # Rate assignment is a policy over the decided configuration:
                # re-split the burst headroom under the configured objective.
                from repro.core.lp import solve_rates

                solution = solve_rates(
                    placement.chains, self.topology,
                    objective=self.config.rate_objective,
                )
                if solution.feasible:
                    placement.rates = solution.rates
                    placement.objective_mbps = solution.objective_mbps
        registry.counter(
            "placer.placements", strategy=name,
            feasible=str(placement.feasible).lower(),
        ).inc()
        return placement

    def place_timed(
        self, chains: Sequence[NFChain], strategy: Optional[str] = None
    ) -> Tuple[Placement, float]:
        """Place and report wall-clock seconds (the §5.3 scaling metric)."""
        start = time.perf_counter()
        placement = self.place(chains, strategy)
        return placement, time.perf_counter() - start

    # -- §7 extensions --------------------------------------------------------

    def replan_after_failure(
        self,
        chains: Sequence[NFChain],
        failed_device: str,
        strategy: Optional[str] = None,
    ) -> Placement:
        """Re-place chains with a device marked failed (§7 Failures).

        If on-path hardware fails, Lemur "can always fall back to using
        server-based NFs"; the Placer simply re-runs without the device.

        Devices that were already marked failed before the call stay
        failed afterwards — only the membership this call added is rolled
        back.
        """
        already_failed = failed_device in self.topology.failed_devices
        self.topology.mark_failed(failed_device)
        try:
            return self.place(chains, strategy)
        finally:
            if not already_failed:
                self.topology.failed_devices.discard(failed_device)

    def place_with_reserve(
        self,
        chains: Sequence[NFChain],
        reserve_cores: int = 2,
        strategy: Optional[str] = None,
    ) -> Placement:
        """Place while holding back spare server capacity (§7 Failures).

        "Its Placer can make these decisions ... proactively (perhaps by
        reserving some spare capacity to ensure fast failover)." Each
        server's allocatable budget shrinks by ``reserve_cores`` during
        placement; the reserve stays free for reactive failover.
        """
        if reserve_cores < 0:
            raise PlacementError("reserve_cores must be non-negative")
        originals = {s.name: s.reserved_cores for s in self.topology.servers}
        try:
            for server in self.topology.servers:
                server.reserved_cores = originals[server.name] + reserve_cores
                if server.reserved_cores >= server.total_cores:
                    raise PlacementError(
                        f"reserve of {reserve_cores} cores leaves server "
                        f"{server.name} with no allocatable cores"
                    )
            return self.place(chains, strategy)
        finally:
            for server in self.topology.servers:
                server.reserved_cores = originals[server.name]

    def precompute_slo_schedule(
        self,
        chains: Sequence[NFChain],
        slo_schedule: Dict[str, List[SLO]],
        strategy: Optional[str] = None,
    ) -> List[Placement]:
        """Precompute placements for time-varying SLOs (§7 Dynamics).

        ``slo_schedule`` maps chain name to one SLO per time slot; every
        chain must provide the same number of slots. Returns one placement
        per slot, ready to be installed on schedule.
        """
        lengths = {len(v) for v in slo_schedule.values()}
        if len(lengths) != 1:
            raise PlacementError(
                "all chains must provide the same number of SLO time slots"
            )
        (n_slots,) = lengths
        placements: List[Placement] = []
        for slot in range(n_slots):
            slot_chains = []
            for chain in chains:
                slos = slo_schedule.get(chain.name)
                if slos is None:
                    raise PlacementError(
                        f"no SLO schedule for chain {chain.name!r}"
                    )
                slot_chains.append(chain.with_slo(slos[slot]))
            placements.append(self.place(slot_chains, strategy))
        return placements
