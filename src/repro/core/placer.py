"""Top-level Placer API (§3).

:class:`Placer` bundles the topology, profile database, and configuration;
:meth:`Placer.solve` takes a :class:`PlacementRequest` (strategy, failover
reserve, failed devices) and returns a :class:`PlacementReport` (placement,
wall-clock seconds, cache provenance). Extensions from the paper's
discussion section are provided: failure replanning (§7) and precomputed
placements for time-varying SLOs (§7).

The legacy per-scenario methods (``place``, ``place_timed``,
``place_with_reserve``, ``replan_after_failure``) remain as thin deprecated
wrappers over ``solve``.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.chain.graph import NFChain
from repro.chain.slo import SLO
from repro.core.ablations import no_core_allocation_place, no_profiling_place
from repro.core.baselines import (
    greedy_place,
    hw_preferred_place,
    min_bounce_place,
    sw_preferred_place,
)
from repro.core.bruteforce import brute_force_place
from repro.core.cache import PlacementCache, placement_fingerprint
from repro.core.heuristic import heuristic_place
from repro.core.placement import Placement
from repro.exceptions import PlacementError
from repro.hw.topology import Topology, default_testbed
from repro.obs import get_registry
from repro.profiles.defaults import ProfileDatabase, default_profiles


@dataclass
class PlacerConfig:
    """Knobs for the Placer.

    ``rate_objective`` selects how the rate LP splits burst headroom:
    ``marginal`` (the paper's revenue objective) or ``max_min``
    (progressive-filling fairness — §2 footnote 2's future-work item).
    """

    packet_bytes: int = 1500
    strategy: str = "lemur"
    rate_objective: str = "marginal"

    @property
    def packet_bits(self) -> int:
        return self.packet_bytes * 8


#: strategy name -> placement function
_STRATEGIES: Dict[str, Callable[..., Placement]] = {
    "lemur": heuristic_place,
    "optimal": brute_force_place,
    "hw-preferred": hw_preferred_place,
    "sw-preferred": sw_preferred_place,
    "min-bounce": min_bounce_place,
    "greedy": greedy_place,
    "no-profiling": no_profiling_place,
    "no-core-allocation": no_core_allocation_place,
}


def available_strategies() -> List[str]:
    return sorted(_STRATEGIES)


@dataclass
class PlacementRequest:
    """One placement problem, fully stated.

    ``reserve_cores`` holds back spare per-server capacity for failover
    (§7); ``failed_devices`` are taken out of service for this solve only
    (§7 failure replanning); ``use_cache`` consults the Placer's placement
    cache (when one is attached) before solving.
    """

    chains: Sequence[NFChain]
    strategy: Optional[str] = None
    reserve_cores: int = 0
    failed_devices: Sequence[str] = ()
    use_cache: bool = True


@dataclass
class PlacementReport:
    """What one solve produced: result, wall clock, cache provenance."""

    placement: Placement
    seconds: float
    strategy: str
    cache_hit: bool = False
    fingerprint: Optional[str] = None


#: wrapper names that have already warned this process (warn-once policy:
#: a sweep calling a legacy method per cell should not flood stderr).
_WARNED: set = set()


def _deprecated(old: str) -> None:
    if old in _WARNED:
        return
    _WARNED.add(old)
    warnings.warn(
        f"Placer.{old} is deprecated; use "
        "Placer.solve(PlacementRequest(...)) instead",
        DeprecationWarning, stacklevel=3,
    )


def _reset_deprecation_warnings() -> None:
    """Re-arm the warn-once latch (test isolation)."""
    _WARNED.clear()


@dataclass
class Placer:
    """The Lemur Placer.

    >>> placer = Placer()
    >>> report = placer.solve(PlacementRequest(chains))   # doctest: +SKIP
    >>> report.placement.feasible                         # doctest: +SKIP

    ``cache`` (optional) memoizes solves by problem fingerprint — repeated
    requests over identical inputs (sweeps, replans, reserve re-solves)
    return the cached placement with ``cache_hit=True`` in the report.
    """

    topology: Topology = field(default_factory=default_testbed)
    profiles: ProfileDatabase = field(default_factory=default_profiles)
    config: PlacerConfig = field(default_factory=PlacerConfig)
    cache: Optional[PlacementCache] = None

    def solve(self, request: PlacementRequest) -> PlacementReport:
        """Solve one placement request; the single placement entry point.

        Applies the request's failure/reserve adjustments to the topology
        for the duration of the solve (state added by this call is rolled
        back afterwards), consults the cache when enabled, runs the
        selected strategy, and reports wall-clock plus provenance.
        """
        name = request.strategy or self.config.strategy
        fn = _STRATEGIES.get(name)
        if fn is None:
            raise PlacementError(
                f"unknown strategy {name!r}; choose from {available_strategies()}"
            )
        if request.reserve_cores < 0:
            raise PlacementError("reserve_cores must be non-negative")
        registry = get_registry()
        start = time.perf_counter()
        added_failures: List[str] = []
        originals = {s.name: s.reserved_cores for s in self.topology.servers}
        cache_hit = False
        fingerprint: Optional[str] = None
        try:
            for device in request.failed_devices:
                if device not in self.topology.failed_devices:
                    self.topology.mark_failed(device)
                    added_failures.append(device)
            if request.reserve_cores:
                for server in self.topology.servers:
                    server.reserved_cores = (
                        originals[server.name] + request.reserve_cores
                    )
                    if server.reserved_cores >= server.total_cores:
                        raise PlacementError(
                            f"reserve of {request.reserve_cores} cores leaves "
                            f"server {server.name} with no allocatable cores"
                        )
            cache = self.cache if request.use_cache else None
            if cache is not None:
                # The fingerprint is taken *after* the failure/reserve
                # adjustments, so those scenario knobs are part of the key.
                fingerprint = placement_fingerprint(
                    request.chains, self.topology, self.profiles,
                    name, self.config.packet_bits,
                    extra=("rate_objective", self.config.rate_objective),
                )
                cached = cache.get(fingerprint)
                if cached is not None:
                    placement = cached
                    cache_hit = True
            if not cache_hit:
                with registry.timer("placer.place.seconds", strategy=name):
                    placement = fn(
                        list(request.chains), self.topology, self.profiles,
                        packet_bits=self.config.packet_bits,
                    )
                    if placement.feasible and \
                            self.config.rate_objective != "marginal":
                        # Rate assignment is a policy over the decided
                        # configuration: re-split the burst headroom under
                        # the configured objective.
                        from repro.core.lp import solve_rates

                        solution = solve_rates(
                            placement.chains, self.topology,
                            objective=self.config.rate_objective,
                        )
                        if solution.feasible:
                            placement.rates = solution.rates
                            placement.objective_mbps = solution.objective_mbps
                if cache is not None:
                    cache.put(fingerprint, placement)
        finally:
            for device in added_failures:
                self.topology.failed_devices.discard(device)
            for server in self.topology.servers:
                server.reserved_cores = originals[server.name]
        registry.counter(
            "placer.placements", strategy=name,
            feasible=str(placement.feasible).lower(),
        ).inc()
        return PlacementReport(
            placement=placement,
            seconds=time.perf_counter() - start,
            strategy=name,
            cache_hit=cache_hit,
            fingerprint=fingerprint,
        )

    # -- deprecated wrappers --------------------------------------------------

    def place(
        self,
        chains: Sequence[NFChain],
        strategy: Optional[str] = None,
    ) -> Placement:
        """Deprecated: use :meth:`solve`."""
        _deprecated("place")
        return self.solve(
            PlacementRequest(chains=chains, strategy=strategy)
        ).placement

    def place_timed(
        self, chains: Sequence[NFChain], strategy: Optional[str] = None
    ) -> Tuple[Placement, float]:
        """Deprecated: use :meth:`solve` (the report carries seconds)."""
        _deprecated("place_timed")
        report = self.solve(PlacementRequest(chains=chains, strategy=strategy))
        return report.placement, report.seconds

    def replan_after_failure(
        self,
        chains: Sequence[NFChain],
        failed_device: str,
        strategy: Optional[str] = None,
    ) -> Placement:
        """Deprecated: use :meth:`solve` with ``failed_devices`` (§7).

        If on-path hardware fails, Lemur "can always fall back to using
        server-based NFs"; the Placer simply re-runs without the device.
        """
        _deprecated("replan_after_failure")
        return self.solve(PlacementRequest(
            chains=chains, strategy=strategy,
            failed_devices=(failed_device,),
        )).placement

    def place_with_reserve(
        self,
        chains: Sequence[NFChain],
        reserve_cores: int = 2,
        strategy: Optional[str] = None,
    ) -> Placement:
        """Deprecated: use :meth:`solve` with ``reserve_cores`` (§7).

        "Its Placer can make these decisions ... proactively (perhaps by
        reserving some spare capacity to ensure fast failover)."
        """
        _deprecated("place_with_reserve")
        return self.solve(PlacementRequest(
            chains=chains, strategy=strategy, reserve_cores=reserve_cores,
        )).placement

    def precompute_slo_schedule(
        self,
        chains: Sequence[NFChain],
        slo_schedule: Dict[str, List[SLO]],
        strategy: Optional[str] = None,
    ) -> List[Placement]:
        """Precompute placements for time-varying SLOs (§7 Dynamics).

        ``slo_schedule`` maps chain name to one SLO per time slot; every
        chain must provide the same number of slots. Returns one placement
        per slot, ready to be installed on schedule.
        """
        lengths = {len(v) for v in slo_schedule.values()}
        if len(lengths) != 1:
            raise PlacementError(
                "all chains must provide the same number of SLO time slots"
            )
        (n_slots,) = lengths
        placements: List[Placement] = []
        for slot in range(n_slots):
            slot_chains = []
            for chain in chains:
                slos = slo_schedule.get(chain.name)
                if slos is None:
                    raise PlacementError(
                        f"no SLO schedule for chain {chain.name!r}"
                    )
                slot_chains.append(chain.with_slo(slos[slot]))
            placements.append(self.solve(PlacementRequest(
                chains=slot_chains, strategy=strategy,
            )).placement)
        return placements
