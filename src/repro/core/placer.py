"""Top-level Placer API (§3).

:class:`Placer` bundles the topology, profile database, and configuration;
:meth:`Placer.solve` takes a :class:`PlacementRequest` (strategy, failover
reserve, failed devices, optional warm-start placement) and returns a
:class:`PlacementReport` (placement, wall-clock seconds, solve mode, cache
provenance). Extensions from the paper's discussion section are provided:
failure replanning (§7) and precomputed placements for time-varying SLOs
(§7).

``solve`` is the only placement entry point. A request carrying
``base_placement`` takes the *incremental* path: chains already present in
the base keep their NF→device assignments and core allocations (their
estimates are merely refreshed, so SLO changes are picked up), only the
delta chains are placed — against the residual core capacity — and the
rate LP is re-solved over the combined chain set.
"""

from __future__ import annotations

import inspect
import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.chain.graph import NFChain
from repro.chain.slo import SLO
from repro.core.ablations import no_core_allocation_place, no_profiling_place
from repro.core.baselines import (
    greedy_place,
    hw_preferred_place,
    min_bounce_place,
    sw_preferred_place,
)
from repro.core.bruteforce import brute_force_place
from repro.core.cache import (
    PlacementCache,
    placement_fingerprint,
    warm_start_key,
)
from repro.core.heuristic import heuristic_place
from repro.core.placement import ChainPlacement, Placement
from repro.exceptions import PlacementError
from repro.hw.spec import topology_for
from repro.hw.topology import Topology
from repro.obs import get_registry
from repro.profiles.defaults import ProfileDatabase, default_profiles


#: placement objectives a request may select (see :class:`PlacementRequest`).
PLACEMENT_OBJECTIVES = ("throughput", "tail_latency")


@dataclass
class PlacerConfig:
    """Knobs for the Placer.

    ``rate_objective`` selects how the rate LP splits burst headroom:
    ``marginal`` (the paper's revenue objective) or ``max_min``
    (progressive-filling fairness — §2 footnote 2's future-work item).
    ``objective`` is the default placement objective (overridable per
    request): ``throughput`` is the paper's maximize-marginal-rate goal;
    ``tail_latency`` additionally caps per-device compute utilization at
    ``tail_utilization_cap`` so no placed core runs hot enough for the
    M/M/1 queueing wait to blow the chain's ``d_max`` tail SLO.
    """

    packet_bytes: int = 1500
    strategy: str = "lemur"
    rate_objective: str = "marginal"
    objective: str = "throughput"
    #: per-device utilization ceiling under the ``tail_latency`` objective
    #: (ρ = 0.7 ⇒ M/M/1 wait factor ρ/(1−ρ) ≈ 2.33× service time).
    tail_utilization_cap: float = 0.7

    @property
    def packet_bits(self) -> int:
        return self.packet_bytes * 8


#: strategy name -> placement function
_STRATEGIES: Dict[str, Callable[..., Placement]] = {
    "lemur": heuristic_place,
    "optimal": brute_force_place,
    "hw-preferred": hw_preferred_place,
    "sw-preferred": sw_preferred_place,
    "min-bounce": min_bounce_place,
    "greedy": greedy_place,
    "no-profiling": no_profiling_place,
    "no-core-allocation": no_core_allocation_place,
}


def available_strategies() -> List[str]:
    return sorted(_STRATEGIES)


@dataclass(frozen=True)
class MultiRackOptions:
    """Hierarchical-solve options a multi-rack request carries.

    ``jobs`` fans the per-rack solves over the persistent worker pool
    (1 = serial; results are byte-identical either way). ``rack_pins``
    forces chains onto named racks (``(("chain", "rack"), ...)``) — the
    lifecycle engine pins already-admitted chains to their home rack so
    a re-solve never silently migrates them. ``ingress`` overrides the
    fabric's ingress rack for latency budgeting.
    """

    jobs: int = 1
    rack_pins: Tuple[Tuple[str, str], ...] = ()
    ingress: Optional[str] = None

    def pins(self) -> Dict[str, str]:
        return dict(self.rack_pins)


@dataclass
class PlacementRequest:
    """One placement problem, fully stated.

    Flag combinations (validated at construction):

    ==================  =====================================================
    field               meaning / constraints
    ==================  =====================================================
    ``chains``          the chain set to place (with SLOs attached)
    ``strategy``        overrides the Placer's configured strategy; must
                        name a registered strategy
    ``reserve_cores``   per-server failover head-room (§7); ``>= 0``;
                        **mutually exclusive** with ``base_placement``
                        (a warm start inherits the base's capacity picture)
    ``failed_devices``  devices out of service for this solve (§7 failure
                        replanning); **mutually exclusive** with
                        ``base_placement`` (replan after failure is a full
                        re-solve — pinned assignments may sit on the dead
                        device)
    ``use_cache``       consult the Placer's placement cache before solving
    ``base_placement``  warm-start: chains present in the base keep their
                        pattern and cores, only the delta is placed, and
                        the rate LP re-runs over the combined set (the
                        lifecycle arrival/scale/departure path); must be
                        feasible
    ``objective``       overrides the config's placement objective
                        (``throughput`` or ``tail_latency``)
    ``multi_rack``      hierarchical-solve options; only
                        :meth:`repro.core.hierarchy.MultiRackPlacer.solve`
                        accepts such a request (a single-rack
                        :class:`Placer` rejects it with a typed error).
                        Build one with :meth:`PlacementRequest.multi_rack`.
    ==================  =====================================================
    """

    chains: Sequence[NFChain]
    strategy: Optional[str] = None
    reserve_cores: int = 0
    failed_devices: Sequence[str] = ()
    use_cache: bool = True
    base_placement: Optional[Placement] = None
    objective: Optional[str] = None
    multi_rack: Optional[MultiRackOptions] = None

    def __post_init__(self) -> None:
        if self.strategy is not None and self.strategy not in _STRATEGIES:
            raise PlacementError(
                f"unknown strategy {self.strategy!r}; "
                f"choose from {available_strategies()}"
            )
        if self.reserve_cores < 0:
            raise PlacementError("reserve_cores must be non-negative")
        if self.objective is not None \
                and self.objective not in PLACEMENT_OBJECTIVES:
            raise PlacementError(
                f"unknown placement objective {self.objective!r}; "
                f"choose from {list(PLACEMENT_OBJECTIVES)}"
            )
        if self.base_placement is not None:
            if self.failed_devices:
                raise PlacementError(
                    "base_placement and failed_devices are mutually "
                    "exclusive: replanning after a failure is a full "
                    "re-solve (pinned assignments may sit on the dead "
                    "device)"
                )
            if self.reserve_cores:
                raise PlacementError(
                    "base_placement and reserve_cores are mutually "
                    "exclusive: a warm start inherits the base's "
                    "capacity picture"
                )
            if not self.base_placement.feasible:
                raise PlacementError(
                    "base_placement must be feasible to warm-start a solve"
                )
        if self.multi_rack is not None and self.multi_rack.jobs < 1:
            raise PlacementError("multi_rack jobs must be >= 1")


def _multi_rack_request(
    cls,
    chains: Sequence[NFChain],
    *,
    jobs: int = 1,
    rack_pins: Optional[Dict[str, str]] = None,
    ingress: Optional[str] = None,
    strategy: Optional[str] = None,
    objective: Optional[str] = None,
    use_cache: bool = True,
) -> "PlacementRequest":
    """A hierarchical (partition-then-place) request for a
    :class:`~repro.core.hierarchy.MultiRackPlacer`."""
    options = MultiRackOptions(
        jobs=jobs,
        rack_pins=tuple(sorted((rack_pins or {}).items())),
        ingress=ingress,
    )
    return cls(
        chains=chains, strategy=strategy, objective=objective,
        use_cache=use_cache, multi_rack=options,
    )


# Attached after class creation: the dataclass machinery has already
# captured the ``multi_rack`` *field* default (None) into ``__init__``,
# so the class attribute is free to carry the alternate constructor of
# the same name (``PlacementRequest.multi_rack(chains, jobs=4)``).
PlacementRequest.multi_rack = classmethod(_multi_rack_request)


@dataclass
class PlacementReport:
    """What one solve produced: result, wall clock, cache provenance.

    ``mode`` records which path ran (``full`` or ``incremental``);
    ``pinned_chains``/``placed_chains`` break the incremental path down.
    """

    placement: Placement
    seconds: float
    strategy: str
    cache_hit: bool = False
    fingerprint: Optional[str] = None
    mode: str = "full"
    pinned_chains: int = 0
    placed_chains: int = 0


@dataclass
class Placer:
    """The Lemur Placer.

    >>> placer = Placer()
    >>> report = placer.solve(PlacementRequest(chains))   # doctest: +SKIP
    >>> report.placement.feasible                         # doctest: +SKIP

    ``cache`` (optional) memoizes solves by problem fingerprint — repeated
    requests over identical inputs (sweeps, replans, reserve re-solves)
    return the cached placement with ``cache_hit=True`` in the report.
    """

    topology: Topology = field(
        default_factory=lambda: topology_for("paper-testbed").build()
    )
    profiles: ProfileDatabase = field(default_factory=default_profiles)
    config: PlacerConfig = field(default_factory=PlacerConfig)
    cache: Optional[PlacementCache] = None

    def solve(self, request: PlacementRequest) -> PlacementReport:
        """Solve one placement request; the single placement entry point.

        Applies the request's failure/reserve adjustments to the topology
        for the duration of the solve (state added by this call is rolled
        back afterwards), consults the cache when enabled, runs the
        selected strategy — incrementally when the request carries a
        ``base_placement`` — and reports wall-clock plus provenance.
        """
        if request.multi_rack is not None:
            raise PlacementError(
                "this request carries multi_rack options; a single-rack "
                "Placer cannot solve it — use "
                "repro.core.hierarchy.MultiRackPlacer.solve"
            )
        name = request.strategy or self.config.strategy
        fn = _STRATEGIES.get(name)
        if fn is None:
            raise PlacementError(
                f"unknown strategy {name!r}; choose from {available_strategies()}"
            )
        objective = request.objective or self.config.objective
        if objective not in PLACEMENT_OBJECTIVES:
            raise PlacementError(
                f"unknown placement objective {objective!r}; "
                f"choose from {list(PLACEMENT_OBJECTIVES)}"
            )
        utilization_cap = (
            self.config.tail_utilization_cap
            if objective == "tail_latency" else None
        )
        if request.reserve_cores < 0:
            raise PlacementError("reserve_cores must be non-negative")
        base = request.base_placement
        if base is not None and not base.feasible:
            raise PlacementError(
                "base_placement must be feasible to warm-start a solve"
            )
        mode = "incremental" if base is not None else "full"
        registry = get_registry()
        start = time.perf_counter()
        added_failures: List[str] = []
        originals = {s.name: s.reserved_cores for s in self.topology.servers}
        cache_hit = False
        fingerprint: Optional[str] = None
        pinned = placed = 0
        try:
            for device in request.failed_devices:
                if device not in self.topology.failed_devices:
                    self.topology.mark_failed(device)
                    added_failures.append(device)
            if request.reserve_cores:
                for server in self.topology.servers:
                    server.reserved_cores = (
                        originals[server.name] + request.reserve_cores
                    )
                    if server.reserved_cores >= server.total_cores:
                        raise PlacementError(
                            f"reserve of {request.reserve_cores} cores leaves "
                            f"server {server.name} with no allocatable cores"
                        )
            cache = self.cache if request.use_cache else None
            if cache is not None:
                # The fingerprint is taken *after* the failure/reserve
                # adjustments, so those scenario knobs are part of the key.
                # The chain set itself is always part of the key, so the
                # active chains at each lifecycle step partition the cache;
                # a warm start additionally keys on the base's pattern.
                extra: Tuple = (
                    "rate_objective", self.config.rate_objective,
                    "objective", objective,
                )
                if base is not None:
                    extra += ("warm_start", warm_start_key(base))
                fingerprint = placement_fingerprint(
                    request.chains, self.topology, self.profiles,
                    name, self.config.packet_bits, extra=extra,
                )
                cached = cache.get(fingerprint)
                if cached is not None:
                    placement = cached
                    cache_hit = True
            if not cache_hit:
                with registry.timer("placer.solve.seconds",
                                    strategy=name, mode=mode):
                    if base is not None:
                        placement, pinned, placed = self._solve_incremental(
                            request, base, name, fn
                        )
                    else:
                        with registry.timer("placer.place.seconds",
                                            strategy=name):
                            placement = fn(
                                list(request.chains), self.topology,
                                self.profiles,
                                packet_bits=self.config.packet_bits,
                            )
                    if placement.feasible and (
                            self.config.rate_objective != "marginal"
                            or utilization_cap is not None):
                        # Rate assignment is a policy over the decided
                        # configuration: re-split the burst headroom under
                        # the configured objective (and, for tail_latency,
                        # the utilization cap).
                        from repro.core.lp import solve_rates

                        solution = solve_rates(
                            placement.chains, self.topology,
                            objective=self.config.rate_objective,
                            utilization_cap=utilization_cap,
                            packet_bits=self.config.packet_bits,
                        )
                        if solution.feasible:
                            placement.rates = solution.rates
                            placement.objective_mbps = solution.objective_mbps
                        elif utilization_cap is not None:
                            # The t_min floors alone exceed the cap — the
                            # rack cannot hold the tail SLO at any rate
                            # split; surface the LP's binding reason.
                            placement.feasible = False
                            placement.infeasible_reason = solution.reason
                    if placement.feasible and utilization_cap is not None:
                        self._enforce_tail_slos(placement)
                if cache is not None:
                    cache.put(fingerprint, placement)
        finally:
            for device in added_failures:
                self.topology.failed_devices.discard(device)
            for server in self.topology.servers:
                server.reserved_cores = originals[server.name]
        registry.counter(
            "placer.placements", strategy=name,
            feasible=str(placement.feasible).lower(),
        ).inc()
        return PlacementReport(
            placement=placement,
            seconds=time.perf_counter() - start,
            strategy=name,
            cache_hit=cache_hit,
            fingerprint=fingerprint,
            mode=mode,
            pinned_chains=pinned,
            placed_chains=placed,
        )

    def _solve_incremental(
        self,
        request: PlacementRequest,
        base: Placement,
        name: str,
        fn: Callable[..., Placement],
    ) -> Tuple[Placement, int, int]:
        """Warm-started solve: pin unchanged chains, place only the delta.

        Chains whose NF graph already appears in ``base`` keep their
        NF→device assignments — the expensive pattern search is skipped for
        them. Cores are *not* pinned: pinned chains are first shrunk to the
        cheapest allocation meeting their t_min (what admission guarantees
        them), the delta chains run the strategy against the remaining
        capacity, and the greedy core allocator then re-spends the spare
        cores over the combined set. Finally the switch program is
        re-validated and the rate LP re-solved — the only global steps
        whose answer a delta can change.
        """
        from repro.core.corealloc import (
            allocate_cores,
            allocate_minimum,
            meet_tmin,
        )
        from repro.core.pipeline import switch_fit
        from repro.core.rates import analyze_chain, server_core_usage
        from repro.core.subgroups import form_subgroups

        packet_bits = self.config.packet_bits
        base_by_name = {cp.name: cp for cp in base.chains}
        pinned_cps: List[ChainPlacement] = []
        delta_chains: List[NFChain] = []
        for chain in request.chains:
            prior = base_by_name.get(chain.name)
            if prior is None or not chain.graph.same_structure(
                    prior.chain.graph):
                delta_chains.append(chain)
                continue
            subgroups = form_subgroups(chain, prior.assignment, self.profiles)
            pinned_cps.append(analyze_chain(
                chain, dict(prior.assignment), subgroups,
                self.topology, self.profiles, packet_bits,
            ))

        def reject(reason: Optional[str],
                   extra: Sequence[ChainPlacement] = ()) -> Tuple[
                       Placement, int, int]:
            return (
                Placement(
                    chains=pinned_cps + list(extra), strategy=name,
                    infeasible_reason=reason,
                ),
                len(pinned_cps), len(delta_chains),
            )

        if pinned_cps:
            # Shrink pinned chains to their t_min core floor: admission
            # guarantees existing chains their SLO minimum, not their
            # current burst headroom, so the freed cores are what the
            # delta chains may legitimately claim.
            floor = allocate_minimum(pinned_cps, self.topology, packet_bits)
            if floor.feasible:
                floor = meet_tmin(pinned_cps, self.topology, packet_bits)
            if not floor.feasible:
                return reject(floor.reason)

        delta_cps: List[ChainPlacement] = []
        if delta_chains:
            # The delta strategy sees only the delta chains, so the
            # capacity the pinned chains hold must be withheld from it:
            # server cores via a transient reservation bump, and PISA
            # stages by compiling delta candidates against the pinned
            # switch program (stage usage is not additive — same-class
            # tables share stages — so a numeric budget would be wrong).
            usage = server_core_usage(pinned_cps)
            saved = {s.name: s.reserved_cores for s in self.topology.servers}
            extra: Dict[str, object] = {}
            if pinned_cps and "context_pairs" in inspect.signature(
                    fn).parameters:
                extra["context_pairs"] = [
                    (cp.chain.graph, cp.switch_node_ids())
                    for cp in pinned_cps
                ]
            try:
                for server in self.topology.servers:
                    server.reserved_cores = (
                        saved[server.name] + usage.get(server.name, 0)
                    )
                delta = fn(
                    delta_chains, self.topology, self.profiles,
                    packet_bits=packet_bits, **extra,
                )
            finally:
                for server in self.topology.servers:
                    server.reserved_cores = saved[server.name]
            if not delta.feasible:
                return reject(delta.infeasible_reason, delta.chains)
            delta_cps = delta.chains

        by_name = {cp.name: cp for cp in pinned_cps + delta_cps}
        combined = [by_name[chain.name] for chain in request.chains]
        placement = Placement(chains=combined, strategy=name)

        # Re-spend spare cores over the combined set (assignments are
        # already decided; this only moves core counts, like the full
        # pipeline's allocation step).
        allocation = allocate_cores(
            combined, self.topology, packet_bits, policy="lemur"
        )
        if not allocation.feasible:
            placement.infeasible_reason = allocation.reason
            return placement, len(pinned_cps), len(delta_chains)

        for cp in combined:
            if cp.latency_us > cp.chain.slo.d_max:
                placement.infeasible_reason = (
                    f"chain {cp.name}: latency {cp.latency_us:.1f} µs "
                    f"exceeds d_max {cp.chain.slo.d_max:.1f} µs"
                )
                return placement, len(pinned_cps), len(delta_chains)

        if delta_chains and "context_pairs" in extra:
            # The delta strategy verified its candidates compiled together
            # with the pinned program, so its stage report already covers
            # the combined switch program — no second full compile needed.
            placement.switch_stages_used = delta.switch_stages_used
        else:
            reason, stages_used = switch_fit(combined, self.topology)
            if reason is not None:
                placement.infeasible_reason = reason
                return placement, len(pinned_cps), len(delta_chains)
            if stages_used is not None:
                placement.switch_stages_used = stages_used

        from repro.core.lp import solve_rates

        solution = solve_rates(combined, self.topology)
        if not solution.feasible:
            placement.infeasible_reason = solution.reason
            return placement, len(pinned_cps), len(delta_chains)
        placement.rates = solution.rates
        placement.objective_mbps = solution.objective_mbps
        placement.feasible = True
        return placement, len(pinned_cps), len(delta_chains)

    def _enforce_tail_slos(self, placement: Placement) -> None:
        """Reject chains whose queueing-aware tail latency breaks d_max.

        Runs only under the ``tail_latency`` objective, after rates are
        final: the capped LP rates fix per-device utilization, the M/M/1
        model turns utilization into per-device wait factors, and each
        chain's worst-path latency is re-estimated with those factors —
        the same arithmetic the deployed rack stamps per packet, so a
        chain admitted here holds its p99 under the modelled queueing.
        """
        # Deferred: importing repro.sim at module scope would be circular
        # (repro.sim.traffic imports this module).
        from repro.core.rates import chain_tail_latency_us, device_utilization
        from repro.sim.measurement import QueueingModel

        model = QueueingModel(kind="mm1")
        utilization = device_utilization(
            placement.chains, placement.rates, self.topology,
            self.config.packet_bits,
        )
        factors = {
            device: model.delay_factor(rho)
            for device, rho in utilization.items()
        }
        for cp in placement.chains:
            d_max = cp.chain.slo.d_max
            if math.isinf(d_max):
                continue
            tail = chain_tail_latency_us(
                cp, self.topology, self.profiles, factors
            )
            if tail > d_max:
                placement.feasible = False
                placement.infeasible_reason = (
                    f"chain {cp.name}: queueing-aware tail latency "
                    f"{tail:.1f} µs exceeds d_max {d_max:.1f} µs"
                )
                return

    def precompute_slo_schedule(
        self,
        chains: Sequence[NFChain],
        slo_schedule: Dict[str, List[SLO]],
        strategy: Optional[str] = None,
    ) -> List[Placement]:
        """Precompute placements for time-varying SLOs (§7 Dynamics).

        ``slo_schedule`` maps chain name to one SLO per time slot; every
        chain must provide the same number of slots. Returns one placement
        per slot, ready to be installed on schedule.
        """
        lengths = {len(v) for v in slo_schedule.values()}
        if len(lengths) != 1:
            raise PlacementError(
                "all chains must provide the same number of SLO time slots"
            )
        (n_slots,) = lengths
        placements: List[Placement] = []
        for slot in range(n_slots):
            slot_chains = []
            for chain in chains:
                slos = slo_schedule.get(chain.name)
                if slos is None:
                    raise PlacementError(
                        f"no SLO schedule for chain {chain.name!r}"
                    )
                slot_chains.append(chain.with_slo(slos[slot]))
            placements.append(self.solve(PlacementRequest(
                chains=slot_chains, strategy=strategy,
            )).placement)
        return placements
