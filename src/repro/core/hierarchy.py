"""Hierarchical multi-rack placement: partition, then place per rack.

:class:`MultiRackPlacer` is the fabric-level twin of the single-rack
:class:`~repro.core.placer.Placer`. ``solve`` runs in three stages:

1. **Partition** — :func:`~repro.core.partition.partition_chains`
   assigns every chain a home rack (greedy bin-pack + LP refinement),
   charging inter-rack round trips against each chain's ``d_max``.
2. **Per-rack solve** — the ordinary ``Placer.solve`` runs over each
   rack's chain subset. Remote chains are handed down with their
   ``d_max`` already shrunk by the fabric RTT, so the per-rack latency
   guard still protects the *end-to-end* SLO. With ``jobs > 1`` the
   rack solves fan out over the persistent worker pool (affinity keeps
   each rack on one worker so its placement cache stays warm); results
   are byte-identical to the serial path.
3. **Link post-pass** — assigned rates of remote chains are summed per
   inter-rack link; overloads shed marginal rate (never below the
   ``t_min`` floor) deterministically so the fabric cannot promise more
   than its links carry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.chain.slo import SLO
from repro.core.cache import PlacementCache
from repro.core.partition import PartitionResult, RackRoute, partition_chains
from repro.core.placement import ChainPlacement
from repro.core.placer import (
    MultiRackOptions,
    PlacementReport,
    PlacementRequest,
    Placer,
    PlacerConfig,
)
from repro.exceptions import PartitionError, PlacementError
from repro.hw.multirack import MultiRackTopology
from repro.obs import get_registry
from repro.profiles.defaults import ProfileDatabase, default_profiles


@dataclass
class MultiRackPlacement:
    """The fabric-wide result: per-rack reports + the merged view.

    ``rates`` is the authoritative per-chain rate map *after* the link
    capacity post-pass (per-rack placements are updated in place to
    match). ``remote`` maps each off-ingress chain to its fabric route;
    its RTT is the extra latency every delivered packet of that chain
    carries.
    """

    partition: PartitionResult
    reports: Dict[str, PlacementReport] = field(default_factory=dict)
    rates: Dict[str, float] = field(default_factory=dict)
    remote: Dict[str, RackRoute] = field(default_factory=dict)
    ingress: str = ""
    feasible: bool = False
    infeasible_reason: Optional[str] = None
    link_shed_mbps: Dict[str, float] = field(default_factory=dict)

    @property
    def chains(self) -> List[ChainPlacement]:
        out: List[ChainPlacement] = []
        for rack in self.reports:
            out.extend(self.reports[rack].placement.chains)
        return out

    @property
    def aggregate_rate(self) -> float:
        return sum(self.rates.values())

    def placement_for(self, rack: str):
        return self.reports[rack].placement

    def rack_of(self, chain_name: str) -> str:
        return self.partition.assignment[chain_name]

    def rate_of(self, chain_name: str) -> float:
        return self.rates.get(chain_name, 0.0)

    def route_of(self, chain_name: str) -> Optional[RackRoute]:
        return self.remote.get(chain_name)

    def rtt_of(self, chain_name: str) -> float:
        route = self.remote.get(chain_name)
        return route.rtt_us if route is not None else 0.0

    def describe(self) -> str:
        lines = [
            f"MultiRackPlacement feasible={self.feasible} "
            f"racks={len(self.reports)} ingress={self.ingress} "
            f"aggregate={self.aggregate_rate:.0f} Mbps"
        ]
        if self.infeasible_reason:
            lines.append(f"  reason: {self.infeasible_reason}")
        lines.append("  " + self.partition.describe().replace("\n", "\n  "))
        for rack in sorted(self.reports):
            body = self.reports[rack].placement.describe()
            lines.append(f"  -- rack {rack} --")
            lines.append("  " + body.replace("\n", "\n  "))
        for link, shed in sorted(self.link_shed_mbps.items()):
            lines.append(f"  link {link}: shed {shed:.0f} Mbps marginal")
        return "\n".join(lines)


@dataclass
class MultiRackReport:
    """What one hierarchical solve produced."""

    placement: MultiRackPlacement
    seconds: float
    strategy: str
    mode: str = "hierarchical"
    rack_solve: str = "serial"  # "serial" or "pool"
    jobs: int = 1


# ---------------------------------------------------------------------------
# worker-pool fan-out task (module level: must pickle under fork/spawn)
# ---------------------------------------------------------------------------

#: per-rack placement caches that persist inside a pool worker across
#: dispatch waves — affinity routing sends the same rack to the same
#: worker, so repeated fabric solves hit a warm cache there too.
_WORKER_CACHES: Dict[str, PlacementCache] = {}


def _solve_rack_task(arg: dict) -> Tuple[str, PlacementReport]:
    rack = arg["rack"]
    cache = None
    if arg["use_cache"]:
        cache = _WORKER_CACHES.setdefault(rack, PlacementCache())
    placer = Placer(
        topology=arg["topology"],
        profiles=arg["profiles"],
        config=arg["config"],
        cache=cache,
    )
    report = placer.solve(
        PlacementRequest(
            chains=arg["chains"],
            strategy=arg["strategy"],
            objective=arg["objective"],
            use_cache=arg["use_cache"],
        )
    )
    return rack, report


@dataclass
class MultiRackPlacer:
    """Partition-then-place over a :class:`MultiRackTopology`.

    Holds one placement cache per rack, so incremental fabric workloads
    (lifecycle replays, chaos replans) reuse warm per-rack solves.
    ``solve`` accepts any :class:`PlacementRequest`; one without
    ``multi_rack`` options gets the defaults (serial, no pins).
    """

    fabric: MultiRackTopology
    profiles: ProfileDatabase = field(default_factory=default_profiles)
    config: PlacerConfig = field(default_factory=PlacerConfig)
    caches: Dict[str, PlacementCache] = field(default_factory=dict)

    def placer_for(self, rack: str) -> Placer:
        cache = self.caches.setdefault(rack, PlacementCache())
        return Placer(
            topology=self.fabric.rack(rack),
            profiles=self.profiles,
            config=self.config,
            cache=cache,
        )

    # -- the hierarchical solve -------------------------------------------

    def solve(self, request: PlacementRequest) -> MultiRackReport:
        if request.base_placement is not None or request.failed_devices:
            raise PlacementError(
                "multi-rack solves do not take base_placement or "
                "failed_devices; re-partitioning handles both — submit a "
                "fresh request (pin chains with rack_pins to keep homes)"
            )
        started = time.perf_counter()
        opts = request.multi_rack or MultiRackOptions()
        fabric = self.fabric
        if opts.ingress and opts.ingress != fabric.ingress:
            fabric = replace(fabric, ingress=opts.ingress)
        strategy = request.strategy or self.config.strategy

        try:
            partition = partition_chains(
                list(request.chains),
                fabric,
                self.profiles,
                rack_pins=opts.pins(),
                packet_bits=self.config.packet_bits,
            )
        except PartitionError as exc:
            placement = MultiRackPlacement(
                partition=PartitionResult(),
                ingress=fabric.ingress,
                feasible=False,
                infeasible_reason=str(exc),
            )
            return MultiRackReport(
                placement=placement,
                seconds=time.perf_counter() - started,
                strategy=strategy,
                jobs=opts.jobs,
            )

        remote = partition.remote_chains(fabric.ingress)
        rack_chains: Dict[str, list] = {}
        for chain in request.chains:
            rack = partition.rack_of(chain.name)
            handed = chain
            if chain.name in remote:
                slo = chain.slo
                handed = chain.with_slo(
                    SLO(
                        t_min=slo.t_min,
                        t_max=slo.t_max,
                        d_max=slo.d_max - remote[chain.name].rtt_us,
                    )
                )
            rack_chains.setdefault(rack, []).append(handed)

        racks = sorted(rack_chains)
        reports, rack_solve = self._solve_racks(
            racks, rack_chains, request, opts
        )

        placement = MultiRackPlacement(
            partition=partition,
            reports=reports,
            remote=remote,
            ingress=fabric.ingress,
        )
        placement.rates = {}
        placement.feasible = True
        for rack in racks:
            per_rack = reports[rack].placement
            placement.rates.update(per_rack.rates)
            if not per_rack.feasible:
                placement.feasible = False
                reason = per_rack.infeasible_reason or "per-rack solve failed"
                placement.infeasible_reason = f"rack {rack}: {reason}"
                break
        if placement.feasible:
            self._enforce_link_capacity(placement, fabric, request)

        seconds = time.perf_counter() - started
        get_registry().histogram("multirack.solve.seconds").observe(seconds)
        return MultiRackReport(
            placement=placement,
            seconds=seconds,
            strategy=strategy,
            rack_solve=rack_solve,
            jobs=opts.jobs,
        )

    # -- stage 2: per-rack solves (serial or pooled) ----------------------

    def _solve_racks(self, racks, rack_chains, request, opts):
        use_pool = opts.jobs > 1 and len(racks) > 1
        if use_pool:
            try:
                from repro.runtime.pool import PoolCall, get_pool, in_worker

                if in_worker():
                    use_pool = False
            except Exception:  # pragma: no cover - pool always importable
                use_pool = False
        if use_pool:
            calls = [
                PoolCall(
                    _solve_rack_task,
                    {
                        "rack": rack,
                        "topology": self.fabric.rack(rack),
                        "profiles": self.profiles,
                        "config": self.config,
                        "chains": rack_chains[rack],
                        "strategy": request.strategy,
                        "objective": request.objective,
                        "use_cache": request.use_cache,
                    },
                    affinity=rack,
                )
                for rack in racks
            ]
            pool = get_pool(min(opts.jobs, len(racks)))
            results = pool.dispatch(calls)
            return {rack: report for rack, report in results}, "pool"

        reports = {}
        for rack in racks:
            reports[rack] = self.placer_for(rack).solve(
                PlacementRequest(
                    chains=rack_chains[rack],
                    strategy=request.strategy,
                    objective=request.objective,
                    use_cache=request.use_cache,
                )
            )
        return reports, "serial"

    # -- stage 3: inter-rack link capacity post-pass ----------------------

    def _enforce_link_capacity(self, placement, fabric, request) -> None:
        """Shed marginal rate (down to ``t_min`` floors) on overloaded
        links; floors alone exceeding a link turn the solve infeasible."""
        floors = {
            chain.name: chain.slo.t_min for chain in request.chains
        }
        registry = get_registry()
        for link in fabric.links:
            users = sorted(
                chain
                for chain, route in placement.remote.items()
                if link.name in route.links and chain in placement.rates
            )
            if not users:
                continue
            load = sum(placement.rates[c] for c in users)
            registry.gauge("interrack.link.load_mbps", link=link.name).set(load)
            if load <= link.capacity_mbps:
                continue
            floor_sum = sum(floors[c] for c in users)
            if floor_sum > link.capacity_mbps:
                placement.feasible = False
                placement.infeasible_reason = (
                    f"link {link.name} capacity exhausted: chain floors "
                    f"need {floor_sum:g} Mbps, link carries "
                    f"{link.capacity_mbps:g} Mbps"
                )
                return
            marginal = load - floor_sum
            budget = link.capacity_mbps - floor_sum
            scale = budget / marginal if marginal > 0 else 0.0
            shed = 0.0
            for chain in users:
                old = placement.rates[chain]
                new = floors[chain] + (old - floors[chain]) * scale
                shed += old - new
                placement.rates[chain] = new
                rack = placement.rack_of(chain)
                placement.reports[rack].placement.rates[chain] = new
            placement.link_shed_mbps[link.name] = shed
            registry.counter("interrack.link.shed_mbps", link=link.name).inc(
                shed
            )


__all__ = [
    "MultiRackPlacement",
    "MultiRackPlacer",
    "MultiRackReport",
]
