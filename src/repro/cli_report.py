"""Shared CLI report emission for ``traffic``/``chaos``/``lifecycle``/``serve``.

Every report-producing subcommand speaks the same :class:`Report`
protocol — ``as_dict``/``to_json`` for the machine form, ``render`` for
the table, ``ok`` for the SLO verdict — so emission is one function with
no per-report special-casing:

* with ``--out FILE``, the deterministic report artifact is written
  **before** any stdout, so a closed pipe downstream (e.g. ``| head``)
  cannot lose it; a ``.json`` suffix selects the JSON document, anything
  else the rendered text table (with a trailing newline);
* stdout gets the JSON document under ``--json``, the rendered table
  otherwise — followed by any extra text-only sections (metrics dumps);
* the exit code is 0 when the report's ``ok`` predicate holds, else 2
  (reserving 1 for hard :class:`~repro.exceptions.ReproError` failures,
  which ``main`` maps).
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence, Tuple, runtime_checkable


@runtime_checkable
class Report(Protocol):
    """What a subcommand's result must offer to be emitted.

    Implemented by :class:`~repro.sim.traffic.TrafficReport`,
    :class:`~repro.sim.faults.ChaosReport`,
    :class:`~repro.sim.lifecycle.LifecycleReport`, and
    :class:`~repro.serve.daemon.ServeReport`.
    """

    def as_dict(self) -> dict:
        """Deterministic JSON-ready form (no wall-clock quantities)."""
        ...

    def to_json(self) -> str:
        """``as_dict`` as one indented, key-sorted JSON document."""
        ...

    def render(self) -> str:
        """The human-readable table."""
        ...

    @property
    def ok(self) -> bool:
        """The SLO verdict driving the exit code (0 ok, 2 violated)."""
        ...


def emit_report(
    report: Report,
    *,
    out: Optional[str] = None,
    as_json: bool = False,
    sections: Sequence[Tuple[str, str]] = (),
) -> int:
    """Write/print one subcommand's report and return its exit code.

    ``sections`` are ``(title, body)`` pairs appended to text output
    only, matching the ``== title ==`` convention.
    """
    if out:
        artifact = report.to_json() if out.endswith(".json") \
            else report.render() + "\n"
        with open(out, "w") as handle:
            handle.write(artifact)
    if as_json:
        print(report.to_json())
    else:
        print(report.render())
        for title, body in sections:
            print()
            print(f"== {title} ==")
            print(body)
    return 0 if report.ok else 2
