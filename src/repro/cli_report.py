"""Shared CLI report emission for ``traffic``, ``chaos``, ``lifecycle``.

Every report-producing subcommand follows the same contract, previously
duplicated inline per command:

* with ``--out FILE``, the deterministic report artifact is written
  **before** any stdout, so a closed pipe downstream (e.g. ``| head``)
  cannot lose it; a ``.json`` suffix selects the JSON document, anything
  else the rendered text table (with a trailing newline);
* stdout gets the JSON document under ``--json``, the text table
  otherwise — followed by any extra text-only sections (metrics dumps);
* the exit code is 0 when the run's ``ok`` predicate holds, else 2
  (reserving 1 for hard :class:`~repro.exceptions.ReproError` failures,
  which ``main`` maps).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple


def emit_report(
    *,
    text: str,
    json_text: Optional[str] = None,
    out: Optional[str] = None,
    as_json: bool = False,
    sections: Sequence[Tuple[str, str]] = (),
    ok: bool = True,
) -> int:
    """Write/print one subcommand's report and return its exit code.

    ``text`` is the rendered table; ``json_text`` the JSON document (omit
    it for commands with no JSON form — ``--out file.json`` then falls
    back to text). ``sections`` are ``(title, body)`` pairs appended to
    text output only, matching the ``== title ==`` convention.
    """
    if out:
        artifact = json_text if out.endswith(".json") \
            and json_text is not None else text + "\n"
        with open(out, "w") as handle:
            handle.write(artifact)
    if as_json and json_text is not None:
        print(json_text)
    else:
        print(text)
        for title, body in sections:
            print()
            print(f"== {title} ==")
            print(body)
    return 0 if ok else 2
