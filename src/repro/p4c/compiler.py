"""Top-level PISA pipeline compiler.

Given one or more NF chains and, per chain, the set of NF nodes placed on
the switch, the compiler:

1. instantiates standalone P4 NFs from the library (name-mangled per
   instance, §4.2);
2. merges their NF-local parse trees into a unified parser, rejecting the
   placement on conflicts (§A.2.1);
3. converts each chain's switch-resident sub-DAG into a pipeline tree,
   emitting traffic-splitting tables at branches (§A.2.2);
4. applies Lemur's stage optimizations: no NSH tables for all-switch
   chains, a single steering/resume table in the first stage, one SI update
   per service path, and explicit cross-branch/cross-chain exclusivity so
   the allocator may pack parallel work into shared stages (§4.2 (a)-(d));
5. packs the resulting table DAG into stages with the selected allocator
   and reports fit against the switch's stage budget.

The Placer treats this as the authoritative feasibility check — exactly how
Lemur uses the Tofino compiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.chain.graph import NFGraph
from repro.exceptions import P4CompileError
from repro.hw.pisa import PISASwitch
from repro.p4c import nflib
from repro.p4c.dependency import exclusive_table_pairs, infer_dependencies
from repro.p4c.ir import P4NF, P4Table, ParseTree, TableDAG
from repro.p4c.parser_merge import merge_into
from repro.p4c.pipeline_tree import (
    SubgroupDAG,
    TreeNode,
    build_subgroup_dag,
    dag_to_tree,
)
from repro.p4c.stage_alloc import (
    StageAllocation,
    allocate_compiler,
    allocate_conservative,
    allocate_naive,
)


@dataclass
class CompileResult:
    """Outcome of compiling a set of chains onto the switch."""

    allocation: StageAllocation
    parser: ParseTree
    dag: TableDAG
    chain_tables: Dict[str, List[str]] = field(default_factory=dict)
    uses_nsh: bool = False

    @property
    def fits(self) -> bool:
        return self.allocation.fits

    @property
    def stage_count(self) -> int:
        return self.allocation.stage_count


def _sanitize(node_id: str) -> str:
    return node_id.replace(".", "_").replace("-", "_")


def _augment_reads(table: P4Table, extra: Set[str]) -> P4Table:
    return replace(table, reads=frozenset(table.reads | extra))


class PISACompiler:
    """Compiles chain placements for one PISA switch."""

    def __init__(self, switch: Optional[PISASwitch] = None):
        self.switch = switch or PISASwitch()

    # -- public API ---------------------------------------------------------

    def compile(
        self,
        chain_assignments: Sequence[Tuple[NFGraph, Set[str]]],
        strategy: str = "compiler",
    ) -> CompileResult:
        """Compile chains onto the switch.

        ``chain_assignments`` pairs each chain graph with the node ids
        placed on this switch. ``strategy`` selects the stage allocator:
        ``compiler`` (default), ``conservative``, or ``naive``.
        """
        dag = TableDAG()
        parser = ParseTree()
        ordered_scope: List[str] = []
        # Each partition is a list of table-name sets that are pairwise
        # mutually exclusive (sibling arms of one branch block, or distinct
        # chains). Exclusivity never crosses partitions.
        exclusive_partitions: List[List[Set[str]]] = []
        nf_groups: List[List[str]] = []
        chain_tables: Dict[str, List[str]] = {}
        uses_nsh = False

        steering = nflib.steering_table()
        dag.add_table(steering)
        ordered_scope.append(steering.name)
        nf_groups.append([steering.name])

        per_chain_table_sets: List[Set[str]] = []

        for graph, switch_ids in chain_assignments:
            switch_ids = set(switch_ids)
            if not switch_ids:
                chain_tables[graph.name] = []
                per_chain_table_sets.append(set())
                continue
            chain_guard = f"meta.chain_{_sanitize(graph.name)}"
            spans_platforms = switch_ids != set(graph.nodes)
            uses_nsh = uses_nsh or spans_platforms
            names = self._compile_chain(
                graph=graph,
                switch_ids=switch_ids,
                chain_guard=chain_guard,
                spans_platforms=spans_platforms,
                dag=dag,
                parser=parser,
                ordered_scope=ordered_scope,
                exclusive_partitions=exclusive_partitions,
                nf_groups=nf_groups,
                strategy=strategy,
            )
            chain_tables[graph.name] = names
            per_chain_table_sets.append(set(names))

        # Chains process disjoint traffic aggregates: every cross-chain
        # table pair is mutually exclusive (optimization (d) applied at
        # chain granularity).
        exclusive_partitions.append([s for s in per_chain_table_sets if s])
        exclusive_pairs: Set[Tuple[str, str]] = set()
        for partition in exclusive_partitions:
            exclusive_pairs |= exclusive_table_pairs(partition)

        if strategy == "naive":
            allocation = allocate_naive(
                dag,
                serialized_order=ordered_scope,
                resources=self.switch.stage_resources,
                available_stages=self.switch.num_stages,
            )
        else:
            infer_dependencies(dag, ordered_scope, exclusive_pairs)
            if strategy == "conservative":
                allocation = allocate_conservative(
                    dag,
                    nf_groups=nf_groups,
                    resources=self.switch.stage_resources,
                    available_stages=self.switch.num_stages,
                )
            elif strategy == "compiler":
                allocation = allocate_compiler(
                    dag,
                    resources=self.switch.stage_resources,
                    available_stages=self.switch.num_stages,
                )
            else:
                raise P4CompileError(f"unknown allocation strategy {strategy!r}")

        return CompileResult(
            allocation=allocation,
            parser=parser,
            dag=dag,
            chain_tables=chain_tables,
            uses_nsh=uses_nsh,
        )

    def fits(self, chain_assignments: Sequence[Tuple[NFGraph, Set[str]]]) -> bool:
        """Feasibility check used by the Placer's iterative search."""
        try:
            return self.compile(chain_assignments).fits
        except P4CompileError:
            return False

    # -- per-chain lowering ---------------------------------------------------

    def _compile_chain(
        self,
        graph: NFGraph,
        switch_ids: Set[str],
        chain_guard: str,
        spans_platforms: bool,
        dag: TableDAG,
        parser: ParseTree,
        ordered_scope: List[str],
        exclusive_partitions: List[List[Set[str]]],
        nf_groups: List[List[str]],
        strategy: str,
    ) -> List[str]:
        sg_dag = build_subgroup_dag(graph, sorted(switch_ids))
        tree = dag_to_tree(sg_dag)
        if tree is None:
            return []

        # Instantiate P4 NFs and merge their parsers.
        p4nfs: Dict[str, P4NF] = {}
        for node_id in sorted(switch_ids):
            node = graph.nodes[node_id]
            p4nf = nflib.make_p4_nf(node.nf_class, _sanitize(node_id), node.params)
            merge_into(parser, p4nf.parse_tree)
            p4nfs[node_id] = p4nf
        if spans_platforms:
            # Returning packets carry NSH; the unified parser must accept it.
            parser.headers.add("nsh")

        nf_to_tables: Dict[str, List[str]] = {
            nf_id: [t.name for t in p4nfs[nf_id].dag.tables] for nf_id in p4nfs
        }

        # Per-arm guards: tables inside a branch arm are predicated on the
        # splitting table's decision metadata, and sibling arms are mutually
        # exclusive (so the allocator may pack them into shared stages).
        guards: Dict[str, Set[str]] = {nid: {chain_guard} for nid in switch_ids}
        split_tables: Dict[str, P4Table] = {}  # branching sg -> split table
        tree_index = _index_tree(tree)

        for sg_id in sg_dag.branching_nodes():
            split_name = f"{_sanitize(sg_id)}_split"
            n_arms = len(sg_dag.successors(sg_id))
            split = nflib.branch_split_table(split_name, n_arms)
            split = _augment_reads(split, {chain_guard})
            branch_guard = f"meta.branch_{_sanitize(sg_id)}"
            split = replace(split, writes=frozenset(split.writes | {branch_guard}))
            split_tables[sg_id] = split
            node = tree_index[sg_id]
            arm_table_groups: List[Set[str]] = []
            for child in node.children:
                if child.is_merge:
                    continue
                tables: Set[str] = set()
                for desc in child.preorder():
                    if desc.is_merge:
                        continue
                    for nf_id in desc.subgroup.nf_node_ids:
                        guards[nf_id].add(branch_guard)
                        tables.update(nf_to_tables[nf_id])
                if tables:
                    arm_table_groups.append(tables)
            if len(arm_table_groups) >= 2:
                exclusive_partitions.append(arm_table_groups)

        # Emit tables in preorder: per subgroup, member NFs in order; the
        # split table rides right after its branching subgroup.
        emitted: List[str] = []
        for node in tree.preorder():
            sg = node.subgroup
            for nf_id in sg.nf_node_ids:
                p4nf = p4nfs[nf_id]
                group: List[str] = []
                for table in p4nf.dag.tables:
                    table = _augment_reads(table, guards[nf_id])
                    dag.add_table(table)
                    ordered_scope.append(table.name)
                    emitted.append(table.name)
                    group.append(table.name)
                for a, b in p4nf.dag.edges:
                    dag.add_edge(a, b)
                nf_groups.append(group)
                if strategy == "naive":
                    check = P4Table(
                        name=f"{_sanitize(nf_id)}_check",
                        size=16,
                        entry_bits=16,
                        reads=frozenset({chain_guard}),
                        writes=frozenset(),
                    )
                    dag.add_table(check)
                    # checks precede the NF in the serialized order
                    index = ordered_scope.index(group[0])
                    ordered_scope.insert(index, check.name)
                    emitted.append(check.name)
            split = split_tables.get(sg.sg_id)
            if split is not None:
                dag.add_table(split)
                ordered_scope.append(split.name)
                emitted.append(split.name)
                nf_groups.append([split.name])

        # NSH encap/decap (optimization (a): only when spanning platforms;
        # optimization (b): one SI-update/encap table per service path).
        if spans_platforms:
            encap = nflib.nsh_encap_table(f"{_sanitize(graph.name)}_nsh_encap")
            encap = _augment_reads(encap, {chain_guard})
            dag.add_table(encap)
            ordered_scope.append(encap.name)
            emitted.append(encap.name)
            nf_groups.append([encap.name])
            # the encap happens after the last switch NF before each bounce:
            for nf_id in self._bounce_exit_nodes(graph, switch_ids):
                for table_name in nf_to_tables[nf_id]:
                    dag.add_edge(table_name, encap.name)

            # Decap runs on the *return* pass, right after the steering
            # table recognizes a packet coming back from a server
            # (optimization (c): resume steering lives in the first stage).
            # Within a single pipeline traversal encap and decap never both
            # apply to a packet, so they are mutually exclusive and the
            # encap→decap NSH-field dependency must not serialize them.
            decap = nflib.nsh_decap_table(f"{_sanitize(graph.name)}_nsh_decap")
            decap = _augment_reads(decap, {chain_guard})
            dag.add_table(decap)
            ordered_scope.append(decap.name)
            emitted.append(decap.name)
            nf_groups.append([decap.name])
            dag.add_edge("lemur_steering", decap.name)
            exclusive_partitions.append([{encap.name}, {decap.name}])

        return emitted

    @staticmethod
    def _bounce_exit_nodes(graph: NFGraph, switch_ids: Set[str]) -> List[str]:
        """Switch nodes whose successor leaves the switch (bounce points)."""
        out = []
        for nid in switch_ids:
            for edge in graph.out_edges(nid):
                if edge.dst not in switch_ids:
                    out.append(nid)
                    break
        return out


class ContextCompiler(PISACompiler):
    """A :class:`PISACompiler` that prepends an already-placed context.

    Incremental placement pins existing chains and places only a delta;
    stage usage is not additive across chains (same-class tables pack
    into shared stages), so the only faithful stage check for a delta
    candidate is to compile it *together with* the pinned program.
    Wrapping the compiler makes every existing call site (baseline
    search, candidate evaluation, switch-fit verification)
    context-aware without changing their signatures.
    """

    def __init__(
        self,
        switch: Optional[PISASwitch],
        context: Sequence[Tuple[NFGraph, Set[str]]],
    ):
        super().__init__(switch)
        self.context = list(context)
        # One incremental search compiles the same delta configuration
        # more than once (baseline fit probes, candidate evaluation,
        # final verification) and every compile re-lowers the whole
        # context — memoize by delta configuration. Keyed on graph
        # identity: graphs outlive this per-solve compiler.
        self._memo: Dict[Tuple, CompileResult] = {}

    def compile(
        self,
        chain_assignments: Sequence[Tuple[NFGraph, Set[str]]],
        strategy: str = "compiler",
    ) -> CompileResult:
        key = (
            tuple((id(g), frozenset(ids)) for g, ids in chain_assignments),
            strategy,
        )
        result = self._memo.get(key)
        if result is None:
            result = super().compile(
                self.context + list(chain_assignments), strategy
            )
            self._memo[key] = result
        return result


def _index_tree(tree: TreeNode) -> Dict[str, TreeNode]:
    return {node.subgroup.sg_id: node for node in tree.preorder()}
