"""Standalone P4 NF library (§4.2).

Each factory builds a :class:`~repro.p4c.ir.P4NF` with instance-unique table
names (the meta-compiler name-mangles NFs "to ensure uniqueness"). Resource
footprints are calibrated per DESIGN.md: a carrier-grade NAT's 12 000-entry
state dominates a stage's SRAM, ACL rules live in TCAM, header-rewrite NFs
(Tunnel/IPv4Fwd) are small exact/LPM tables.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.exceptions import P4CompileError
from repro.p4c.ir import (
    MatchType,
    P4NF,
    P4Table,
    ParseTree,
    TableDAG,
    ethernet_ipv4_tree,
)


def _single_table_nf(
    instance: str,
    table: P4Table,
    parse_tree: Optional[ParseTree] = None,
    headers: Optional[set] = None,
) -> P4NF:
    dag = TableDAG()
    dag.add_table(table)
    tree = parse_tree or ethernet_ipv4_tree()
    return P4NF(
        name=instance,
        parse_tree=tree,
        dag=dag,
        entry_tables=[table.name],
        exit_tables=[table.name],
        headers=headers or set(tree.headers),
    )


def make_acl(instance: str, params: Optional[dict] = None) -> P4NF:
    """ACL on src/dst fields: one ternary (TCAM) table."""
    rules = (params or {}).get("rules", 1024)
    size = len(rules) if isinstance(rules, (list, tuple)) else int(rules)
    table = P4Table(
        name=f"{instance}_acl",
        match_type=MatchType.TERNARY,
        size=max(size, 1),
        entry_bits=40,  # src/dst IP + ports + proto key, compressed
        reads=frozenset({"ipv4.src", "ipv4.dst", "l4.sport", "l4.dport"}),
        writes=frozenset({"meta.drop_flag"}),
    )
    return _single_table_nf(instance, table)


def make_ipv4fwd(instance: str, params: Optional[dict] = None) -> P4NF:
    """IPv4 forwarding: one LPM table writing the egress port."""
    size = (params or {}).get("routes", 4096)
    table = P4Table(
        name=f"{instance}_fwd",
        match_type=MatchType.LPM,
        size=int(size),
        entry_bits=64,
        reads=frozenset({"ipv4.dst"}),
        writes=frozenset({"meta.egress_port", "ethernet.dst"}),
    )
    return _single_table_nf(instance, table)


def make_tunnel(instance: str, params: Optional[dict] = None) -> P4NF:
    """Push VLAN tag: small exact table adding the vlan header."""
    tree = ethernet_ipv4_tree()
    tree.add_transition("ethernet", "ethertype", 0x8100, "vlan")
    table = P4Table(
        name=f"{instance}_tunnel",
        match_type=MatchType.EXACT,
        size=64,
        entry_bits=48,
        reads=frozenset({"ipv4.dst"}),
        writes=frozenset({"vlan.vid", "ethernet.ethertype"}),
    )
    return _single_table_nf(instance, table, parse_tree=tree)


def make_detunnel(instance: str, params: Optional[dict] = None) -> P4NF:
    """Pop VLAN tag."""
    tree = ParseTree()
    tree.add_transition("ethernet", "ethertype", 0x8100, "vlan")
    tree.add_transition("vlan", "ethertype", 0x0800, "ipv4")
    table = P4Table(
        name=f"{instance}_detunnel",
        match_type=MatchType.EXACT,
        size=64,
        entry_bits=32,
        reads=frozenset({"vlan.vid"}),
        writes=frozenset({"ethernet.ethertype"}),
    )
    return _single_table_nf(instance, table, parse_tree=tree)


def make_nat(instance: str, params: Optional[dict] = None) -> P4NF:
    """Carrier-grade NAT: one big exact-match table rewriting the 5-tuple.

    At the Table 4 reference size (12 000 entries) the table's SRAM
    footprint (~1.3 MB) nearly fills a stage, so consecutive NAT instances
    land in distinct stages — the pressure behind the paper's 10-vs-11 NAT
    experiment (§5.2).
    """
    entries = (params or {}).get("entries", 12000)
    table = P4Table(
        name=f"{instance}_nat",
        match_type=MatchType.EXACT,
        size=int(entries),
        entry_bits=888,  # 5-tuple key + rewritten 5-tuple + lease metadata
        reads=frozenset({"ipv4.src", "ipv4.dst", "l4.sport", "l4.dport",
                         "ipv4.proto"}),
        writes=frozenset({"ipv4.src", "ipv4.dst", "l4.sport", "l4.dport"}),
    )
    return _single_table_nf(instance, table)


def make_lb(instance: str, params: Optional[dict] = None) -> P4NF:
    """L4 load balancer: VIP match table → backend-select table."""
    backends = (params or {}).get("backends", 16)
    vip = P4Table(
        name=f"{instance}_vip",
        match_type=MatchType.EXACT,
        size=256,
        entry_bits=96,
        reads=frozenset({"ipv4.dst", "l4.dport"}),
        writes=frozenset({"meta.vip_id"}),
    )
    backend = P4Table(
        name=f"{instance}_backend",
        match_type=MatchType.EXACT,
        size=int(backends) * 256,
        entry_bits=80,
        reads=frozenset({"meta.vip_id", "meta.flow_hash"}),
        writes=frozenset({"ipv4.dst", "l4.dport"}),
    )
    dag = TableDAG()
    dag.add_table(vip)
    dag.add_table(backend)
    dag.add_edge(vip.name, backend.name)
    return P4NF(
        name=instance,
        parse_tree=ethernet_ipv4_tree(),
        dag=dag,
        entry_tables=[vip.name],
        exit_tables=[backend.name],
        headers=set(ethernet_ipv4_tree().headers),
    )


def make_bpf(instance: str, params: Optional[dict] = None) -> P4NF:
    """Flexible BPF-style match: one ternary table writing a class meta."""
    size = (params or {}).get("filters", 256)
    table = P4Table(
        name=f"{instance}_match",
        match_type=MatchType.TERNARY,
        size=int(size),
        entry_bits=104,
        reads=frozenset({"ipv4.src", "ipv4.dst", "ipv4.proto",
                         "l4.sport", "l4.dport"}),
        writes=frozenset({"meta.traffic_class"}),
    )
    return _single_table_nf(instance, table)


#: NF class name -> factory. Only P4-capable NFs appear here (Table 3).
_FACTORIES: Dict[str, Callable[[str, Optional[dict]], P4NF]] = {
    "ACL": make_acl,
    "IPv4Fwd": make_ipv4fwd,
    "Tunnel": make_tunnel,
    "Detunnel": make_detunnel,
    "NAT": make_nat,
    "LB": make_lb,
    "BPF": make_bpf,
}


def has_p4_nf(nf_class: str) -> bool:
    return nf_class in _FACTORIES


def make_p4_nf(nf_class: str, instance: str,
               params: Optional[dict] = None) -> P4NF:
    """Instantiate a standalone P4 NF with a unique instance name."""
    factory = _FACTORIES.get(nf_class)
    if factory is None:
        raise P4CompileError(
            f"no P4 implementation for NF {nf_class!r} "
            f"(P4 library: {sorted(_FACTORIES)})"
        )
    return factory(instance, params)


# -- infrastructure tables the meta-compiler injects (§4.1/§4.2) -------------

def steering_table(name: str = "lemur_steering") -> P4Table:
    """First-stage table: classifies new packets into chains and steers
    packets returning from servers to their next NF (optimization (c))."""
    return P4Table(
        name=name,
        match_type=MatchType.TERNARY,
        size=512,
        entry_bits=120,
        reads=frozenset({"ipv4.src", "ipv4.dst", "nsh.spi", "nsh.si",
                         "meta.ingress_port"}),
        writes=frozenset({"meta.chain_id", "meta.resume_point"}),
    )


def nsh_encap_table(name: str) -> P4Table:
    """Adds the NSH header before bouncing to a server (burns a stage)."""
    return P4Table(
        name=name,
        match_type=MatchType.EXACT,
        size=128,
        entry_bits=72,
        reads=frozenset({"meta.chain_id", "meta.branch"}),
        writes=frozenset({"nsh.spi", "nsh.si", "meta.nsh_egress"}),
    )


def nsh_decap_table(name: str) -> P4Table:
    """Strips NSH when a chain completes on the switch (burns a stage)."""
    return P4Table(
        name=name,
        match_type=MatchType.EXACT,
        size=128,
        entry_bits=48,
        reads=frozenset({"nsh.spi", "nsh.si"}),
        writes=frozenset({"ethernet.ethertype"}),
    )


def branch_split_table(name: str, n_arms: int) -> P4Table:
    """Traffic-splitting table at a branching node (§A.2.2), pre-populated
    with BPF rules; stores the decision in per-packet metadata."""
    return P4Table(
        name=name,
        match_type=MatchType.TERNARY,
        size=max(16, 8 * n_arms),
        entry_bits=104,
        reads=frozenset({"ipv4.src", "ipv4.dst", "l4.sport", "l4.dport",
                         "vlan.vid"}),
        writes=frozenset({"meta.branch"}),
    )


def merge_check_table(name: str) -> P4Table:
    """Condition check selecting packets that must traverse a merge node."""
    return P4Table(
        name=name,
        match_type=MatchType.EXACT,
        size=32,
        entry_bits=24,
        reads=frozenset({"meta.branch", "meta.chain_id"}),
        writes=frozenset({"meta.merge_ok"}),
    )
