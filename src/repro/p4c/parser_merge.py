"""Unified-parser construction (§A.2.1).

"The meta-compiler starts from an empty parse tree and merges each P4 NF's
parse tree into that unified tree. [...] At each parsing state, it compares
all state transitions between the new tree and the unified tree, and
integrates any non-existing transitions and new headers. If the
meta-compiler encounters a conflicting header transition, then it rejects
this placement because at least two NFs conflict."
"""

from __future__ import annotations

from typing import Iterable

from repro.exceptions import ParserMergeConflict
from repro.p4c.ir import ParseTree


def merge_parse_trees(trees: Iterable[ParseTree]) -> ParseTree:
    """Union-merge NF-local parse trees into one unified parser.

    Raises :class:`ParserMergeConflict` when two trees disagree on where the
    same ``(header, select_field, value)`` transition leads — the paper's
    rejection condition.
    """
    unified = ParseTree()
    for tree in trees:
        merge_into(unified, tree)
    return unified


def merge_into(unified: ParseTree, tree: ParseTree) -> None:
    """Merge one NF-local tree into the unified tree, in place."""
    if tree.root != unified.root:
        raise ParserMergeConflict(
            f"parse trees rooted at different headers: "
            f"{unified.root!r} vs {tree.root!r}"
        )
    unified.headers.update(tree.headers)
    for key, to_header in tree.transitions.items():
        existing = unified.transitions.get(key)
        if existing is not None and existing != to_header:
            from_header, select_field, value = key
            raise ParserMergeConflict(
                f"conflicting transition from {from_header!r} on "
                f"{select_field}={value!r}: {existing!r} vs {to_header!r}"
            )
        unified.transitions[key] = to_header


def reachable_headers(tree: ParseTree) -> set:
    """Headers reachable from the root (unreachable ones are codegen bugs)."""
    seen = {tree.root}
    frontier = [tree.root]
    while frontier:
        header = frontier.pop()
        for nxt in tree.next_headers(header):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen
