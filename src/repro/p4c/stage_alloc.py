"""Stage allocation: packing a table DAG into PISA pipeline stages.

Three allocators model the three regimes the paper contrasts (§5.2):

* :func:`allocate_naive` — what naive codegen yields: tables fully
  serialized (one dependency chain), so stages ~= table count. "Without
  [dependency elimination] the 10-NAT placement would have required 27
  stages."
* :func:`allocate_conservative` — an analytic estimate in the style of
  Sonata [14]: no cross-NF stage sharing, so each NF group contributes its
  own stages. "It estimated 14 stages, while the compiler could fit these
  into 12."
* :func:`allocate_compiler` — models the platform compiler's black-box
  packing: list scheduling with backfill, sharing stages between
  independent tables and across parallel branches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.exceptions import P4CompileError
from repro.hw.pisa import PISAStageResources
from repro.p4c.ir import P4Table, TableDAG


@dataclass
class StageAllocation:
    """Result of packing a pipeline: table names per stage."""

    stages: List[List[str]] = field(default_factory=list)
    available_stages: int = 12
    strategy: str = "compiler"

    @property
    def stage_count(self) -> int:
        return len(self.stages)

    @property
    def fits(self) -> bool:
        return self.stage_count <= self.available_stages

    def stage_of(self, table_name: str) -> int:
        for index, stage in enumerate(self.stages):
            if table_name in stage:
                return index
        raise P4CompileError(f"table {table_name!r} not allocated")


class _StageBin:
    """One stage's remaining resources."""

    def __init__(self, resources: PISAStageResources):
        self.slots = resources.table_slots
        self.sram_kb = resources.sram_kb
        self.tcam_kb = resources.tcam_kb
        self.tables: List[str] = []

    def try_add(self, table: P4Table) -> bool:
        if self.slots < 1:
            return False
        if table.sram_kb > self.sram_kb or table.tcam_kb > self.tcam_kb:
            return False
        self.slots -= 1
        self.sram_kb -= table.sram_kb
        self.tcam_kb -= table.tcam_kb
        self.tables.append(table.name)
        return True


def _check_single_stage_fit(dag: TableDAG, resources: PISAStageResources) -> None:
    for table in dag.tables:
        if (table.sram_kb > resources.sram_kb
                or table.tcam_kb > resources.tcam_kb):
            raise P4CompileError(
                f"table {table.name!r} exceeds a whole stage's memory "
                f"(sram={table.sram_kb:.0f}KB, tcam={table.tcam_kb:.0f}KB)"
            )


def allocate_compiler(
    dag: TableDAG,
    resources: Optional[PISAStageResources] = None,
    available_stages: int = 12,
) -> StageAllocation:
    """List-scheduling with backfill (the optimizing compiler model).

    Tables become schedulable once all their dependencies sit in strictly
    earlier stages; each stage greedily packs ready tables — prioritizing
    deeper-remaining-chain and larger tables — until a resource is
    exhausted.
    """
    resources = resources or PISAStageResources()
    _check_single_stage_fit(dag, resources)

    remaining_depth = _remaining_depths(dag)
    placed_stage: Dict[str, int] = {}
    unplaced = {t.name for t in dag.tables}
    stages: List[List[str]] = []

    while unplaced:
        stage_index = len(stages)
        ready = [
            name for name in unplaced
            if all(placed_stage.get(p, stage_index) < stage_index
                   for p in dag.predecessors(name))
        ]
        if not ready:
            raise P4CompileError("stage allocation stuck: cyclic dependencies?")
        ready.sort(
            key=lambda name: (
                -remaining_depth[name],
                -(dag.table(name).sram_kb + dag.table(name).tcam_kb),
                name,
            )
        )
        stage_bin = _StageBin(resources)
        placed_any = False
        for name in ready:
            if stage_bin.try_add(dag.table(name)):
                placed_stage[name] = stage_index
                unplaced.discard(name)
                placed_any = True
        if not placed_any:
            raise P4CompileError(
                "stage allocation made no progress (table too large?)"
            )
        stages.append(stage_bin.tables)

    return StageAllocation(stages=stages, available_stages=available_stages,
                           strategy="compiler")


def allocate_conservative(
    dag: TableDAG,
    nf_groups: Sequence[Sequence[str]],
    resources: Optional[PISAStageResources] = None,
    available_stages: int = 12,
) -> StageAllocation:
    """Analytic estimate: NF groups never share stages.

    Each group's tables are list-scheduled among themselves; group stage
    spans are then laid end to end. This mirrors conservative estimation
    from placement results without compiler knowledge [14], which the paper
    found "very conservative" — leaving stranded switch resources.
    """
    resources = resources or PISAStageResources()
    stages: List[List[str]] = []
    grouped = {name for group in nf_groups for name in group}
    missing = {t.name for t in dag.tables} - grouped
    if missing:
        raise P4CompileError(f"tables not covered by any NF group: {missing}")

    for group in nf_groups:
        sub = TableDAG()
        group_set = set(group)
        for table in dag.tables:
            if table.name in group_set:
                sub.add_table(table)
        for a, b in dag.edges:
            if a in group_set and b in group_set:
                sub.add_edge(a, b)
        allocation = allocate_compiler(sub, resources,
                                       available_stages=available_stages)
        stages.extend(allocation.stages)

    return StageAllocation(stages=stages, available_stages=available_stages,
                           strategy="conservative")


def allocate_naive(
    dag: TableDAG,
    serialized_order: Optional[Sequence[str]] = None,
    resources: Optional[PISAStageResources] = None,
    available_stages: int = 12,
) -> StageAllocation:
    """Naive codegen: one table per stage in topological-sort order.

    Models emitting NFs sequentially with a check before each NF: every
    table depends on its predecessor, so none can share a stage.
    """
    resources = resources or PISAStageResources()
    _check_single_stage_fit(dag, resources)
    order = list(serialized_order or dag.topological_order())
    stages = [[name] for name in order]
    return StageAllocation(stages=stages, available_stages=available_stages,
                           strategy="naive")


def _remaining_depths(dag: TableDAG) -> Dict[str, int]:
    """Longest chain below each table (scheduling priority)."""
    depth: Dict[str, int] = {}
    for name in reversed(dag.topological_order()):
        succs = dag.successors(name)
        depth[name] = 1 + max((depth[s] for s in succs), default=0)
    return depth
