"""Parse-tree interpreter: execute a (merged) P4 parser on packet bytes.

The meta-compiler's §A.2.1 algorithm produces a unified parse tree; this
module *runs* that tree against real packets — extracting each header's
fields per the header library's bit layout, reading the select field, and
following the matching transition — so tests can verify that the merged
parser accepts exactly the framings its constituent NFs declared.

Framing note: RFC 8300 carries NSH after an outer Ethernet; our simulated
wire format (see :mod:`repro.net.packet`) places the 8-byte NSH base
header at the very front of the buffer. When the tree knows the ``nsh``
header and the buffer starts with a well-formed NSH base header, the
interpreter consumes it first and then parses the inner frame from the
tree's root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import P4CompileError
from repro.net.packet import Packet, _looks_like_nsh
from repro.p4c.ir import HEADER_LIBRARY, ParseTree


class _BitReader:
    """MSB-first bit cursor over bytes."""

    def __init__(self, data: bytes, bit_offset: int = 0):
        self.data = data
        self.bit = bit_offset

    def read(self, width: int) -> int:
        value = 0
        for _ in range(width):
            byte_index, bit_index = divmod(self.bit, 8)
            if byte_index >= len(self.data):
                raise P4CompileError("packet too short for header layout")
            bit = (self.data[byte_index] >> (7 - bit_index)) & 1
            value = (value << 1) | bit
            self.bit += 1
        return value

    @property
    def byte_aligned(self) -> bool:
        return self.bit % 8 == 0


@dataclass
class ParsedHeader:
    """One extracted header instance."""

    name: str
    fields: Dict[str, int] = field(default_factory=dict)


@dataclass
class ParseResult:
    """Outcome of one parser execution."""

    headers: List[ParsedHeader] = field(default_factory=list)
    accepted: bool = True
    consumed_bits: int = 0

    def header(self, name: str) -> Optional[ParsedHeader]:
        for parsed in self.headers:
            if parsed.name == name:
                return parsed
        return None

    def names(self) -> List[str]:
        return [h.name for h in self.headers]


def execute_parser(tree: ParseTree, packet: Packet) -> ParseResult:
    """Run the parse tree over a packet's bytes.

    Extraction walks from the tree's root, following select transitions
    until a state has no matching transition (accept: remaining bytes are
    payload). Unknown select values with no default transition also
    accept — P4 parsers fall through to ``ingress``.
    """
    data = packet.data
    result = ParseResult()
    reader = _BitReader(data)

    if "nsh" in tree.headers and _looks_like_nsh(data):
        _extract(reader, "nsh", result)

    state = tree.root
    visited = 0
    while True:
        visited += 1
        if visited > 64:
            raise P4CompileError("parser loop: too many states")
        if state not in HEADER_LIBRARY:
            raise P4CompileError(f"no layout for header {state!r}")
        parsed = _extract(reader, state, result)
        transitions = {
            (fieldname, value): to
            for (frm, fieldname, value), to in tree.transitions.items()
            if frm == state
        }
        if not transitions:
            return result
        select_field = next(iter(transitions))[0]
        if select_field not in parsed.fields:
            raise P4CompileError(
                f"select field {select_field!r} not in header {state!r}"
            )
        actual = parsed.fields[select_field]
        next_state = transitions.get((select_field, actual))
        if next_state is None:
            next_state = transitions.get((select_field, None))
        if next_state is None:
            return result  # fall through to ingress
        state = next_state


def _extract(reader: _BitReader, header_name: str,
             result: ParseResult) -> ParsedHeader:
    layout = HEADER_LIBRARY[header_name]
    parsed = ParsedHeader(name=header_name)
    for field_name, bits in layout.fields:
        parsed.fields[field_name] = reader.read(bits)
    if not reader.byte_aligned:
        raise P4CompileError(
            f"header {header_name!r} layout is not byte-aligned"
        )
    result.headers.append(parsed)
    result.consumed_bits = reader.bit
    return parsed
