"""NF-DAG → pipeline-tree conversion (§A.2.2).

A P4 pipeline must be a tree traversed once, but NF chains are DAGs with
branching and merging points. The meta-compiler:

* concatenates sequential switch NFs into *P4 subgroups* (saving NSH
  updates and simplifying control flow);
* at a **branching node**, emits a traffic-splitting table and generates
  each branch under a condition check — introducing only the necessary
  dependencies so parallel branches can share stages;
* at a **merging node**, detaches the node and re-attaches it to its direct
  predecessors' common ancestor, at the same level as the ancestor's other
  children; preorder traversal visits all non-merging children first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.exceptions import GraphError
from repro.chain.graph import NFGraph


@dataclass
class SubgroupNode:
    """A P4 subgroup: a maximal run of sequential switch-placed NFs."""

    sg_id: str
    nf_node_ids: List[str] = field(default_factory=list)

    def __hash__(self) -> int:
        return hash(self.sg_id)


@dataclass
class SubgroupDAG:
    """DAG over P4 subgroups, preserving the chain's branch structure."""

    nodes: Dict[str, SubgroupNode] = field(default_factory=dict)
    edges: Set[Tuple[str, str]] = field(default_factory=set)

    def successors(self, sg_id: str) -> List[str]:
        return sorted(b for (a, b) in self.edges if a == sg_id)

    def predecessors(self, sg_id: str) -> List[str]:
        return sorted(a for (a, b) in self.edges if b == sg_id)

    def roots(self) -> List[str]:
        targets = {b for (_a, b) in self.edges}
        return sorted(sg for sg in self.nodes if sg not in targets)

    def branching_nodes(self) -> List[str]:
        return [sg for sg in self.nodes if len(self.successors(sg)) > 1]

    def merging_nodes(self) -> List[str]:
        return [sg for sg in self.nodes if len(self.predecessors(sg)) > 1]

    def topological_order(self) -> List[str]:
        in_degree = {sg: 0 for sg in self.nodes}
        for _a, b in self.edges:
            in_degree[b] += 1
        ready = sorted(sg for sg, deg in in_degree.items() if deg == 0)
        order: List[str] = []
        while ready:
            sg = ready.pop(0)
            order.append(sg)
            for succ in self.successors(sg):
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
            ready.sort()
        if len(order) != len(self.nodes):
            raise GraphError("subgroup DAG has a cycle")
        return order


def build_subgroup_dag(graph: NFGraph, switch_node_ids: Sequence[str]
                       ) -> SubgroupDAG:
    """Concatenate sequential switch-placed NFs into P4 subgroups.

    Two adjacent switch NFs join one subgroup iff the edge between them is
    the only edge at both endpoints (no branch or merge in between) —
    §A.2.2's pre-processing step. NFs placed off-switch are skipped; their
    neighbours connect transitively (the off-switch excursion is a bounce
    handled by routing, not by the P4 pipeline).
    """
    switch_set = set(switch_node_ids)
    order = [nid for nid in graph.topological_order() if nid in switch_set]
    dag = SubgroupDAG()
    assignment: Dict[str, str] = {}
    counter = 0

    for nid in order:
        preds = [p for p in graph.predecessors(nid) if p in switch_set]
        joinable = (
            len(preds) == 1
            and len(graph.in_edges(nid)) == 1
            and len(graph.out_edges(preds[0])) == 1
            and preds[0] in assignment
        )
        if joinable:
            sg_id = assignment[preds[0]]
            dag.nodes[sg_id].nf_node_ids.append(nid)
            assignment[nid] = sg_id
        else:
            sg_id = f"{graph.name}.sg{counter}"
            counter += 1
            dag.nodes[sg_id] = SubgroupNode(sg_id=sg_id, nf_node_ids=[nid])
            assignment[nid] = sg_id

    # Edges between subgroups: follow graph edges, skipping off-switch
    # nodes transitively.
    def switch_successors(nid: str) -> List[str]:
        out: List[str] = []
        stack = [e.dst for e in graph.out_edges(nid)]
        seen = set()
        while stack:
            nxt = stack.pop()
            if nxt in seen:
                continue
            seen.add(nxt)
            if nxt in switch_set:
                out.append(nxt)
            else:
                stack.extend(e.dst for e in graph.out_edges(nxt))
        return out

    for nid in order:
        for succ in switch_successors(nid):
            a, b = assignment[nid], assignment[succ]
            if a != b:
                dag.edges.add((a, b))
    return dag


@dataclass
class TreeNode:
    """A node of the generated pipeline tree."""

    subgroup: SubgroupNode
    children: List["TreeNode"] = field(default_factory=list)
    is_merge: bool = False

    def preorder(self) -> List["TreeNode"]:
        """Preorder traversal, non-merging children before merging ones —
        the visit order §A.2.2 requires for code generation."""
        out: List[TreeNode] = [self]
        ordered = sorted(self.children, key=lambda c: c.is_merge)
        for child in ordered:
            out.extend(child.preorder())
        return out


def dag_to_tree(dag: SubgroupDAG) -> Optional[TreeNode]:
    """Convert a subgroup DAG into the pipeline tree (§A.2.2).

    Merging nodes are detached and re-attached as children of their direct
    predecessors' common ancestor ("that ancestor node has just the right
    scope to ensure that all branches can reach the merging node").
    """
    if not dag.nodes:
        return None
    roots = dag.roots()
    virtual_root: Optional[str] = None
    if len(roots) != 1:
        # A chain that starts off-switch may enter the switch at several
        # points (e.g. a server NF branching into switch NFs). The steering
        # table is the real root of the P4 program; model it as a virtual
        # empty subgroup so the tree stays well-formed.
        virtual_root = "__virtual_root__"
        dag = SubgroupDAG(nodes=dict(dag.nodes), edges=set(dag.edges))
        dag.nodes[virtual_root] = SubgroupNode(sg_id=virtual_root)
        for root in roots:
            dag.edges.add((virtual_root, root))
        roots = [virtual_root]

    # parent map under construction; merges processed in topological order
    # so every predecessor already has a unique parent chain.
    parent: Dict[str, Optional[str]] = {roots[0]: None}
    merge_flag: Dict[str, bool] = {sg: False for sg in dag.nodes}

    for sg in dag.topological_order():
        preds = dag.predecessors(sg)
        if len(preds) <= 1:
            if preds:
                parent[sg] = preds[0]
            continue
        merge_flag[sg] = True
        parent[sg] = _common_ancestor(preds, parent)

    nodes = {
        sg: TreeNode(subgroup=dag.nodes[sg], is_merge=merge_flag[sg])
        for sg in dag.nodes
    }
    root: Optional[TreeNode] = None
    for sg, par in parent.items():
        if par is None:
            root = nodes[sg]
        else:
            nodes[par].children.append(nodes[sg])
    if root is None:
        raise GraphError("pipeline tree lost its root")
    return root


def _common_ancestor(preds: Sequence[str], parent: Dict[str, Optional[str]]
                     ) -> str:
    """Deepest node on every predecessor's path to the root."""

    def path_to_root(sg: str) -> List[str]:
        path = [sg]
        while parent.get(path[-1]) is not None:
            path.append(parent[path[-1]])  # type: ignore[arg-type]
        return path

    paths = [path_to_root(p) for p in preds]
    common = set(paths[0])
    for path in paths[1:]:
        common &= set(path)
    if not common:
        raise GraphError(f"no common ancestor for merge predecessors {preds}")
    # the first common node along any predecessor's upward path is deepest
    for sg in paths[0]:
        if sg in common:
            return sg
    raise GraphError("unreachable")  # pragma: no cover
