"""P4 intermediate representation.

Mirrors the abstract PISA switch model of §A.2: a packet header parser (an
ordered tree rooted at Ethernet) feeding a pipeline of match/action tables.
Tables carry the resource footprints the stage allocator packs against
(logical table slots, SRAM for exact/LPM matches, TCAM for ternary).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.exceptions import P4CompileError


class MatchType(enum.Enum):
    EXACT = "exact"
    TERNARY = "ternary"
    LPM = "lpm"


@dataclass(frozen=True)
class P4Header:
    """A header type: name + (field, bits) layout.

    The meta-compiler's header library predefines common layouts (§4.2);
    NF developers may extend it.
    """

    name: str
    fields: Tuple[Tuple[str, int], ...]

    @property
    def bits(self) -> int:
        return sum(bits for _name, bits in self.fields)

    def field_names(self) -> List[str]:
        return [name for name, _bits in self.fields]


#: The predefined header library (§4.2 "library of predefined headers").
HEADER_LIBRARY: Dict[str, P4Header] = {
    header.name: header
    for header in [
        P4Header("ethernet", (("dst", 48), ("src", 48), ("ethertype", 16))),
        P4Header("vlan", (("pcp", 3), ("dei", 1), ("vid", 12), ("ethertype", 16))),
        P4Header(
            "nsh",
            (("flags", 4), ("ttl", 6), ("length", 6), ("reserved", 4),
             ("md_type", 4), ("next_proto", 8), ("spi", 24), ("si", 8)),
        ),
        P4Header(
            "ipv4",
            (("version", 4), ("ihl", 4), ("dscp", 8), ("total_len", 16),
             ("id", 16), ("frag", 16), ("ttl", 8), ("proto", 8),
             ("checksum", 16), ("src", 32), ("dst", 32)),
        ),
        P4Header("tcp", (("sport", 16), ("dport", 16), ("seq", 32),
                          ("ack", 32), ("data_offset", 4), ("reserved", 4),
                          ("flags", 8), ("window", 16), ("checksum", 16),
                          ("urgent", 16))),
        P4Header("udp", (("sport", 16), ("dport", 16), ("length", 16),
                          ("checksum", 16))),
    ]
}


@dataclass
class ParseTree:
    """An NF-local parser: header nodes + select transitions (§A.2.1).

    ``transitions`` maps ``(from_header, select_field, value)`` to the next
    header; ``value`` of ``None`` is the default transition. This is the
    "simple graph definition language" NF developers use.
    """

    root: str = "ethernet"
    headers: Set[str] = field(default_factory=lambda: {"ethernet"})
    transitions: Dict[Tuple[str, str, Optional[int]], str] = field(
        default_factory=dict
    )

    def add_transition(self, from_header: str, select_field: str,
                       value: Optional[int], to_header: str) -> None:
        if from_header not in self.headers:
            raise P4CompileError(
                f"transition from undeclared header {from_header!r}"
            )
        self.headers.add(to_header)
        key = (from_header, select_field, value)
        existing = self.transitions.get(key)
        if existing is not None and existing != to_header:
            raise P4CompileError(
                f"parser self-conflict: {key} -> {existing} vs {to_header}"
            )
        self.transitions[key] = to_header

    def next_headers(self, from_header: str) -> Set[str]:
        return {
            to for (frm, _f, _v), to in self.transitions.items() if frm == from_header
        }

    def copy(self) -> "ParseTree":
        tree = ParseTree(root=self.root, headers=set(self.headers))
        tree.transitions = dict(self.transitions)
        return tree


def ethernet_ipv4_tree(l4: bool = True) -> ParseTree:
    """The common Ethernet→IPv4(→TCP/UDP) parse tree most NFs need."""
    tree = ParseTree()
    tree.add_transition("ethernet", "ethertype", 0x0800, "ipv4")
    if l4:
        tree.add_transition("ipv4", "proto", 6, "tcp")
        tree.add_transition("ipv4", "proto", 17, "udp")
    return tree


@dataclass(frozen=True)
class P4Table:
    """One match/action table with its resource footprint.

    ``reads`` are fields the match key or actions read; ``writes`` are fields
    the actions modify. The dependency analyzer derives ordering edges from
    these sets (a table matching a field another table writes must be placed
    in a strictly later stage, §4.2 fact (2)).
    """

    name: str
    match_type: MatchType = MatchType.EXACT
    size: int = 64
    entry_bits: int = 64
    reads: FrozenSet[str] = frozenset()
    writes: FrozenSet[str] = frozenset()

    @property
    def sram_kb(self) -> float:
        if self.match_type is MatchType.TERNARY:
            return 0.0
        return self.size * self.entry_bits / 8 / 1024

    @property
    def tcam_kb(self) -> float:
        if self.match_type is not MatchType.TERNARY:
            return 0.0
        return self.size * self.entry_bits / 8 / 1024

    def __hash__(self) -> int:
        return hash(self.name)


@dataclass
class TableDAG:
    """The unified pipeline's table dependency DAG.

    Edges (a, b) mean table ``b`` must be placed in a strictly later stage
    than ``a``. ``exclusive_groups`` lists sets of tables that process
    mutually exclusive traffic (parallel branches) — the compiler may pack
    them into the same stages (§4.2 optimization (d)).
    """

    tables: List[P4Table] = field(default_factory=list)
    edges: Set[Tuple[str, str]] = field(default_factory=set)
    exclusive_groups: List[Set[str]] = field(default_factory=list)

    def add_table(self, table: P4Table) -> None:
        if any(t.name == table.name for t in self.tables):
            raise P4CompileError(f"duplicate table name {table.name!r}")
        self.tables.append(table)

    def add_edge(self, before: str, after: str) -> None:
        names = {t.name for t in self.tables}
        if before not in names or after not in names:
            raise P4CompileError(f"dependency references unknown table: "
                                 f"{before} -> {after}")
        if before == after:
            raise P4CompileError(f"self-dependency on table {before!r}")
        self.edges.add((before, after))

    def table(self, name: str) -> P4Table:
        for t in self.tables:
            if t.name == name:
                return t
        raise P4CompileError(f"no table named {name!r}")

    def predecessors(self, name: str) -> Set[str]:
        return {a for (a, b) in self.edges if b == name}

    def successors(self, name: str) -> Set[str]:
        return {b for (a, b) in self.edges if a == name}

    def topological_order(self) -> List[str]:
        in_degree = {t.name: 0 for t in self.tables}
        for _a, b in self.edges:
            in_degree[b] += 1
        ready = sorted(name for name, deg in in_degree.items() if deg == 0)
        order: List[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for succ in sorted(self.successors(name)):
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
            ready.sort()
        if len(order) != len(self.tables):
            raise P4CompileError("table dependency graph has a cycle")
        return order

    def depth(self) -> int:
        """Longest dependency chain length (lower bound on stages)."""
        level: Dict[str, int] = {}
        for name in self.topological_order():
            preds = self.predecessors(name)
            level[name] = 1 + max((level[p] for p in preds), default=0)
        return max(level.values(), default=0)

    def merge(self, other: "TableDAG") -> None:
        """Union another DAG in (used when unifying chains on one switch)."""
        for table in other.tables:
            self.add_table(table)
        for a, b in other.edges:
            self.add_edge(a, b)
        self.exclusive_groups.extend(
            set(group) for group in other.exclusive_groups
        )


@dataclass
class P4NF:
    """A standalone P4 NF (§4.2): headers, NF-local parser, tables.

    ``entry_table``/``exit_tables`` mark where inter-NF dependency edges
    attach when NFs are composed into a chain.
    """

    name: str
    parse_tree: ParseTree
    dag: TableDAG
    entry_tables: List[str] = field(default_factory=list)
    exit_tables: List[str] = field(default_factory=list)
    headers: Set[str] = field(default_factory=set)

    def table_names(self) -> List[str]:
        return [t.name for t in self.dag.tables]
