"""Table dependency analysis.

Two facts drive stage layout (§4.2): (1) a match/action table cannot be
revisited, so the pipeline is a tree traversed once; (2) two tables with a
dependency between them cannot share a stage. This module derives
read-after-write ("match") and write-after-write ("action") dependencies
from the tables' declared ``reads``/``writes`` sets, *within the scope the
codegen declares* — the codegen's dependency-elimination optimizations work
precisely by keeping unrelated tables out of each other's scope.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Optional, Sequence, Set, Tuple

from repro.p4c.ir import P4Table, TableDAG


def data_dependent(before: P4Table, after: P4Table) -> bool:
    """Must ``after`` be placed strictly later than ``before``?

    True for match dependencies (``after`` reads what ``before`` writes) and
    action-output dependencies (both write the same field — order matters).
    """
    if before.writes & after.reads:
        return True
    if before.writes & after.writes:
        return True
    return False


def infer_dependencies(
    dag: TableDAG,
    ordered_scope: Sequence[str],
    exclusive_pairs: Optional[Set[Tuple[str, str]]] = None,
) -> None:
    """Add data-dependency edges between tables in program order.

    ``ordered_scope`` lists table names in the program order the codegen
    emitted; for each ordered pair with a data dependency an edge is added —
    unless the pair is marked mutually exclusive (parallel branches), in
    which case the compiler may pack them together (§4.2 optimization (d)).
    """
    exclusive_pairs = exclusive_pairs or set()
    for i, j in combinations(range(len(ordered_scope)), 2):
        a_name, b_name = ordered_scope[i], ordered_scope[j]
        if (a_name, b_name) in exclusive_pairs or (b_name, a_name) in exclusive_pairs:
            continue
        a, b = dag.table(a_name), dag.table(b_name)
        if data_dependent(a, b):
            dag.add_edge(a_name, b_name)


def chain_dependencies(dag: TableDAG, ordered_scope: Sequence[str]) -> None:
    """Fully serialize a scope: each table after its predecessor.

    This is what naive codegen produces ("generate code for NFs in a
    topological-sort order, and place a check at the beginning of each NF")
    and why it wastes stages.
    """
    for before, after in zip(ordered_scope, ordered_scope[1:]):
        dag.add_edge(before, after)


def exclusive_table_pairs(groups: Iterable[Set[str]]) -> Set[Tuple[str, str]]:
    """Expand exclusivity groups into unordered exclusive table pairs.

    Tables in *different* groups of the same branch block never see the same
    packet, so no dependency between them is necessary.
    """
    pairs: Set[Tuple[str, str]] = set()
    group_list = [sorted(g) for g in groups]
    for gi, gj in combinations(range(len(group_list)), 2):
        for a in group_list[gi]:
            for b in group_list[gj]:
                pairs.add((a, b))
    return pairs
