"""PISA pipeline compiler simulator.

Stands in for Barefoot's Tofino P4 compiler. The Placer cannot estimate
switch stage usage analytically ("it is hard to estimate a priori the number
of PISA switch stages used by a placement because the PISA compiler performs
stage packing", §3.2), so Lemur invokes the compiler to check feasibility.
This package provides:

* a P4 IR (headers, parser trees, match/action tables) — :mod:`repro.p4c.ir`;
* a library of standalone P4 NFs (§4.2) — :mod:`repro.p4c.nflib`;
* parse-tree union merging with conflict rejection (§A.2.1) —
  :mod:`repro.p4c.parser_merge`;
* table dependency analysis — :mod:`repro.p4c.dependency`;
* NF-DAG → pipeline-tree conversion (§A.2.2) — :mod:`repro.p4c.pipeline_tree`;
* three stage allocators (naive / conservative-estimate / optimizing
  compiler) — :mod:`repro.p4c.stage_alloc`;
* the top-level :class:`repro.p4c.compiler.PISACompiler`.
"""

from repro.p4c.ir import P4Header, P4Table, ParseTree, TableDAG, MatchType
from repro.p4c.parser_merge import merge_parse_trees
from repro.p4c.dependency import infer_dependencies
from repro.p4c.stage_alloc import (
    StageAllocation,
    allocate_compiler,
    allocate_conservative,
    allocate_naive,
)
from repro.p4c.parser_exec import ParseResult, execute_parser
from repro.p4c.compiler import CompileResult, PISACompiler

__all__ = [
    "P4Header",
    "P4Table",
    "ParseTree",
    "TableDAG",
    "MatchType",
    "merge_parse_trees",
    "infer_dependencies",
    "StageAllocation",
    "allocate_compiler",
    "allocate_conservative",
    "allocate_naive",
    "CompileResult",
    "PISACompiler",
    "ParseResult",
    "execute_parser",
]
