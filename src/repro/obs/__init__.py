"""``repro.obs`` — the uniform observability surface (counters, histograms,
timers) every layer records into: Placer stage timings, meta-compiler
codegen times, and the simulated dataplane's per-device packet/drop/cycle
accounting. Exposed to operators via ``repro stats``.

Usage::

    from repro.obs import get_registry

    reg = get_registry()
    reg.counter("lp.solves", objective="marginal").inc()
    with reg.timer("placer.place.seconds", strategy="lemur"):
        ...

A process-wide default registry backs all instrumentation; tests and the
CLI swap in a fresh one with :func:`set_registry` or :func:`scoped_registry`.
Set ``REPRO_OBS=0`` in the environment to start disabled (instrument getters
then return shared no-op objects, making the overhead a single empty call).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.export import render_json, render_text
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_TIMER,
    Timer,
    quantile,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_TIMER",
    "get_registry",
    "set_registry",
    "scoped_registry",
    "render_json",
    "render_text",
    "quantile",
]


def _env_enabled() -> bool:
    return os.environ.get("REPRO_OBS", "1").lower() not in (
        "0", "false", "off", "no",
    )


_registry = MetricsRegistry(enabled=_env_enabled())


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _registry


def set_registry(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install (and return) a new default registry; None means a fresh one."""
    global _registry
    _registry = registry if registry is not None else MetricsRegistry()
    return _registry


@contextmanager
def scoped_registry(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Temporarily swap the default registry (test isolation)."""
    global _registry
    previous = _registry
    _registry = registry if registry is not None else MetricsRegistry()
    try:
        yield _registry
    finally:
        _registry = previous
