"""Exporters: registry snapshot → JSON document or aligned text table."""

from __future__ import annotations

import json
from typing import Optional

from repro.obs.metrics import MetricsRegistry


def _labels_suffix(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def render_json(registry: MetricsRegistry, indent: Optional[int] = 2) -> str:
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=False)


def render_text(registry: MetricsRegistry) -> str:
    """Human-readable dump, one instrument per line::

        counter    lp.solves{objective=marginal}            3
        histogram  placer.place.seconds{strategy=lemur}     n=1 mean=0.012 ...
    """
    snapshot = registry.snapshot()
    lines = []
    names = [
        f"{c['name']}{_labels_suffix(c['labels'])}"
        for c in snapshot["counters"]
    ] + [
        f"{g['name']}{_labels_suffix(g['labels'])}"
        for g in snapshot.get("gauges", ())
    ] + [
        f"{h['name']}{_labels_suffix(h['labels'])}"
        for h in snapshot["histograms"]
    ]
    width = max((len(n) for n in names), default=0)
    for entry in snapshot["counters"]:
        name = f"{entry['name']}{_labels_suffix(entry['labels'])}"
        value = entry["value"]
        rendered = f"{value:g}" if isinstance(value, float) else str(value)
        lines.append(f"counter    {name:<{width}}  {rendered}")
    for entry in snapshot.get("gauges", ()):
        name = f"{entry['name']}{_labels_suffix(entry['labels'])}"
        value = entry["value"]
        rendered = f"{value:g}" if isinstance(value, float) else str(value)
        lines.append(f"gauge      {name:<{width}}  {rendered}")
    for entry in snapshot["histograms"]:
        name = f"{entry['name']}{_labels_suffix(entry['labels'])}"
        lines.append(
            f"histogram  {name:<{width}}  n={entry['count']} "
            f"mean={entry['mean']:.6g} min={entry['min']:.6g} "
            f"max={entry['max']:.6g} p50={entry['p50']:.6g} "
            f"p95={entry['p95']:.6g} p99={entry['p99']:.6g}"
        )
    return "\n".join(lines)
