"""Core metric types: counters, histograms, timers, and their registry.

Design goals (the ISSUE's "near-zero overhead when disabled"):

* **Enabled path**: instruments are plain objects with ``__slots__``; a
  ``Counter.inc`` is one attribute add, a ``Histogram.observe`` a handful
  of comparisons. Hot loops fetch instruments once and keep references.
* **Disabled path**: :meth:`MetricsRegistry.counter` (et al.) hand back
  shared null singletons whose record methods are empty — call sites need
  no ``if enabled`` branches and pay only a no-op method call.

Instruments are identified by ``(name, labels)``; asking the registry for
the same pair twice returns the same object, so concurrent layers (placer,
meta-compiler, dataplane) naturally aggregate into one surface.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: retained samples per histogram; beyond this, count/sum/min/max stay
#: exact but percentiles reflect the first SAMPLE_CAP observations.
SAMPLE_CAP = 4096


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def quantile(samples, q: float) -> float:
    """Linearly interpolated q-quantile (0..1) of a sample sequence.

    Implements ``numpy.quantile``'s default "linear" method without
    requiring the input to be an array: sort, locate the virtual index
    ``q * (n - 1)``, interpolate between the flanking order statistics.
    Empty input yields 0.0 (mirrors :meth:`Histogram.percentile`).
    """
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    if not 0 <= q <= 1:
        raise ValueError(f"quantile out of range: {q}")
    virtual = q * (len(ordered) - 1)
    lo = int(virtual)
    hi = min(lo + 1, len(ordered) - 1)
    frac = virtual - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}{dict(self.labels)} = {self.value}>"


class Gauge:
    """A value that can move both ways (e.g. degraded-mode flags).

    Unlike a :class:`Counter`, merging worker state takes the incoming
    value as-is (last write wins) — a gauge states *current* condition,
    not accumulated volume.
    """

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def __repr__(self) -> str:
        return f"<Gauge {self.name}{dict(self.labels)} = {self.value}>"


class Histogram:
    """Streaming distribution summary with bounded sample retention."""

    __slots__ = ("name", "labels", "count", "total", "min", "max", "_samples")

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.count: int = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._samples) < SAMPLE_CAP:
            self._samples.append(value)

    def observe_many(self, values) -> None:
        """Observe a whole batch, bit-identical to observing serially.

        ``total`` must match a sequential ``total += v`` left fold exactly
        (the batch-equivalence oracle compares registry dumps), so the sum
        uses ``np.add.accumulate`` — a strict left-to-right recurrence —
        rather than ``np.sum``'s pairwise reduction.
        """
        values = list(values) if not hasattr(values, "__len__") else values
        n = len(values)
        if n == 0:
            return
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - numpy is a hard dep
            for value in values:
                self.observe(float(value))
            return
        arr = np.asarray(values, dtype=np.float64)
        self.count += n
        acc = np.empty(n + 1, dtype=np.float64)
        acc[0] = self.total
        acc[1:] = arr
        self.total = float(np.add.accumulate(acc)[-1])
        lo = float(arr.min())
        hi = float(arr.max())
        if self.min is None or lo < self.min:
            self.min = lo
        if self.max is None or hi > self.max:
            self.max = hi
        room = SAMPLE_CAP - len(self._samples)
        if room > 0:
            self._samples.extend(arr[:room].tolist())

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """q-th percentile (0..100) over the retained samples."""
        if not self._samples:
            return 0.0
        if not 0 <= q <= 100:
            raise ValueError(f"percentile out of range: {q}")
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, int(round(q / 100 * (len(ordered) - 1))))
        return ordered[index]

    def quantile(self, q: float) -> float:
        """Linearly interpolated q-quantile (0..1) over retained samples.

        Matches ``numpy.quantile``'s default (``method="linear"``):
        the virtual index is ``q * (n - 1)`` and fractional positions
        interpolate between the two neighbouring order statistics. The
        guard's windowed-p99 check uses this, so two samples straddling
        the SLO bound yield the interpolated value rather than snapping
        to whichever side ``percentile``'s nearest-rank rounding picks.
        """
        if not 0 <= q <= 1:
            raise ValueError(f"quantile out of range: {q}")
        return quantile(self._samples, q)

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min or 0.0,
            "max": self.max or 0.0,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def merge(self, count: int, total: float, minimum: Optional[float],
              maximum: Optional[float], samples: List[float]) -> None:
        """Fold another histogram's state in (worker registry merge-back).

        count/sum/min/max stay exact; retained samples append up to
        SAMPLE_CAP, mirroring :meth:`observe`'s retention policy.
        """
        self.count += count
        self.total += total
        if minimum is not None and (self.min is None or minimum < self.min):
            self.min = minimum
        if maximum is not None and (self.max is None or maximum > self.max):
            self.max = maximum
        room = SAMPLE_CAP - len(self._samples)
        if room > 0:
            self._samples.extend(samples[:room])

    def __repr__(self) -> str:
        return (f"<Histogram {self.name}{dict(self.labels)} "
                f"n={self.count} mean={self.mean:.3g}>")


class Timer:
    """Context manager recording elapsed seconds into a histogram.

    >>> with registry.timer("placer.place.seconds", strategy="lemur"):
    ...     place()                                       # doctest: +SKIP
    """

    __slots__ = ("histogram", "last_seconds", "_start")

    def __init__(self, histogram: Histogram):
        self.histogram = histogram
        self.last_seconds: float = 0.0
        self._start: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.last_seconds = time.perf_counter() - self._start
        self.histogram.observe(self.last_seconds)


class _NullCounter:
    __slots__ = ()
    name = "null"
    labels: LabelKey = ()
    value = 0

    def inc(self, amount: float = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "null"
    labels: LabelKey = ()
    value = 0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "null"
    labels: LabelKey = ()
    count = 0
    total = 0.0
    min = None
    max = None
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass

    def merge(self, count, total, minimum, maximum, samples) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def quantile(self, q: float) -> float:
        return 0.0

    def summary(self) -> Dict[str, float]:
        return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}


class _NullTimer:
    __slots__ = ()
    last_seconds = 0.0

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()
NULL_TIMER = _NullTimer()


class MetricsRegistry:
    """Holds every instrument; the uniform observation surface.

    A disabled registry returns null instruments from every getter, so
    instrumented code runs with near-zero overhead. Toggling ``enabled``
    affects *subsequent* getter calls — call sites that cached a null
    instrument keep it, which is exactly the cheap behaviour wanted for
    long-lived hot paths.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # -- instrument getters -----------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        if not self.enabled:
            return NULL_COUNTER  # type: ignore[return-value]
        key = (name, _label_key(labels))
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter(name, key[1])
        return counter

    def gauge(self, name: str, **labels) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE  # type: ignore[return-value]
        key = (name, _label_key(labels))
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = Gauge(name, key[1])
        return gauge

    def histogram(self, name: str, **labels) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM  # type: ignore[return-value]
        key = (name, _label_key(labels))
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram(name, key[1])
        return histogram

    def timer(self, name: str, **labels) -> Timer:
        if not self.enabled:
            return NULL_TIMER  # type: ignore[return-value]
        return Timer(self.histogram(name, **labels))

    # -- introspection ------------------------------------------------------

    def counters(self) -> Iterator[Counter]:
        return iter(self._counters.values())

    def gauges(self) -> Iterator[Gauge]:
        return iter(self._gauges.values())

    def histograms(self) -> Iterator[Histogram]:
        return iter(self._histograms.values())

    def counter_value(self, name: str, **labels) -> float:
        """Read a counter without creating it (0 if absent)."""
        entry = self._counters.get((name, _label_key(labels)))
        return entry.value if entry is not None else 0

    def gauge_value(self, name: str, **labels) -> float:
        """Read a gauge without creating it (0 if absent)."""
        entry = self._gauges.get((name, _label_key(labels)))
        return entry.value if entry is not None else 0

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def dump_state(self) -> dict:
        """Serializable full state (including histogram samples).

        Unlike :meth:`snapshot` — a reporting summary — this is lossless
        enough to reconstruct instruments elsewhere: sweep workers dump
        their per-process registries and the parent folds them back in
        with :meth:`merge_state`. Deterministically ordered.
        """
        return {
            "counters": [
                [c.name, list(c.labels), c.value]
                for c in sorted(self._counters.values(),
                                key=lambda c: (c.name, c.labels))
            ],
            "gauges": [
                [g.name, list(g.labels), g.value]
                for g in sorted(self._gauges.values(),
                                key=lambda g: (g.name, g.labels))
            ],
            "histograms": [
                [h.name, list(h.labels), h.count, h.total, h.min, h.max,
                 list(h._samples)]
                for h in sorted(self._histograms.values(),
                                key=lambda h: (h.name, h.labels))
            ],
        }

    def merge_state(self, state: dict) -> None:
        """Fold a :meth:`dump_state` payload into this registry.

        Counters add; histograms merge exactly (count/sum/min/max) with
        sample retention capped as usual. No-op instruments are skipped,
        and a disabled registry ignores everything.
        """
        for name, labels, value in state.get("counters", ()):
            if value:
                self.counter(name, **dict(labels)).inc(value)
        for name, labels, value in state.get("gauges", ()):
            self.gauge(name, **dict(labels)).set(value)
        for name, labels, count, total, mn, mx, samples in \
                state.get("histograms", ()):
            if count:
                self.histogram(name, **dict(labels)).merge(
                    count, total, mn, mx, samples
                )

    def snapshot(self) -> dict:
        """Plain-dict dump of every instrument (the export input)."""
        return {
            "counters": [
                {"name": c.name, "labels": dict(c.labels), "value": c.value}
                for c in sorted(self._counters.values(),
                                key=lambda c: (c.name, c.labels))
            ],
            "gauges": [
                {"name": g.name, "labels": dict(g.labels), "value": g.value}
                for g in sorted(self._gauges.values(),
                                key=lambda g: (g.name, g.labels))
            ],
            "histograms": [
                {"name": h.name, "labels": dict(h.labels), **h.summary()}
                for h in sorted(self._histograms.values(),
                                key=lambda h: (h.name, h.labels))
            ],
        }
