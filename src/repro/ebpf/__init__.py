"""eBPF SmartNIC substrate (§A.3).

Models the Netronome Agilio offload path: programs are written in C,
compiled to eBPF, verified under the offload verifier's constraints
(512-byte stack, 4096 instructions, no back-edges, no function calls), and
hooked to ingress traffic via XDP.
"""

from repro.ebpf.program import EBPFProgram, EBPFSection
from repro.ebpf.verifier import VerifierReport, verify_program
from repro.ebpf.nic import SmartNICRuntime, XDPAction

__all__ = [
    "EBPFProgram",
    "EBPFSection",
    "VerifierReport",
    "verify_program",
    "SmartNICRuntime",
    "XDPAction",
]
