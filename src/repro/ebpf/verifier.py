"""The eBPF offload verifier (§A.3).

"It has only 512 bytes of memory stack. It can only load 4096
instructions. There can be no function call. [...] The verifier does not
allow back-edge jumps (for, while)."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.ebpf.program import EBPFProgram
from repro.exceptions import VerifierError

MAX_INSTRUCTIONS = 4096
MAX_STACK_BYTES = 512


@dataclass
class VerifierReport:
    """Outcome of verification; ``violations`` is empty on success."""

    program: str
    instructions: int
    stack_bytes: int
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def verify_program(program: EBPFProgram, strict: bool = True
                   ) -> VerifierReport:
    """Verify a program against the offload constraints.

    With ``strict`` (default) a failing program raises
    :class:`VerifierError`, mirroring a load failure on the NIC.
    """
    report = VerifierReport(
        program=program.name,
        instructions=program.instructions,
        stack_bytes=program.stack_bytes,
    )
    if program.instructions > MAX_INSTRUCTIONS:
        report.violations.append(
            f"program has {program.instructions} instructions "
            f"> {MAX_INSTRUCTIONS}"
        )
    if program.stack_bytes > MAX_STACK_BYTES:
        report.violations.append(
            f"stack usage {program.stack_bytes} B > {MAX_STACK_BYTES} B"
        )
    if program.has_back_edges:
        report.violations.append("back-edge jump (loop) detected")
    if program.has_calls:
        report.violations.append("function call detected")
    if strict and report.violations:
        raise VerifierError(
            f"{program.name}: " + "; ".join(report.violations)
        )
    return report
