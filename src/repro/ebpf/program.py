"""eBPF program model.

An :class:`EBPFProgram` carries the generated C source plus the attributes
the offload verifier cares about: instruction count, stack usage, whether
any back-edges (loops) or function calls survived code generation. The
meta-compiler's eBPF backend eliminates loops by unrolling and calls by
inlining (§A.3), and records how many of each it removed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class EBPFSection:
    """One logical section of the program (dispatcher or one NF)."""

    name: str
    nf_class: Optional[str]
    instructions: int
    stack_bytes: int
    source: str = ""


@dataclass
class EBPFProgram:
    """A complete XDP program destined for the SmartNIC."""

    name: str
    sections: List[EBPFSection] = field(default_factory=list)
    has_back_edges: bool = False
    has_calls: bool = False
    unrolled_loops: int = 0
    inlined_calls: int = 0
    #: demux: (spi, si) -> (nf section index, next_spi, next_si, exits)
    demux: Dict[Tuple[int, int], Tuple[int, int, int, bool]] = field(
        default_factory=dict
    )

    @property
    def instructions(self) -> int:
        return sum(s.instructions for s in self.sections)

    @property
    def stack_bytes(self) -> int:
        """Peak stack: sections execute sequentially, frames are reused
        except the dispatcher's, which stays live."""
        if not self.sections:
            return 0
        dispatcher = self.sections[0].stack_bytes
        deepest_nf = max((s.stack_bytes for s in self.sections[1:]),
                         default=0)
        return dispatcher + deepest_nf

    @property
    def source(self) -> str:
        return "\n".join(s.source for s in self.sections)
