"""SmartNIC execution runtime: XDP hook + verified program.

The runtime verifies the program at load time (offload verifier) and then
processes packets: the dispatcher section demuxes on (SPI, SI), the
selected NF section transforms the packet (delegating to the functional
module library so behaviour matches the server implementation), and the
egress path rewrites the NSH tag toward the next hop.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

from repro.bess.modules import make_nf_module
from repro.ebpf.program import EBPFProgram
from repro.ebpf.verifier import verify_program
from repro.exceptions import DataplaneError
from repro.hw.smartnic import SmartNIC
from repro.net.packet import Packet
from repro.profiles.defaults import ProfileDatabase


class XDPAction(enum.Enum):
    PASS = "pass"      # continue to the next hop (re-encapsulated)
    DROP = "drop"
    TX = "tx"          # bounce back out of the NIC port


class SmartNICRuntime:
    """One SmartNIC with a loaded XDP/eBPF program."""

    def __init__(self, nic: SmartNIC, profiles: ProfileDatabase,
                 seed: int = 0):
        self.nic = nic
        self.profiles = profiles
        self.seed = seed
        self.program: Optional[EBPFProgram] = None
        self._nf_modules: Dict[int, object] = {}
        self._nf_specs: List[Tuple[str, dict]] = []
        self.rx = 0
        self.tx = 0
        self.drops = 0
        #: cumulative per-engine NIC cycles charged (the NIC's own clock).
        self.cycles_charged = 0

    def load(self, program: EBPFProgram,
             nf_specs: List[Tuple[str, dict]]) -> None:
        """Verify then install the program (§A.3 load path).

        ``nf_specs`` pairs each NF section (after the dispatcher) with the
        (nf_class, params) its generated C implements; the runtime uses the
        functional library to execute them.
        """
        verify_program(program)  # raises VerifierError on rejection
        self.program = program
        self._nf_specs = list(nf_specs)
        self._nf_modules = {}
        for index, (nf_class, params) in enumerate(nf_specs):
            module = make_nf_module(
                nf_class, params,
                name=f"{self.nic.name}/{nf_class}{index}",
                database=self.profiles,
                seed=f"{self.seed}/{self.nic.name}",
            )
            # NIC engines process in parallel at their own clock; CPU
            # cycle accounting (server profiles) does not apply here.
            module.database = None
            self._nf_modules[index] = module

    def route_entry(self, spi: int, si: int) -> Optional[tuple]:
        """Resolve one demux route to ``(module, next_spi, next_si,
        nic_cycles)``, or ``None`` when the program drops that coordinate.

        The batched path and the columnar probe share this resolution so
        their drop/forward decisions cannot diverge.
        """
        if self.program is None:
            raise DataplaneError(f"{self.nic.name}: no program loaded")
        route = self.program.demux.get((spi, si))
        if route is None:
            return None
        section_index, next_spi, next_si, _exits = route
        module = self._nf_modules.get(section_index)
        if module is None:
            return None
        nf_class, _params = self._nf_specs[section_index]
        nic_cycles = int(self.profiles.nic_cycles(nf_class) or 0)
        return (module, next_spi, next_si, nic_cycles)

    def process(self, packet: Packet) -> Tuple[XDPAction, Packet]:
        """Run one packet through the XDP hook."""
        if self.program is None:
            raise DataplaneError(f"{self.nic.name}: no program loaded")
        self.rx += 1
        nsh = packet.pop_nsh()
        if nsh is None:
            self.drops += 1
            return (XDPAction.DROP, packet)
        route = self.program.demux.get((nsh.spi, nsh.si))
        if route is None:
            self.drops += 1
            return (XDPAction.DROP, packet)
        section_index, next_spi, next_si, exits = route
        module = self._nf_modules.get(section_index)
        if module is None:
            self.drops += 1
            return (XDPAction.DROP, packet)
        outputs = module.receive(packet)
        if not outputs:
            self.drops += 1
            return (XDPAction.DROP, packet)
        _gate, out = outputs[0]
        # Charge the NF's per-engine NIC cycle cost on the NIC's clock —
        # these are *NIC* cycles, so latency conversion must use
        # ``nic.freq_hz``, never a server frequency.
        nf_class, _params = self._nf_specs[section_index]
        nic_cycles = int(self.profiles.nic_cycles(nf_class) or 0)
        if nic_cycles:
            meta = out.metadata
            meta.cycles_consumed += nic_cycles
            meta.cycles_by_device[self.nic.name] = (
                meta.cycles_by_device.get(self.nic.name, 0) + nic_cycles
            )
            self.cycles_charged += nic_cycles
        out.push_nsh(next_spi, next_si)
        self.tx += 1
        return (XDPAction.TX, out)

    def process_batch(self, packets: List[Packet]
                      ) -> List[Tuple[XDPAction, Packet]]:
        """Run a batch through the XDP hook, one result per input.

        Semantically identical to calling :meth:`process` per packet in
        order (modules keep seeing packets in arrival order); the demux
        route, NF module, and per-engine cycle cost are resolved once per
        (SPI, SI) seen in the batch instead of once per packet.
        """
        if self.program is None:
            raise DataplaneError(f"{self.nic.name}: no program loaded")
        self.rx += len(packets)
        nic_name = self.nic.name
        route_cache: Dict[Tuple[int, int], Optional[tuple]] = {}
        results: List[Tuple[XDPAction, Packet]] = []
        drops = 0
        tx = 0
        cycles_total = 0
        for packet in packets:
            nsh = packet.pop_nsh()
            if nsh is None:
                drops += 1
                results.append((XDPAction.DROP, packet))
                continue
            key = (nsh.spi, nsh.si)
            entry = route_cache.get(key, False)
            if entry is False:
                entry = route_cache[key] = self.route_entry(*key)
            if entry is None:
                drops += 1
                results.append((XDPAction.DROP, packet))
                continue
            module, next_spi, next_si, nic_cycles = entry
            # inlined Module.receive: NIC modules never carry a profile
            # database (account() is a no-op), so only the counters and the
            # drop-flag filtering need replicating
            module.rx_packets += 1
            outputs = module.process(packet)
            if len(outputs) == 1 and not outputs[0][1].metadata.drop_flag:
                module.tx_packets += 1
            else:
                emitted = len(outputs)
                outputs = [
                    (gate, pkt) for gate, pkt in outputs
                    if not pkt.metadata.drop_flag
                ]
                module.dropped_packets += (
                    emitted - len(outputs) if emitted else 1
                )
                module.tx_packets += len(outputs)
            if not outputs:
                drops += 1
                results.append((XDPAction.DROP, packet))
                continue
            _gate, out = outputs[0]
            if nic_cycles:
                meta = out.metadata
                meta.cycles_consumed += nic_cycles
                meta.cycles_by_device[nic_name] = (
                    meta.cycles_by_device.get(nic_name, 0) + nic_cycles
                )
                cycles_total += nic_cycles
            out.push_nsh(next_spi, next_si)
            tx += 1
            results.append((XDPAction.TX, out))
        self.drops += drops
        self.tx += tx
        self.cycles_charged += cycles_total
        return results
