"""Packet substrate: header codecs, packets, flows, and traffic generation.

This package stands in for the paper's testbed traffic generator (a BESS
server driving a 100 Gbps NIC). It provides byte-accurate header encoding so
the simulated dataplanes (:mod:`repro.bess`, :mod:`repro.ebpf`,
:mod:`repro.openflow`) operate on real packet bytes, plus flow/traffic
generators reproducing the paper's profiling workloads (footnote 6).
"""

from repro.net.headers import (
    EthernetHeader,
    IPv4Header,
    NSHHeader,
    TCPHeader,
    UDPHeader,
    VLANHeader,
    ETHERTYPE_IPV4,
    ETHERTYPE_NSH,
    ETHERTYPE_VLAN,
    PROTO_TCP,
    PROTO_UDP,
    ip_to_int,
    int_to_ip,
)
from repro.net.packet import Packet, PacketMetadata
from repro.net.flows import FiveTuple, Flow, TrafficAggregate
from repro.net.traffic import (
    TrafficGenerator,
    long_lived_workload,
    short_lived_workload,
)

__all__ = [
    "EthernetHeader",
    "VLANHeader",
    "IPv4Header",
    "TCPHeader",
    "UDPHeader",
    "NSHHeader",
    "ETHERTYPE_IPV4",
    "ETHERTYPE_VLAN",
    "ETHERTYPE_NSH",
    "PROTO_TCP",
    "PROTO_UDP",
    "ip_to_int",
    "int_to_ip",
    "Packet",
    "PacketMetadata",
    "FiveTuple",
    "Flow",
    "TrafficAggregate",
    "TrafficGenerator",
    "long_lived_workload",
    "short_lived_workload",
]
