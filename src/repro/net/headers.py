"""Byte-accurate header codecs for the simulated dataplanes.

Implements the headers Lemur's platforms must agree on: Ethernet, 802.1Q VLAN,
IPv4, TCP, UDP, and the Network Service Header (NSH, RFC 8300) that Lemur uses
to stitch cross-platform NF chains (§4.1). Each header is a frozen-ish
dataclass with ``pack()``/``unpack()`` methods over ``bytes``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_VLAN = 0x8100
ETHERTYPE_NSH = 0x894F

PROTO_TCP = 6
PROTO_UDP = 17

#: NSH "next protocol" value for Ethernet payloads (RFC 8300 §3.2).
NSH_NEXT_PROTO_ETHERNET = 0x3
NSH_NEXT_PROTO_IPV4 = 0x1


#: Conversion memos — dataplanes see a bounded address set (flows, routes,
#: NAT/LB pools), so both directions cache to a cap and reset when full.
_ADDR_MEMO_MAX = 8192
_ip_int_memo: dict = {}
_int_ip_memo: dict = {}


def ip_to_int(addr: str) -> int:
    """Dotted-quad IPv4 address to a 32-bit integer.

    >>> hex(ip_to_int("10.0.0.1"))
    '0xa000001'
    """
    value = _ip_int_memo.get(addr)
    if value is not None:
        return value
    parts = addr.split(".")
    if len(parts) != 4:
        raise ValueError(f"not an IPv4 address: {addr!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"not an IPv4 address: {addr!r}")
        value = (value << 8) | octet
    if len(_ip_int_memo) >= _ADDR_MEMO_MAX:
        _ip_int_memo.clear()
    _ip_int_memo[addr] = value
    return value


def int_to_ip(value: int) -> str:
    """32-bit integer to dotted-quad IPv4 address."""
    addr = _int_ip_memo.get(value)
    if addr is not None:
        return addr
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"not a 32-bit value: {value}")
    addr = (
        f"{(value >> 24) & 0xFF}.{(value >> 16) & 0xFF}"
        f".{(value >> 8) & 0xFF}.{value & 0xFF}"
    )
    if len(_int_ip_memo) >= _ADDR_MEMO_MAX:
        _int_ip_memo.clear()
    _int_ip_memo[value] = addr
    return addr


_mac_memo: dict = {}


def mac_to_bytes(mac: str) -> bytes:
    """``aa:bb:cc:dd:ee:ff`` to 6 raw bytes."""
    raw = _mac_memo.get(mac)
    if raw is not None:
        return raw
    parts = mac.split(":")
    if len(parts) != 6:
        raise ValueError(f"not a MAC address: {mac!r}")
    raw = bytes(int(p, 16) for p in parts)
    if len(_mac_memo) >= _ADDR_MEMO_MAX:
        _mac_memo.clear()
    _mac_memo[mac] = raw
    return raw


_mac_str_memo: dict = {}


def bytes_to_mac(raw: bytes) -> str:
    """6 raw bytes to ``aa:bb:cc:dd:ee:ff``."""
    mac = _mac_str_memo.get(raw)
    if mac is not None:
        return mac
    if len(raw) != 6:
        raise ValueError(f"MAC must be 6 bytes, got {len(raw)}")
    mac = raw.hex(":")
    if len(_mac_str_memo) >= _ADDR_MEMO_MAX:
        _mac_str_memo.clear()
    _mac_str_memo[bytes(raw)] = mac
    return mac


@dataclass
class EthernetHeader:
    """14-byte Ethernet II header."""

    dst: str = "ff:ff:ff:ff:ff:ff"
    src: str = "00:00:00:00:00:00"
    ethertype: int = ETHERTYPE_IPV4

    LENGTH = 14

    def pack(self) -> bytes:
        return mac_to_bytes(self.dst) + mac_to_bytes(self.src) + struct.pack(
            "!H", self.ethertype
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "EthernetHeader":
        if len(raw) < cls.LENGTH:
            raise ValueError("truncated Ethernet header")
        (ethertype,) = struct.unpack("!H", raw[12:14])
        return cls(
            dst=bytes_to_mac(raw[0:6]),
            src=bytes_to_mac(raw[6:12]),
            ethertype=ethertype,
        )


@dataclass
class VLANHeader:
    """4-byte 802.1Q tag. Lemur's OpenFlow backend packs SPI/SI into ``vid``
    (12 bits) because OF switches do not support NSH (§5.3)."""

    pcp: int = 0
    dei: int = 0
    vid: int = 0
    ethertype: int = ETHERTYPE_IPV4

    LENGTH = 4

    def pack(self) -> bytes:
        if not 0 <= self.vid < 4096:
            raise ValueError(f"VLAN vid must fit 12 bits, got {self.vid}")
        tci = ((self.pcp & 0x7) << 13) | ((self.dei & 0x1) << 12) | (self.vid & 0xFFF)
        return struct.pack("!HH", tci, self.ethertype)

    @classmethod
    def unpack(cls, raw: bytes) -> "VLANHeader":
        if len(raw) < cls.LENGTH:
            raise ValueError("truncated VLAN header")
        tci, ethertype = struct.unpack("!HH", raw[:4])
        return cls(
            pcp=(tci >> 13) & 0x7,
            dei=(tci >> 12) & 0x1,
            vid=tci & 0xFFF,
            ethertype=ethertype,
        )


@dataclass
class IPv4Header:
    """20-byte IPv4 header (no options) with checksum support."""

    src: str = "0.0.0.0"
    dst: str = "0.0.0.0"
    proto: int = PROTO_UDP
    ttl: int = 64
    total_length: int = 20
    identification: int = 0
    dscp: int = 0

    LENGTH = 20

    def pack(self) -> bytes:
        header = struct.pack(
            "!BBHHHBBH4s4s",
            (4 << 4) | 5,  # version=4, ihl=5
            self.dscp << 2,
            self.total_length,
            self.identification,
            0,  # flags/fragment offset
            self.ttl,
            self.proto,
            0,  # checksum placeholder
            struct.pack("!I", ip_to_int(self.src)),
            struct.pack("!I", ip_to_int(self.dst)),
        )
        checksum = ipv4_checksum(header)
        return header[:10] + struct.pack("!H", checksum) + header[12:]

    @classmethod
    def unpack(cls, raw: bytes) -> "IPv4Header":
        if len(raw) < cls.LENGTH:
            raise ValueError("truncated IPv4 header")
        (
            ver_ihl,
            dscp_ecn,
            total_length,
            identification,
            _flags,
            ttl,
            proto,
            _checksum,
            src_raw,
            dst_raw,
        ) = struct.unpack("!BBHHHBBH4s4s", raw[:20])
        if ver_ihl >> 4 != 4:
            raise ValueError(f"not IPv4: version={ver_ihl >> 4}")
        return cls(
            src=int_to_ip(struct.unpack("!I", src_raw)[0]),
            dst=int_to_ip(struct.unpack("!I", dst_raw)[0]),
            proto=proto,
            ttl=ttl,
            total_length=total_length,
            identification=identification,
            dscp=dscp_ecn >> 2,
        )


def ipv4_checksum(header: bytes) -> int:
    """Standard 16-bit ones-complement checksum over an IPv4 header."""
    if len(header) % 2:
        header += b"\x00"
    total = sum(struct.unpack(f"!{len(header) // 2}H", header))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


@dataclass
class TCPHeader:
    """20-byte TCP header (no options)."""

    src_port: int = 0
    dst_port: int = 0
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535

    LENGTH = 20

    def pack(self) -> bytes:
        return struct.pack(
            "!HHIIBBHHH",
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            5 << 4,  # data offset
            self.flags,
            self.window,
            0,  # checksum (not validated by the simulators)
            0,  # urgent pointer
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "TCPHeader":
        if len(raw) < cls.LENGTH:
            raise ValueError("truncated TCP header")
        src_port, dst_port, seq, ack, _off, flags, window, _csum, _urg = struct.unpack(
            "!HHIIBBHHH", raw[:20]
        )
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
        )


@dataclass
class UDPHeader:
    """8-byte UDP header."""

    src_port: int = 0
    dst_port: int = 0
    length: int = 8

    LENGTH = 8

    def pack(self) -> bytes:
        return struct.pack("!HHHH", self.src_port, self.dst_port, self.length, 0)

    @classmethod
    def unpack(cls, raw: bytes) -> "UDPHeader":
        if len(raw) < cls.LENGTH:
            raise ValueError("truncated UDP header")
        src_port, dst_port, length, _csum = struct.unpack("!HHHH", raw[:8])
        return cls(src_port=src_port, dst_port=dst_port, length=length)


@dataclass
class NSHHeader:
    """Network Service Header (RFC 8300), MD type 2 with no context headers.

    Lemur tags packets with a service path index (SPI, 24 bits) identifying a
    linear NF chain and a service index (SI, 8 bits) sequencing NFs within the
    chain (§4.1). The base+service-path header is 8 bytes.
    """

    spi: int = 0
    si: int = 255
    next_proto: int = NSH_NEXT_PROTO_ETHERNET
    ttl: int = 63

    LENGTH = 8

    def pack(self) -> bytes:
        if not 0 <= self.spi < (1 << 24):
            raise ValueError(f"SPI must fit 24 bits, got {self.spi}")
        if not 0 <= self.si < 256:
            raise ValueError(f"SI must fit 8 bits, got {self.si}")
        # ver(2)=0 O(1)=0 U(1)=0 TTL(6) Length(6)=2 U(4) MDtype(4)=2 NextProto(8)
        first = (0 << 30) | ((self.ttl & 0x3F) << 22) | (2 << 16) | (2 << 8) | (
            self.next_proto & 0xFF
        )
        return struct.pack("!II", first, (self.spi << 8) | self.si)

    @classmethod
    def unpack(cls, raw: bytes) -> "NSHHeader":
        if len(raw) < cls.LENGTH:
            raise ValueError("truncated NSH header")
        first, sp = struct.unpack("!II", raw[:8])
        return cls(
            spi=sp >> 8,
            si=sp & 0xFF,
            next_proto=first & 0xFF,
            ttl=(first >> 22) & 0x3F,
        )


#: Pre-computed first word of the 8-byte NSH header produced by
#: ``NSHHeader(ttl=63, next_proto=Ethernet).pack()`` — the only variant the
#: simulated platforms emit on the hot path.
_NSH_FIRST_WORD = (63 << 22) | (2 << 16) | (2 << 8) | NSH_NEXT_PROTO_ETHERNET
_NSH_STRUCT = struct.Struct("!II")


def pack_nsh(spi: int, si: int) -> bytes:
    """Fast path for ``NSHHeader(spi=spi, si=si).pack()`` (default TTL/proto).

    Byte-identical to the dataclass encoder; used by the per-hop encap path
    where constructing an :class:`NSHHeader` per packet is measurable.
    """
    if not 0 <= spi < (1 << 24):
        raise ValueError(f"SPI must fit 24 bits, got {spi}")
    if not 0 <= si < 256:
        raise ValueError(f"SI must fit 8 bits, got {si}")
    return _NSH_STRUCT.pack(_NSH_FIRST_WORD, (spi << 8) | si)


@dataclass
class HeaderStack:
    """A parsed view of a packet's header sequence, in wire order."""

    headers: list = field(default_factory=list)

    def find(self, kind: type):
        """Return the first header of ``kind`` or ``None``."""
        for header in self.headers:
            if isinstance(header, kind):
                return header
        return None
