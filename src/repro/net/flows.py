"""Flow and traffic-aggregate descriptors.

A *traffic aggregate* (§2) selects the traffic an NF chain applies to — a
combination of 5-tuple field constraints, e.g. all traffic from one customer
prefix. Flows are concrete 5-tuples used by the traffic generators.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class FiveTuple:
    """A concrete flow key."""

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    proto: int

    def as_tuple(self):
        return (self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.proto)


@dataclass
class Flow:
    """A flow: key + generation parameters (rate share, lifetime)."""

    key: FiveTuple
    weight: float = 1.0
    start_us: float = 0.0
    duration_us: Optional[float] = None
    packet_bytes: int = 1500

    def active_at(self, t_us: float) -> bool:
        if t_us < self.start_us:
            return False
        if self.duration_us is None:
            return True
        return t_us < self.start_us + self.duration_us


@dataclass
class TrafficAggregate:
    """A predicate over 5-tuples selecting a customer's traffic (§2).

    Any field may be ``None`` (wildcard); IPs may be CIDR prefixes. An
    aggregate maps 1:1 to an NF chain in a Lemur spec.
    """

    name: str = "default"
    src_prefix: Optional[str] = None
    dst_prefix: Optional[str] = None
    src_port: Optional[int] = None
    dst_port: Optional[int] = None
    proto: Optional[int] = None
    _src_net: Optional[ipaddress.IPv4Network] = field(default=None, repr=False)
    _dst_net: Optional[ipaddress.IPv4Network] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.src_prefix:
            self._src_net = ipaddress.ip_network(self.src_prefix, strict=False)
        if self.dst_prefix:
            self._dst_net = ipaddress.ip_network(self.dst_prefix, strict=False)

    def matches(self, key: FiveTuple) -> bool:
        """Does a concrete 5-tuple fall inside this aggregate?"""
        if self._src_net and ipaddress.ip_address(key.src_ip) not in self._src_net:
            return False
        if self._dst_net and ipaddress.ip_address(key.dst_ip) not in self._dst_net:
            return False
        if self.src_port is not None and key.src_port != self.src_port:
            return False
        if self.dst_port is not None and key.dst_port != self.dst_port:
            return False
        if self.proto is not None and key.proto != self.proto:
            return False
        return True

    def describe(self) -> str:
        parts = []
        if self.src_prefix:
            parts.append(f"src={self.src_prefix}")
        if self.dst_prefix:
            parts.append(f"dst={self.dst_prefix}")
        if self.src_port is not None:
            parts.append(f"sport={self.src_port}")
        if self.dst_port is not None:
            parts.append(f"dport={self.dst_port}")
        if self.proto is not None:
            parts.append(f"proto={self.proto}")
        return f"{self.name}({', '.join(parts) or '*'})"
