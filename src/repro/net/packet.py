"""Packet representation used by every simulated dataplane.

A :class:`Packet` owns a mutable byte buffer plus the *per-packet metadata*
Lemur's generated code relies on: the NSH service path index / service index,
the drop flag standalone P4 NFs may set (§4.2), and branch decisions stored by
generated traffic-splitting tables (§A.2.2).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.net.headers import (
    ETHERTYPE_IPV4,
    ETHERTYPE_NSH,
    ETHERTYPE_VLAN,
    PROTO_TCP,
    PROTO_UDP,
    EthernetHeader,
    IPv4Header,
    NSHHeader,
    TCPHeader,
    UDPHeader,
    VLANHeader,
    pack_nsh,
)


@dataclass
class PacketMetadata:
    """Mutable per-packet metadata shared between chained NFs.

    Mirrors the P4 metadata Lemur's meta-compiler injects: ``drop_flag`` lets a
    standalone NF stop the chain (firewalls), ``branch_decision`` records the
    traffic-splitting table's verdict at a branching node, and ``processed_by``
    is a debugging trail of NF instance names (not available on hardware, but
    invaluable for validating generated routing in tests).
    """

    drop_flag: bool = False
    branch_decision: Optional[int] = None
    #: Injection sequence number assigned by the rack; lets batched device
    #: runtimes map emitted packets back to the inputs they came from.
    seq: Optional[int] = None
    spi: Optional[int] = None
    si: Optional[int] = None
    ingress_port: Optional[int] = None
    egress_port: Optional[int] = None
    chain_id: Optional[str] = None
    timestamp_us: float = 0.0
    cycles_consumed: int = 0
    #: cycles attributed to the device that charged them (device name →
    #: cycles on *that device's* clock); the rack converts each entry with
    #: the owning device's frequency when stamping latency.
    cycles_by_device: dict = field(default_factory=dict)
    processed_by: list = field(default_factory=list)
    fields: dict = field(default_factory=dict)


#: Interned NSH header objects for the encap fast path. NSH headers are
#: read-only everywhere in the codebase (re-tagging always goes through
#: pop/push), so one shared instance per (SPI, SI) is safe.
_NSH_INTERN_MAX = 4096
_nsh_intern: dict = {}


def _interned_nsh(spi: int, si: int) -> NSHHeader:
    header = _nsh_intern.get((spi, si))
    if header is None:
        if len(_nsh_intern) >= _NSH_INTERN_MAX:
            _nsh_intern.clear()
        header = _nsh_intern[(spi, si)] = NSHHeader(spi=spi, si=si)
    return header


class Packet:
    """A packet: raw bytes + parsed header cache + metadata.

    The header cache is invalidated on any byte mutation; dataplane modules
    mutate headers through the typed helpers (``eth``, ``ipv4``...) and call
    :meth:`commit` to re-serialize.
    """

    def __init__(self, data: bytes, metadata: Optional[PacketMetadata] = None):
        self._data = bytearray(data)
        self.metadata = metadata or PacketMetadata()
        self._parsed: Optional[dict] = None

    # -- construction -----------------------------------------------------

    @classmethod
    def build(
        cls,
        src_ip: str = "10.0.0.1",
        dst_ip: str = "10.0.0.2",
        src_port: int = 1234,
        dst_port: int = 80,
        proto: int = PROTO_UDP,
        payload: bytes = b"",
        vlan: Optional[int] = None,
        src_mac: str = "02:00:00:00:00:01",
        dst_mac: str = "02:00:00:00:00:02",
        total_bytes: Optional[int] = None,
    ) -> "Packet":
        """Assemble an Ethernet/IPv4/{TCP,UDP} packet.

        ``total_bytes`` pads the payload so the wire size matches a desired
        frame length (the perf simulator cares about packet size).
        """
        l4: bytes
        if proto == PROTO_TCP:
            l4 = TCPHeader(src_port=src_port, dst_port=dst_port).pack()
        elif proto == PROTO_UDP:
            l4 = UDPHeader(
                src_port=src_port, dst_port=dst_port, length=8 + len(payload)
            ).pack()
        else:
            l4 = b""
        eth_type = ETHERTYPE_VLAN if vlan is not None else ETHERTYPE_IPV4
        pieces = [EthernetHeader(dst=dst_mac, src=src_mac, ethertype=eth_type).pack()]
        if vlan is not None:
            pieces.append(VLANHeader(vid=vlan, ethertype=ETHERTYPE_IPV4).pack())
        ip_total = IPv4Header.LENGTH + len(l4) + len(payload)
        pieces.append(
            IPv4Header(src=src_ip, dst=dst_ip, proto=proto, total_length=ip_total).pack()
        )
        pieces.append(l4)
        pieces.append(payload)
        raw = b"".join(pieces)
        if total_bytes is not None and len(raw) < total_bytes:
            raw += b"\x00" * (total_bytes - len(raw))
        return cls(raw)

    # -- byte access ------------------------------------------------------

    @property
    def data(self) -> bytes:
        return bytes(self._data)

    @data.setter
    def data(self, value: bytes) -> None:
        self._data = bytearray(value)
        self._parsed = None

    def __len__(self) -> int:
        return len(self._data)

    # -- parsing ----------------------------------------------------------

    def _parse(self) -> dict:
        """Parse the header stack: [NSH] Ethernet [VLAN] IPv4 [TCP|UDP]."""
        if self._parsed is not None:
            return self._parsed
        parsed: dict[str, Any] = {
            "nsh": None,
            "eth": None,
            "vlan": None,
            "ipv4": None,
            "tcp": None,
            "udp": None,
            "payload_offset": 0,
        }
        raw = bytes(self._data)
        offset = 0
        # Lemur's NSH encap places NSH at the very front followed by the
        # original Ethernet frame (next_proto = Ethernet).
        if len(raw) >= NSHHeader.LENGTH + EthernetHeader.LENGTH and _looks_like_nsh(raw):
            inner_ethertype = (raw[20] << 8) | raw[21]
            if inner_ethertype in (ETHERTYPE_IPV4, ETHERTYPE_VLAN):
                parsed["nsh"] = NSHHeader.unpack(raw)
                offset = NSHHeader.LENGTH
        if len(raw) >= offset + EthernetHeader.LENGTH:
            eth = EthernetHeader.unpack(raw[offset:])
            parsed["eth"] = eth
            offset += EthernetHeader.LENGTH
            ethertype = eth.ethertype
            if ethertype == ETHERTYPE_VLAN and len(raw) >= offset + VLANHeader.LENGTH:
                vlan = VLANHeader.unpack(raw[offset:])
                parsed["vlan"] = vlan
                offset += VLANHeader.LENGTH
                ethertype = vlan.ethertype
            if ethertype == ETHERTYPE_IPV4 and len(raw) >= offset + IPv4Header.LENGTH:
                ipv4 = IPv4Header.unpack(raw[offset:])
                parsed["ipv4"] = ipv4
                offset += IPv4Header.LENGTH
                if ipv4.proto == PROTO_TCP and len(raw) >= offset + TCPHeader.LENGTH:
                    parsed["tcp"] = TCPHeader.unpack(raw[offset:])
                    offset += TCPHeader.LENGTH
                elif ipv4.proto == PROTO_UDP and len(raw) >= offset + UDPHeader.LENGTH:
                    parsed["udp"] = UDPHeader.unpack(raw[offset:])
                    offset += UDPHeader.LENGTH
        parsed["payload_offset"] = offset
        self._parsed = parsed
        return parsed

    # The hot accessors check ``_parsed`` directly instead of calling
    # ``_parse()`` — the extra call shows up at dataplane packet rates.

    @property
    def nsh(self) -> Optional[NSHHeader]:
        parsed = self._parsed
        return (parsed if parsed is not None else self._parse())["nsh"]

    @property
    def eth(self) -> Optional[EthernetHeader]:
        parsed = self._parsed
        return (parsed if parsed is not None else self._parse())["eth"]

    @property
    def vlan(self) -> Optional[VLANHeader]:
        parsed = self._parsed
        return (parsed if parsed is not None else self._parse())["vlan"]

    @property
    def ipv4(self) -> Optional[IPv4Header]:
        parsed = self._parsed
        return (parsed if parsed is not None else self._parse())["ipv4"]

    @property
    def tcp(self) -> Optional[TCPHeader]:
        parsed = self._parsed
        return (parsed if parsed is not None else self._parse())["tcp"]

    @property
    def udp(self) -> Optional[UDPHeader]:
        parsed = self._parsed
        return (parsed if parsed is not None else self._parse())["udp"]

    @property
    def payload(self) -> bytes:
        parsed = self._parsed
        if parsed is None:
            parsed = self._parse()
        return bytes(self._data[parsed["payload_offset"]:])

    @payload.setter
    def payload(self, value: bytes) -> None:
        # headers and their offsets are untouched, so the parse cache
        # (including the flow key) stays valid
        parsed = self._parsed
        if parsed is None:
            parsed = self._parse()
        self._data[parsed["payload_offset"]:] = value

    def five_tuple(self):
        """(src_ip, dst_ip, src_port, dst_port, proto) or None if not IP."""
        parsed = self._parse()
        ipv4 = parsed["ipv4"]
        if ipv4 is None:
            return None
        l4 = parsed["tcp"] or parsed["udp"]
        src_port = l4.src_port if l4 else 0
        dst_port = l4.dst_port if l4 else 0
        return (ipv4.src, ipv4.dst, src_port, dst_port, ipv4.proto)

    def flow_key_bytes(self) -> Optional[bytes]:
        """The packet's flow identity as 13 packed bytes, or ``None`` if the
        packet carries no IPv4 header.

        Layout: src_ip(4) dst_ip(4) src_port(2) dst_port(2) proto(1), sliced
        straight out of the wire bytes — equivalent to (and collision-free
        with) :meth:`five_tuple`, but far cheaper to hash. Cached inside the
        parse cache so any byte mutation invalidates it automatically.
        """
        parsed = self._parsed
        if parsed is None:
            parsed = self._parse()
        key = parsed.get("flow_key", False)
        if key is not False:
            return key
        ipv4 = parsed["ipv4"]
        if ipv4 is None:
            parsed["flow_key"] = None
            return None
        if parsed["tcp"] is not None:
            l4_len = TCPHeader.LENGTH
        elif parsed["udp"] is not None:
            l4_len = UDPHeader.LENGTH
        else:
            l4_len = 0
        ip_off = parsed["payload_offset"] - l4_len - IPv4Header.LENGTH
        raw = self._data
        addrs = bytes(raw[ip_off + 12:ip_off + 20])
        ports = (
            bytes(raw[ip_off + 20:ip_off + 24]) if l4_len else b"\x00\x00\x00\x00"
        )
        key = addrs + ports + bytes((ipv4.proto,))
        parsed["flow_key"] = key
        return key

    def flow_digest(self) -> int:
        """CRC32 of :meth:`flow_key_bytes` (0 for non-IP packets), cached in
        the parse cache. Used for flow-stable hashing (traffic splits, LB)."""
        parsed = self._parsed
        if parsed is None:
            parsed = self._parse()
        digest = parsed.get("flow_digest")
        if digest is None:
            key = self.flow_key_bytes()
            digest = zlib.crc32(key) if key is not None else 0
            parsed["flow_digest"] = digest
        return digest

    # -- mutation ---------------------------------------------------------

    def commit(self) -> None:
        """Re-serialize cached headers back into the byte buffer.

        Headers obtained via the typed properties may be mutated in place;
        ``commit()`` writes them back at their original offsets.
        """
        parsed = self._parse()
        offset = 0
        pieces = []
        if parsed["nsh"] is not None:
            pieces.append(parsed["nsh"].pack())
            offset += NSHHeader.LENGTH
        if parsed["eth"] is not None:
            pieces.append(parsed["eth"].pack())
            offset += EthernetHeader.LENGTH
        if parsed["vlan"] is not None:
            pieces.append(parsed["vlan"].pack())
            offset += VLANHeader.LENGTH
        if parsed["ipv4"] is not None:
            pieces.append(parsed["ipv4"].pack())
            offset += IPv4Header.LENGTH
        if parsed["tcp"] is not None:
            pieces.append(parsed["tcp"].pack())
            offset += TCPHeader.LENGTH
        elif parsed["udp"] is not None:
            pieces.append(parsed["udp"].pack())
            offset += UDPHeader.LENGTH
        tail = bytes(self._data[parsed["payload_offset"]:])
        self._data = bytearray(b"".join(pieces) + tail)
        # the cached header objects ARE what was just serialized and every
        # header has a fixed length, so the parse cache stays valid; only
        # the derived flow identity may have changed (NAT rewrites)
        parsed.pop("flow_key", None)
        parsed.pop("flow_digest", None)

    def push_nsh(self, spi: int, si: int) -> None:
        """Encapsulate with an NSH header (meta-compiler 'NSHencap')."""
        self._data[:0] = pack_nsh(spi, si)
        parsed = self._parsed
        if parsed is not None:
            if parsed["nsh"] is None and parsed["eth"] is not None:
                # prepending 8 bytes shifts every offset but changes no
                # header content — update the cache instead of re-parsing
                parsed["nsh"] = _interned_nsh(spi, si)
                parsed["payload_offset"] += NSHHeader.LENGTH
            else:
                self._parsed = None
        self.metadata.spi = spi
        self.metadata.si = si

    def pop_nsh(self) -> Optional[NSHHeader]:
        """Decapsulate the NSH header, if present ('NSHdecap').

        When the parse cache is cold this peeks at the first bytes directly
        (same detection rules as :meth:`_parse`) instead of parsing the whole
        stack just to strip 8 bytes.
        """
        raw = self._data
        parsed = self._parsed
        if parsed is not None:
            nsh = parsed["nsh"]
            if nsh is None:
                return None
        else:
            if len(raw) < NSHHeader.LENGTH + EthernetHeader.LENGTH:
                return None
            if not _looks_like_nsh(raw):
                return None
            inner_ethertype = (raw[20] << 8) | raw[21]
            if inner_ethertype not in (ETHERTYPE_IPV4, ETHERTYPE_VLAN):
                return None
            first = int.from_bytes(raw[:4], "big")
            sp = int.from_bytes(raw[4:8], "big")
            nsh = NSHHeader(
                spi=sp >> 8,
                si=sp & 0xFF,
                next_proto=first & 0xFF,
                ttl=(first >> 22) & 0x3F,
            )
        del raw[:NSHHeader.LENGTH]
        if parsed is not None:
            # inner headers keep their content; only offsets shift left
            parsed["nsh"] = None
            parsed["payload_offset"] -= NSHHeader.LENGTH
        self.metadata.spi = nsh.spi
        self.metadata.si = nsh.si
        return nsh

    def push_vlan(self, vid: int, pcp: int = 0) -> None:
        """Insert an 802.1Q tag after Ethernet (Tunnel NF / OF SPI-SI)."""
        parsed = self._parse()
        eth = parsed["eth"]
        if eth is None:
            raise ValueError("cannot push VLAN on a non-Ethernet packet")
        base = NSHHeader.LENGTH if parsed["nsh"] is not None else 0
        vlan_hdr = VLANHeader(vid=vid, pcp=pcp, ethertype=eth.ethertype)
        eth_end = base + EthernetHeader.LENGTH
        new_eth = EthernetHeader(dst=eth.dst, src=eth.src, ethertype=ETHERTYPE_VLAN)
        self._data = (
            self._data[:base]
            + bytearray(new_eth.pack())
            + bytearray(vlan_hdr.pack())
            + self._data[eth_end:]
        )
        if parsed["vlan"] is None:
            # single-tag case: splice the new headers into the cache
            parsed["eth"] = new_eth
            parsed["vlan"] = vlan_hdr
            parsed["payload_offset"] += VLANHeader.LENGTH
        else:
            # stacked tags: the parser only models one, so re-parse
            self._parsed = None

    def pop_vlan(self) -> Optional[VLANHeader]:
        """Remove the 802.1Q tag, if present (Detunnel NF)."""
        parsed = self._parse()
        vlan = parsed["vlan"]
        eth = parsed["eth"]
        if vlan is None or eth is None:
            return None
        base = NSHHeader.LENGTH if parsed["nsh"] is not None else 0
        eth_end = base + EthernetHeader.LENGTH
        new_eth = EthernetHeader(dst=eth.dst, src=eth.src, ethertype=vlan.ethertype)
        self._data = (
            self._data[:base]
            + bytearray(new_eth.pack())
            + self._data[eth_end + VLANHeader.LENGTH:]
        )
        parsed["eth"] = new_eth
        parsed["vlan"] = None
        parsed["payload_offset"] -= VLANHeader.LENGTH
        return vlan

    def copy(self) -> "Packet":
        """Deep-copy the packet (bytes and metadata)."""
        clone = Packet(bytes(self._data))
        meta = self.metadata
        clone.metadata = PacketMetadata(
            drop_flag=meta.drop_flag,
            branch_decision=meta.branch_decision,
            seq=meta.seq,
            spi=meta.spi,
            si=meta.si,
            ingress_port=meta.ingress_port,
            egress_port=meta.egress_port,
            chain_id=meta.chain_id,
            timestamp_us=meta.timestamp_us,
            cycles_consumed=meta.cycles_consumed,
            cycles_by_device=dict(meta.cycles_by_device),
            processed_by=list(meta.processed_by),
            fields=dict(meta.fields),
        )
        return clone

    def __repr__(self) -> str:
        five = self.five_tuple()
        nsh = self.nsh
        tag = f" nsh(spi={nsh.spi},si={nsh.si})" if nsh else ""
        return f"<Packet {len(self)}B {five}{tag}>"


def _looks_like_nsh(raw: bytes) -> bool:
    """Heuristic: does the buffer start with a plausible NSH base header?

    Checks version==0, MD type 2, length==2 words — the exact encoding our
    ``NSHHeader.pack`` produces, which is what the simulated platforms emit.
    """
    if len(raw) < NSHHeader.LENGTH:
        return False
    first = int.from_bytes(raw[:4], "big")
    version = first >> 30
    length = (first >> 16) & 0x3F
    md_type = (first >> 8) & 0xF
    return version == 0 and length == 2 and md_type == 2
