"""Traffic generation reproducing the paper's profiling workloads.

Footnote 6 of the paper describes two worst-case workloads used for NF
profiling:

* **long-lived** — 30-50 uniformly distributed long-lived flows (stresses NFs
  that perform poorly with persistent state, e.g. per-flow tables that are
  repeatedly hit);
* **short-lived** — 3.2 Mpps with 10 000 new flows/sec, each lasting one
  second (stresses NFs that perform poorly under flow churn, e.g. NAT entry
  allocation).

The generator is deterministic given a seed so experiments are repeatable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.net.flows import FiveTuple, Flow
from repro.net.headers import PROTO_TCP, PROTO_UDP
from repro.net.packet import Packet


@dataclass
class TrafficGenerator:
    """Round-robin packet generator over a set of weighted flows.

    Mirrors the BESS traffic-generator server in the paper's testbed: the
    simulated dataplane pulls packets; the generator round-robins flows
    proportionally to their weights.
    """

    flows: List[Flow]
    seed: int = 7
    payload_pattern: bytes = b"lemur"
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.flows:
            raise ValueError("TrafficGenerator needs at least one flow")
        self._rng = random.Random(self.seed)

    def packets(self, count: int, duplicate_fraction: float = 0.0) -> Iterator[Packet]:
        """Yield ``count`` packets, weighted-round-robin across flows.

        ``duplicate_fraction`` makes a fraction of payloads byte-identical,
        which exercises Dedup's redundancy-elimination path.
        """
        weights = [flow.weight for flow in self.flows]
        last_payload: Optional[bytes] = None
        for i in range(count):
            flow = self._rng.choices(self.flows, weights=weights, k=1)[0]
            if last_payload is not None and self._rng.random() < duplicate_fraction:
                payload = last_payload
            else:
                payload = self._payload_for(i, flow)
                last_payload = payload
            yield Packet.build(
                src_ip=flow.key.src_ip,
                dst_ip=flow.key.dst_ip,
                src_port=flow.key.src_port,
                dst_port=flow.key.dst_port,
                proto=flow.key.proto,
                payload=payload,
                total_bytes=flow.packet_bytes,
            )

    def _payload_for(self, index: int, flow: Flow) -> bytes:
        base = self.payload_pattern + str(index).encode() + flow.key.src_ip.encode()
        filler = bytes(self._rng.getrandbits(8) for _ in range(48))
        return base + filler


def long_lived_workload(
    n_flows: int = 40,
    subnet: str = "10.1",
    packet_bytes: int = 1500,
    seed: int = 7,
) -> TrafficGenerator:
    """30-50 uniformly distributed long-lived flows (paper footnote 6)."""
    if not 1 <= n_flows <= 1024:
        raise ValueError(f"n_flows out of range: {n_flows}")
    rng = random.Random(seed)
    flows = []
    for i in range(n_flows):
        key = FiveTuple(
            src_ip=f"{subnet}.{i // 250}.{i % 250 + 1}",
            dst_ip=f"10.0.0.{i % 250 + 1}",
            src_port=1024 + rng.randrange(60000),
            dst_port=80 if i % 2 == 0 else 443,
            proto=PROTO_TCP if i % 3 else PROTO_UDP,
        )
        flows.append(Flow(key=key, weight=1.0, packet_bytes=packet_bytes))
    return TrafficGenerator(flows=flows, seed=seed)


def short_lived_workload(
    new_flows_per_sec: int = 10_000,
    flow_lifetime_us: float = 1_000_000.0,
    duration_s: float = 1.0,
    packet_bytes: int = 125,
    seed: int = 7,
) -> TrafficGenerator:
    """High flow-churn workload: many 1-second flows (paper footnote 6).

    The paper's 3.2 Mpps figure comes from small packets; we default to 125 B
    frames so pps is high for a given bit-rate. The generator materializes the
    flow arrival schedule up front (capped for memory) and round-robins.
    """
    rng = random.Random(seed)
    total_flows = min(int(new_flows_per_sec * duration_s), 50_000)
    flows = []
    for i in range(total_flows):
        start = (i / new_flows_per_sec) * 1e6
        key = FiveTuple(
            src_ip=f"172.16.{(i >> 8) & 0xFF}.{i & 0xFF or 1}",
            dst_ip=f"10.0.{(i >> 8) & 0xFF}.{i & 0xFF or 1}",
            src_port=1024 + (i * 13) % 60000,
            dst_port=80,
            proto=PROTO_UDP if rng.random() < 0.5 else PROTO_TCP,
        )
        flows.append(
            Flow(
                key=key,
                weight=1.0,
                start_us=start,
                duration_us=flow_lifetime_us,
                packet_bytes=packet_bytes,
            )
        )
    return TrafficGenerator(flows=flows, seed=seed)
