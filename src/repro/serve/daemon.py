"""The always-on control-plane daemon behind ``repro serve``.

One :class:`ServeDaemon` owns one live rack. A single asyncio worker
task (:meth:`ServeDaemon._worker_loop`) is the only code that touches
the :class:`~repro.sim.admission.AdmissionCore`; concurrent tenants —
HTTP handler threads, in-process callers, tests — submit typed commands
through :meth:`ServeDaemon.submit` and an :class:`asyncio.Queue`, so
every mutation is serialized without locks. Admission routes through the
incremental ``Placer.solve(base_placement=...)`` path with delta
redeploy, exactly as the batch lifecycle engine does (the two share the
core).

Durability and recovery (see :mod:`repro.serve.journal`):

* every applied mutating command is journaled (fsync) *before* the
  client is acknowledged, and the rack state checkpoints every
  ``checkpoint_every`` commands plus at graceful shutdown;
* a killed daemon restarts by loading the checkpoint and replaying the
  journal suffix through the same deterministic core, reconstructing a
  byte-identical rack — same placements, same replay cursors, same
  injection sequence, same
  :meth:`~repro.sim.admission.AdmissionCore.state_digest` — so
  subsequent admission decisions and traffic phases are byte-identical
  to an uninterrupted run.

The daemon's configuration is persisted to ``config.json`` inside the
state directory on first start and verified on every restart: recovery
against a different chain set or seed would replay the journal into a
different rack, so a mismatch fails loudly instead.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.chain.graph import NFChain, chains_with_slos
from repro.exceptions import (
    CommandError,
    FaultInjectionError,
    ReproError,
    ServeError,
    TopologyError,
)
from repro.hw.spec import TopologySpec
from repro.obs import MetricsRegistry
from repro.serve.commands import (
    STATUS_APPLIED,
    STATUS_ERROR,
    STATUS_INVALID,
    STATUS_REJECTED,
    Command,
    CommandOutcome,
    InjectFault,
    Snapshot,
    parse_command,
)
from repro.serve.journal import CheckpointStore, Journal
from repro.sim.admission import AdmissionCore, AdmissionDecision
from repro.sim.faults import PhaseReport
from repro.sim.interrack import make_admission_core

_QueueItem = Optional[Tuple[Command, "asyncio.Future[CommandOutcome]"]]


# ---------------------------------------------------------------------------
# config
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ServeConfig:
    """A fully-stated daemon configuration (the recovery contract).

    Everything that shapes the deterministic state evolution lives here;
    (config, applied-command sequence) fully determines the rack. The
    config is persisted alongside the journal and verified on restart.
    """

    spec_text: str
    #: one (t_min_mbps, t_max_mbps[, d_max_us]) tuple per initial chain.
    slos: Tuple[Tuple[float, ...], ...]
    #: declarative topology; when set it wins over the legacy flags
    #: below (which remain as the ``TopologySpec.from_flags`` bridge).
    #: Part of the recovery contract: the spec is persisted verbatim in
    #: ``config.json`` so a restarted daemon rebuilds the same fabric.
    topology: Optional[TopologySpec] = None
    packets_per_phase: int = 64
    flows_per_chain: int = 32
    batch_size: int = 32
    seed: int = 23
    strategy: str = "lemur"
    #: checkpoint every N applied commands; 0 disables periodic
    #: checkpoints (recovery then replays the full journal).
    checkpoint_every: int = 8
    with_smartnic: bool = False
    with_openflow: bool = False
    servers: int = 0
    #: rack-execution policy: ``"keep"`` hosts the live rack in a
    #: persistent worker-pool session (warm across commands), ``"per-run"``
    #: keeps it in-process. Part of the recovery contract because the
    #: checkpoint layout differs (pooled cores carry fetched rack bytes).
    pool: str = "keep"
    #: queueing delay model stamped on every forwarded packet
    #: (see :class:`repro.sim.measurement.QueueingModel`). Part of the
    #: recovery contract: replay under a different model would stamp
    #: different latencies.
    queueing: str = "none"
    #: placement objective ("throughput" or "tail_latency").
    objective: str = "throughput"

    def validate(self) -> None:
        if self.packets_per_phase < 1:
            raise ServeError("packets_per_phase must be >= 1")
        if self.checkpoint_every < 0:
            raise ServeError("checkpoint_every must be >= 0")
        if self.pool not in ("keep", "per-run"):
            raise ServeError("pool must be 'keep' or 'per-run'")
        from repro.core.placer import PLACEMENT_OBJECTIVES
        from repro.sim.measurement import QUEUEING_MODELS
        if self.queueing not in QUEUEING_MODELS:
            raise ServeError(
                f"queueing must be one of {sorted(QUEUEING_MODELS)}"
            )
        if self.objective not in PLACEMENT_OBJECTIVES:
            raise ServeError(
                f"objective must be one of {sorted(PLACEMENT_OBJECTIVES)}"
            )

    def build_topology(self):
        """Build the (single- or multi-rack) topology this config names."""
        spec = self.topology if self.topology is not None else \
            TopologySpec.from_flags(
                with_smartnic=self.with_smartnic,
                with_openflow=self.with_openflow,
                servers=self.servers,
            )
        return spec.build()

    def build_chains(self) -> List[NFChain]:
        return chains_with_slos(self.spec_text, self.slos,
                                error=ServeError)

    def as_dict(self) -> dict:
        return {
            "spec_text": self.spec_text,
            "slos": [list(bounds) for bounds in self.slos],
            "topology": (
                self.topology.as_dict()
                if self.topology is not None else None
            ),
            "packets_per_phase": self.packets_per_phase,
            "flows_per_chain": self.flows_per_chain,
            "batch_size": self.batch_size,
            "seed": self.seed,
            "strategy": self.strategy,
            "checkpoint_every": self.checkpoint_every,
            "with_smartnic": self.with_smartnic,
            "with_openflow": self.with_openflow,
            "servers": self.servers,
            "pool": self.pool,
            "queueing": self.queueing,
            "objective": self.objective,
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    _FIELDS = frozenset({
        "spec_text", "slos", "topology", "packets_per_phase",
        "flows_per_chain", "batch_size", "seed", "strategy",
        "checkpoint_every", "with_smartnic", "with_openflow", "servers",
        "pool", "queueing", "objective",
    })

    @classmethod
    def from_dict(cls, payload: object) -> "ServeConfig":
        if not isinstance(payload, dict):
            raise ServeError(
                f"serve config must be an object, "
                f"got {type(payload).__name__}"
            )
        unknown = set(payload) - cls._FIELDS
        if unknown:
            raise ServeError(
                f"serve config carries unknown fields {sorted(unknown)}"
            )
        topology = payload.get("topology")
        try:
            return cls(
                spec_text=str(payload["spec_text"]),
                slos=tuple(
                    tuple(float(x) for x in bounds)
                    for bounds in payload["slos"]
                ),
                topology=(
                    TopologySpec.from_dict(topology)
                    if topology is not None else None
                ),
                packets_per_phase=int(payload.get("packets_per_phase", 64)),
                flows_per_chain=int(payload.get("flows_per_chain", 32)),
                batch_size=int(payload.get("batch_size", 32)),
                seed=int(payload.get("seed", 23)),
                strategy=str(payload.get("strategy", "lemur")),
                checkpoint_every=int(payload.get("checkpoint_every", 8)),
                with_smartnic=bool(payload.get("with_smartnic", False)),
                with_openflow=bool(payload.get("with_openflow", False)),
                servers=int(payload.get("servers", 0)),
                pool=str(payload.get("pool", "keep")),
                queueing=str(payload.get("queueing", "none")),
                objective=str(payload.get("objective", "throughput")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServeError(f"malformed serve config: {exc}") from exc

    @classmethod
    def parse_json(cls, text: str) -> "ServeConfig":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ServeError(
                f"serve config is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(payload)


# ---------------------------------------------------------------------------
# report
# ---------------------------------------------------------------------------


@dataclass
class ServeReport:
    """Everything the daemon did, rendered deterministically.

    ``recovered`` records whether this process restarted from persisted
    state; it is deliberately excluded from :meth:`as_dict` and
    :meth:`render` so a recovered run's report is byte-identical to an
    uninterrupted run's — the crash-recovery invariant the smoke test
    asserts.
    """

    seed: int
    seq: int = 0
    #: journaled wire records ``{"seq": N, "command": {...}}``, in order.
    commands: List[dict] = field(default_factory=list)
    decisions: List[AdmissionDecision] = field(default_factory=list)
    phases: List[PhaseReport] = field(default_factory=list)
    recovered: bool = False

    @property
    def accepted(self) -> int:
        return sum(1 for d in self.decisions if d.accepted)

    @property
    def rejected(self) -> int:
        return sum(1 for d in self.decisions if not d.accepted)

    @property
    def ok(self) -> bool:
        """SLO compliance across every phase (the exit-code predicate)."""
        return all(ph.compliant for ph in self.phases)

    @property
    def total_injected(self) -> int:
        return sum(row.injected for ph in self.phases for row in ph.chains)

    @property
    def total_delivered(self) -> int:
        return sum(row.delivered for ph in self.phases for row in ph.chains)

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "seq": self.seq,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "total_injected": self.total_injected,
            "total_delivered": self.total_delivered,
            "commands": list(self.commands),
            "decisions": [d.as_dict() for d in self.decisions],
            "phases": [
                {
                    "index": ph.index,
                    "label": ph.label,
                    "compliant": ph.compliant,
                    "chains": [
                        {
                            "chain": row.chain_name,
                            "injected": row.injected,
                            "delivered": row.delivered,
                            "assigned_mbps": round(row.assigned_mbps, 6),
                            "delivered_mbps": round(row.delivered_mbps, 6),
                            "t_min_mbps": round(
                                ph.t_mins.get(row.chain_name, 0.0), 6
                            ),
                            "latency_p50_us": round(row.latency_p50_us, 6),
                            "latency_p95_us": round(row.latency_p95_us, 6),
                            "latency_p99_us": round(row.latency_p99_us, 6),
                            "latency_slo_us": round(row.latency_slo_us, 6),
                            "latency_slo_met": row.latency_slo_met,
                            "slo_met": ph.slo_met(row),
                        }
                        for row in ph.chains
                    ],
                }
                for ph in self.phases
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        lines = [f"control-plane report (seed={self.seed}, seq={self.seq})"]
        if self.commands:
            lines.append("commands:")
            by_seq = {d.tick: d for d in self.decisions}
            for record in self.commands:
                seq = record["seq"]
                kind = record["command"].get("kind", "?")
                decision = by_seq.get(seq)
                if decision is not None:
                    lines.append(f"  s{seq} {decision.describe()}")
                else:
                    cmd = record["command"]
                    lines.append(
                        f"  s{seq} {kind} "
                        f"{cmd.get('action', '')}"
                        f"({cmd.get('target', cmd.get('chain', ''))}) "
                        f"-> applied"
                    )
        else:
            lines.append("commands: none")
        lines.append(
            f"{'phase':<34} {'chain':<12} {'injected':>8} "
            f"{'delivered':>9} {'assigned':>10} {'delivered':>10} "
            f"{'t_min':>9} {'p99':>10} {'d_max':>10} {'slo':>9}"
        )
        lines.append(
            f"{'':<34} {'':<12} {'':>8} {'':>9} "
            f"{'Mbps':>10} {'Mbps':>10} {'Mbps':>9} "
            f"{'µs':>10} {'µs':>10} {'':>9}"
        )
        for ph in self.phases:
            label = f"{ph.index}:{ph.label}"
            for row in ph.chains:
                d_max = (f"{row.latency_slo_us:>10.1f}"
                         if row.latency_slo_us > 0 else f"{'—':>10}")
                lines.append(
                    f"{label:<34} {row.chain_name:<12} "
                    f"{row.injected:>8} {row.delivered:>9} "
                    f"{row.assigned_mbps:>10.2f} {row.delivered_mbps:>10.2f} "
                    f"{ph.t_mins.get(row.chain_name, 0.0):>9.2f} "
                    f"{row.latency_p99_us:>10.1f} {d_max} "
                    f"{'ok' if ph.slo_met(row) else 'VIOLATED':>9}"
                )
        lines.append(
            f"totals: commands={len(self.commands)} "
            f"accepted={self.accepted} rejected={self.rejected} "
            f"injected={self.total_injected} "
            f"delivered={self.total_delivered}"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# daemon
# ---------------------------------------------------------------------------


class ServeDaemon:
    """The rack-owner worker: one live rack, one serialized mutation
    stream, journaled and checkpointed for crash recovery."""

    def __init__(
        self,
        config: ServeConfig,
        state_dir: Union[str, Path],
        *,
        registry: Optional[MetricsRegistry] = None,
    ):
        config.validate()
        self.config = config
        self.state_dir = Path(state_dir)
        self.journal = Journal(self.state_dir / "journal.jsonl")
        self.checkpoints = CheckpointStore(self.state_dir / "checkpoint.pkl")
        #: the daemon owns its registry (it is checkpointed with the
        #: core, so recovered metrics equal the uninterrupted run's).
        self.registry = registry if registry is not None \
            else MetricsRegistry()

        self.core: Optional[AdmissionCore] = None
        self.seq = 0
        self.commands: List[dict] = []
        self.decisions: List[AdmissionDecision] = []
        self.phases: List[PhaseReport] = []
        self.recovered = False
        self._replaying = False

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional["asyncio.Queue[_QueueItem]"] = None
        self._worker: Optional["asyncio.Task[None]"] = None
        self.shutdown_requested: Optional[asyncio.Event] = None

    # -- startup / recovery --------------------------------------------------

    def _persist_or_verify_config(self) -> None:
        path = self.state_dir / "config.json"
        if path.exists():
            stored = ServeConfig.parse_json(
                path.read_text(encoding="utf-8")
            )
            if stored != self.config:
                raise ServeError(
                    f"state dir {self.state_dir} was created with a "
                    "different configuration; replaying its journal "
                    "against this one would rebuild a different rack "
                    "(pass a fresh --state-dir or the original flags)"
                )
            return
        self.state_dir.mkdir(parents=True, exist_ok=True)
        path.write_text(self.config.to_json() + "\n", encoding="utf-8")

    def _bootstrap(self) -> None:
        """Day-0: cold solve + deploy of the configured chain set (a
        fabric topology gets a :class:`FabricAdmissionCore`, same
        surface)."""
        self.core = make_admission_core(
            self.config.build_chains(),
            topology=self.config.build_topology(),
            strategy=self.config.strategy,
            flows_per_chain=self.config.flows_per_chain,
            batch_size=self.config.batch_size,
            seed=self.config.seed,
            registry=self.registry,
            pool=self.config.pool,
            queueing=self.config.queueing,
            objective=self.config.objective,
        )
        self.core.bootstrap()
        self.phases.append(self.core.run_phase(
            "initial", self.config.packets_per_phase,
            index=0, start_packet=0,
        ))

    def _recover_or_bootstrap(self) -> None:
        checkpoint = self.checkpoints.load()
        had_state = checkpoint is not None or self.journal.path.exists()
        if checkpoint is not None:
            self.seq = int(checkpoint["seq"])
            self.core = checkpoint["core"]
            self.commands = list(checkpoint["commands"])
            self.decisions = list(checkpoint["decisions"])
            self.phases = list(checkpoint["phases"])
            self.registry = self.core.obs
            # a pooled core's rack was fetched into the checkpoint; push
            # it back into a fresh worker session before journal replay
            self.core.reattach()
        else:
            self._bootstrap()
        # replay the journal suffix through the deterministic core
        self._replaying = True
        try:
            for record in self.journal.replay(after=self.seq):
                command = parse_command(record["command"])
                outcome = self._apply_mutation(command)
                if outcome.seq != record["seq"] or outcome.status not in (
                    STATUS_APPLIED, STATUS_REJECTED,
                ):
                    raise ServeError(
                        f"journal replay diverged at seq {record['seq']}: "
                        f"got seq={outcome.seq} status={outcome.status} "
                        f"({outcome.error or 'no error'}) — state dir "
                        "does not match its configuration"
                    )
        finally:
            self._replaying = False
        self.recovered = had_state

    async def start(self) -> None:
        """Persist/verify config, recover or bootstrap, start the worker."""
        self._loop = asyncio.get_running_loop()
        self._persist_or_verify_config()
        self._recover_or_bootstrap()
        self._queue = asyncio.Queue()
        self.shutdown_requested = asyncio.Event()
        self._worker = asyncio.create_task(
            self._worker_loop(), name="rack-owner"
        )

    # -- the serialized mutation path ---------------------------------------

    async def submit(self, command: Command) -> CommandOutcome:
        """Enqueue one command for the rack-owner worker; await its
        typed outcome. Safe to call from any task; HTTP threads bridge
        here via ``asyncio.run_coroutine_threadsafe``."""
        if self._queue is None:
            raise ServeError("daemon is not started")
        future: "asyncio.Future[CommandOutcome]" = \
            self._loop.create_future()
        await self._queue.put((command, future))
        return await future

    async def _worker_loop(self) -> None:
        while True:
            item = await self._queue.get()
            if item is None:
                break
            command, future = item
            try:
                outcome = self._handle(command)
            except ReproError as exc:
                outcome = CommandOutcome(
                    seq=self.seq, kind=getattr(command, "kind", "?"),
                    status=STATUS_INVALID, error=str(exc),
                    digest=self._digest(),
                )
            except Exception as exc:  # noqa: BLE001 — the daemon survives
                outcome = CommandOutcome(
                    seq=self.seq, kind=getattr(command, "kind", "?"),
                    status=STATUS_ERROR,
                    error=f"{type(exc).__name__}: {exc}",
                    digest=self._digest(),
                )
            if not future.done():
                future.set_result(outcome)

    def _digest(self) -> str:
        return self.core.state_digest() if self.core is not None else ""

    def _handle(self, command: Command) -> CommandOutcome:
        try:
            command.validate()
        except CommandError as exc:
            return CommandOutcome(
                seq=self.seq, kind=command.kind, status=STATUS_INVALID,
                error=str(exc), digest=self._digest(),
            )
        if isinstance(command, Snapshot):
            return CommandOutcome(
                seq=self.seq, kind=command.kind, status=STATUS_APPLIED,
                digest=self._digest(), snapshot=self.state_snapshot(),
            )
        return self._apply_mutation(command)

    def _apply_mutation(self, command: Command) -> CommandOutcome:
        """Apply one mutating command: advance the core, run its traffic
        phase, journal, maybe checkpoint, acknowledge. Also the journal
        replay path (which skips the journal/checkpoint writes)."""
        seq = self.seq + 1
        decision: Optional[AdmissionDecision] = None
        if isinstance(command, InjectFault):
            try:
                self.core.apply_fault(
                    command.action, command.target, command.severity
                )
            except (FaultInjectionError, TopologyError) as exc:
                # dynamic validation failure: no state changed, no seq
                # consumed, nothing journaled
                return CommandOutcome(
                    seq=self.seq, kind=command.kind,
                    status=STATUS_INVALID, error=str(exc),
                    digest=self._digest(),
                )
            status = STATUS_APPLIED
        else:
            decision = self.core.process(command.to_event(at=seq))
            status = STATUS_APPLIED if decision.accepted \
                else STATUS_REJECTED
        # rejections consume a sequence number and are journaled too:
        # the rejection decision is part of the report the recovery
        # invariant reproduces.
        self.seq = seq
        record = {"seq": seq, "command": command.as_dict()}
        self.commands.append(record)
        if decision is not None:
            self.decisions.append(decision)
        self.phases.append(self.core.run_phase(
            f"s{seq}:{command.describe()}",
            self.config.packets_per_phase,
            index=len(self.phases),
            start_packet=sum(
                row.injected for ph in self.phases for row in ph.chains
            ),
        ))
        if not self._replaying:
            self.journal.append(seq, record["command"])
            every = self.config.checkpoint_every
            if every and seq % every == 0:
                self.checkpoint()
        return CommandOutcome(
            seq=seq, kind=command.kind, status=status,
            decision=decision, digest=self._digest(),
        )

    # -- durability ----------------------------------------------------------

    def checkpoint(self) -> None:
        """Pickle the full daemon state (core incl. rack + registry,
        report history) atomically. A pooled core first fetches its rack
        out of the worker session so the checkpoint stays self-contained."""
        self.core.prepare_checkpoint()
        self.checkpoints.save({
            "seq": self.seq,
            "core": self.core,
            "commands": list(self.commands),
            "decisions": list(self.decisions),
            "phases": list(self.phases),
        })

    # -- introspection -------------------------------------------------------

    def state_snapshot(self) -> dict:
        """A consistent, JSON-safe view of the control-plane state."""
        core = self.core
        return {
            "seq": self.seq,
            "digest": self._digest(),
            "recovered": self.recovered,
            "active": [
                {
                    "chain": c.name,
                    "t_min_mbps": c.slo.t_min,
                    "t_max_mbps": (
                        c.slo.t_max
                        if c.slo.t_max != float("inf") else None
                    ),
                }
                for c in core.active
            ],
            "rates": {
                name: round(rate, 6)
                for name, rate in sorted(core.rates.items())
            },
            "placement": (
                core.placement.describe() if core.placement else ""
            ),
            "faults": dict(sorted(core.fault_state.items())),
            "commands": len(self.commands),
            "phases": len(self.phases),
        }

    def report(self) -> ServeReport:
        return ServeReport(
            seed=self.config.seed,
            seq=self.seq,
            commands=list(self.commands),
            decisions=list(self.decisions),
            phases=list(self.phases),
            recovered=self.recovered,
        )

    def request_shutdown(self) -> None:
        """Thread-safe shutdown trigger (the HTTP front-end calls this
        via ``loop.call_soon_threadsafe``)."""
        if self.shutdown_requested is not None:
            self.shutdown_requested.set()

    # -- shutdown ------------------------------------------------------------

    async def stop(self, *, checkpoint: bool = True) -> None:
        """Drain pending commands, stop the worker, final checkpoint."""
        if self._queue is None:
            return
        await self._queue.put(None)
        await self._worker
        self._queue = None
        self._worker = None
        if checkpoint and self.core is not None:
            self.checkpoint()


__all__ = ["ServeConfig", "ServeDaemon", "ServeReport"]
