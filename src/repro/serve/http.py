"""Thin stdlib HTTP front-end for the control-plane daemon.

``http.server.ThreadingHTTPServer`` accepts concurrent tenant
connections; each handler thread bridges into the daemon's asyncio loop
with ``asyncio.run_coroutine_threadsafe``, so every mutation still flows
through the single rack-owner worker task. The HTTP layer holds no state
of its own — it parses, submits, and maps
:class:`~repro.serve.commands.CommandOutcome` statuses onto HTTP codes
(200 applied, 409 rejected, 400 invalid, 500 internal).

Routes::

    GET  /v1/health    liveness + journal head + state digest
    GET  /v1/state     consistent snapshot (serialized with mutations)
    GET  /v1/schema    JSON schemas for every command kind + the outcome
    GET  /v1/metrics   repro.obs registry snapshot (JSON)
    GET  /v1/report    the full deterministic run report
    POST /v1/commands  one wire-form command -> typed outcome
    POST /v1/shutdown  graceful stop (drain, checkpoint, exit)
"""

from __future__ import annotations

import asyncio
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.exceptions import CommandError
from repro.obs import render_json
from repro.serve.commands import (
    CommandOutcome,
    Snapshot,
    command_schemas,
    parse_command,
)
from repro.serve.daemon import ServeDaemon

#: ceiling on one command's end-to-end handling (solve + redeploy +
#: traffic phase); generous because admission solves an LP.
_SUBMIT_TIMEOUT_S = 300.0

_MAX_BODY_BYTES = 1 << 20


class ControlPlaneHandler(BaseHTTPRequestHandler):
    """One request, parsed and bridged into the daemon's loop."""

    # set by make_handler()
    daemon: ServeDaemon
    loop: asyncio.AbstractEventLoop

    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # the daemon's stdout is the ready line + report, not an access log

    def _send_json(self, code: int, payload: dict) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _submit(self, command) -> CommandOutcome:
        future = asyncio.run_coroutine_threadsafe(
            self.daemon.submit(command), self.loop
        )
        return future.result(timeout=_SUBMIT_TIMEOUT_S)

    def _read_body(self) -> Optional[dict]:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            self._send_json(400, {"error": "a JSON body is required"})
            return None
        if length > _MAX_BODY_BYTES:
            self._send_json(400, {"error": "request body too large"})
            return None
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            self._send_json(400, {"error": f"body is not valid JSON: {exc}"})
            return None
        return payload

    # -- routes -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        if self.path == "/v1/health":
            self._send_json(200, {
                "status": "ok",
                "seq": self.daemon.seq,
                "digest": self.daemon._digest(),
                "recovered": self.daemon.recovered,
            })
        elif self.path == "/v1/state":
            outcome = self._submit(Snapshot())
            self._send_json(
                CommandOutcome.http_status(outcome.status),
                outcome.as_dict(),
            )
        elif self.path == "/v1/schema":
            self._send_json(200, command_schemas())
        elif self.path == "/v1/metrics":
            body = render_json(self.daemon.registry).encode()
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif self.path == "/v1/report":
            self._send_json(200, self.daemon.report().as_dict())
        else:
            self._send_json(404, {"error": f"no route {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        if self.path == "/v1/commands":
            payload = self._read_body()
            if payload is None:
                return
            try:
                command = parse_command(payload)
            except CommandError as exc:
                self._send_json(400, {"error": str(exc)})
                return
            outcome = self._submit(command)
            self._send_json(
                CommandOutcome.http_status(outcome.status),
                outcome.as_dict(),
            )
        elif self.path == "/v1/shutdown":
            self._send_json(200, {
                "status": "shutting down",
                "seq": self.daemon.seq,
            })
            self.loop.call_soon_threadsafe(self.daemon.request_shutdown)
        else:
            self._send_json(404, {"error": f"no route {self.path}"})


def make_handler(daemon: ServeDaemon,
                 loop: asyncio.AbstractEventLoop) -> type:
    return type(
        "BoundControlPlaneHandler",
        (ControlPlaneHandler,),
        {"daemon": daemon, "loop": loop},
    )


class ControlPlaneServer:
    """The HTTP listener, running its accept loop in a daemon thread."""

    def __init__(
        self,
        daemon: ServeDaemon,
        loop: asyncio.AbstractEventLoop,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.httpd = ThreadingHTTPServer(
            (host, port), make_handler(daemon, loop)
        )
        self.host, self.port = self.httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            name="control-plane-http",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None


__all__ = ["ControlPlaneHandler", "ControlPlaneServer", "make_handler"]
