"""Typed day-0/day-2 commands for the control-plane daemon.

The daemon's wire API mirrors the placement API's request/response shape
(:class:`~repro.core.placer.PlacementRequest` →
:class:`~repro.core.placer.PlacementReport`): every command is a frozen
dataclass with a canonical JSON form, every response is a typed
:class:`CommandOutcome` carrying the core's
:class:`~repro.sim.admission.AdmissionDecision` verbatim. Parsing is
strict — unknown kinds and unknown fields are rejected with
:class:`~repro.exceptions.CommandError` instead of silently defaulting,
because a typo'd field on an admission request must not admit a chain
under the wrong SLO.

Day-0 commands (``arrive``) bring a chain onto the rack; day-2 commands
(``scale``/``depart``/``inject_fault``) operate it. ``snapshot`` is the
one read-only command: it flows through the same serialized queue (so it
observes a consistent state) but is never journaled and consumes no
sequence number.

:func:`command_schemas` exports one JSON schema per kind with
``additionalProperties: false``, served at ``GET /v1/schema`` so tenants
can validate client-side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from repro.chain.graph import chains_from_spec
from repro.exceptions import CommandError, SpecError
from repro.sim.admission import (
    FAULT_PROBE_ACTIONS,
    AdmissionDecision,
    ChainEvent,
)

_INF = float("inf")


# ---------------------------------------------------------------------------
# commands
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Arrive:
    """Day-0: admit a new chain under an SLO contract."""

    chain: str
    spec: str
    t_min_mbps: float
    t_max_mbps: float = _INF
    d_max_us: float = _INF

    kind = "arrive"

    def validate(self) -> None:
        if not self.chain:
            raise CommandError("arrive: 'chain' must be non-empty")
        if not self.spec.strip():
            raise CommandError(
                f"arrive: chain {self.chain!r} carries no chain spec"
            )
        try:
            parsed = chains_from_spec(self.spec)
        except SpecError as exc:
            raise CommandError(
                f"arrive: spec for {self.chain!r} does not parse: {exc}"
            ) from exc
        if len(parsed) != 1 or parsed[0].name != self.chain:
            raise CommandError(
                f"arrive: spec for {self.chain!r} must declare exactly "
                f"that one chain, got {[c.name for c in parsed]}"
            )
        if self.t_min_mbps <= 0:
            raise CommandError(
                f"arrive: chain {self.chain!r} needs t_min_mbps > 0 "
                "(admission is an SLO contract)"
            )

    def to_event(self, at: int) -> ChainEvent:
        return ChainEvent(
            at=at, action="arrive", chain=self.chain, spec=self.spec,
            t_min_mbps=self.t_min_mbps, t_max_mbps=self.t_max_mbps,
            d_max_us=self.d_max_us,
        )

    def as_dict(self) -> dict:
        out = {
            "kind": self.kind,
            "chain": self.chain,
            "spec": self.spec,
            "t_min_mbps": self.t_min_mbps,
        }
        # infinities are not JSON; absent means unbounded
        if self.t_max_mbps != _INF:
            out["t_max_mbps"] = self.t_max_mbps
        if self.d_max_us != _INF:
            out["d_max_us"] = self.d_max_us
        return out

    def describe(self) -> str:
        return f"arrive({self.chain})"


@dataclass(frozen=True)
class Scale:
    """Day-2: rescale an admitted chain's SLO floor (and optionally cap)."""

    chain: str
    t_min_mbps: float
    t_max_mbps: float = _INF

    kind = "scale"

    def validate(self) -> None:
        if not self.chain:
            raise CommandError("scale: 'chain' must be non-empty")
        if self.t_min_mbps <= 0:
            raise CommandError(
                f"scale: chain {self.chain!r} needs the new t_min_mbps > 0"
            )

    def to_event(self, at: int) -> ChainEvent:
        return ChainEvent(
            at=at, action="scale", chain=self.chain,
            t_min_mbps=self.t_min_mbps, t_max_mbps=self.t_max_mbps,
        )

    def as_dict(self) -> dict:
        out = {
            "kind": self.kind,
            "chain": self.chain,
            "t_min_mbps": self.t_min_mbps,
        }
        if self.t_max_mbps != _INF:
            out["t_max_mbps"] = self.t_max_mbps
        return out

    def describe(self) -> str:
        return f"scale({self.chain})"


@dataclass(frozen=True)
class Depart:
    """Day-2: release a chain and its resources."""

    chain: str

    kind = "depart"

    def validate(self) -> None:
        if not self.chain:
            raise CommandError("depart: 'chain' must be non-empty")

    def to_event(self, at: int) -> ChainEvent:
        return ChainEvent(at=at, action="depart", chain=self.chain)

    def as_dict(self) -> dict:
        return {"kind": self.kind, "chain": self.chain}

    def describe(self) -> str:
        return f"depart({self.chain})"


@dataclass(frozen=True)
class InjectFault:
    """Day-2: apply a fault probe (fail/recover/degrade/restore) to a
    device on the live rack. Probes perturb the dataplane without
    triggering replanning — the per-phase SLO table shows the damage."""

    action: str
    target: str
    severity: float = 1.0

    kind = "inject_fault"

    def validate(self) -> None:
        if self.action not in FAULT_PROBE_ACTIONS:
            raise CommandError(
                f"inject_fault: unknown action {self.action!r}; "
                f"choose from {sorted(FAULT_PROBE_ACTIONS)}"
            )
        if not self.target:
            raise CommandError("inject_fault: 'target' must be non-empty")
        if self.action == "degrade_link" \
                and not 0.0 < self.severity <= 1.0:
            raise CommandError(
                "inject_fault: degrade_link severity must be in (0, 1], "
                f"got {self.severity}"
            )

    def as_dict(self) -> dict:
        out = {
            "kind": self.kind,
            "action": self.action,
            "target": self.target,
        }
        if self.severity != 1.0:
            out["severity"] = self.severity
        return out

    def describe(self) -> str:
        return f"{self.action}({self.target})"


@dataclass(frozen=True)
class Snapshot:
    """Read-only: a consistent view of the control-plane state.

    Serialized through the same queue as mutations (so it never observes
    a half-applied transition) but never journaled.
    """

    kind = "snapshot"

    def validate(self) -> None:  # nothing to check
        return None

    def as_dict(self) -> dict:
        return {"kind": self.kind}

    def describe(self) -> str:
        return "snapshot"


Command = Union[Arrive, Scale, Depart, InjectFault, Snapshot]

#: kinds that mutate rack state, consume a sequence number, and are
#: journaled for crash recovery. ``snapshot`` is deliberately absent.
MUTATING_KINDS = ("arrive", "scale", "depart", "inject_fault")

_COMMAND_TYPES: Dict[str, type] = {
    "arrive": Arrive,
    "scale": Scale,
    "depart": Depart,
    "inject_fault": InjectFault,
    "snapshot": Snapshot,
}

#: wire fields per kind (beyond the discriminator); used for both strict
#: parsing and the exported JSON schemas.
_COMMAND_FIELDS: Dict[str, Dict[str, dict]] = {
    "arrive": {
        "chain": {"type": "string"},
        "spec": {"type": "string"},
        "t_min_mbps": {"type": "number", "exclusiveMinimum": 0},
        "t_max_mbps": {"type": "number"},
        "d_max_us": {"type": "number"},
    },
    "scale": {
        "chain": {"type": "string"},
        "t_min_mbps": {"type": "number", "exclusiveMinimum": 0},
        "t_max_mbps": {"type": "number"},
    },
    "depart": {
        "chain": {"type": "string"},
    },
    "inject_fault": {
        "action": {"type": "string", "enum": sorted(FAULT_PROBE_ACTIONS)},
        "target": {"type": "string"},
        "severity": {"type": "number", "exclusiveMinimum": 0, "maximum": 1},
    },
    "snapshot": {},
}

_REQUIRED_FIELDS: Dict[str, Tuple[str, ...]] = {
    "arrive": ("chain", "spec", "t_min_mbps"),
    "scale": ("chain", "t_min_mbps"),
    "depart": ("chain",),
    "inject_fault": ("action", "target"),
    "snapshot": (),
}

_FLOAT_FIELDS = frozenset({
    "t_min_mbps", "t_max_mbps", "d_max_us", "severity",
})


def parse_command(payload: object) -> Command:
    """Strictly parse one wire-form command object.

    Unknown ``kind`` values, unknown fields, missing required fields, and
    mistyped values all raise :class:`~repro.exceptions.CommandError`;
    the parsed command is additionally :meth:`validate`-d so a response
    of 200/409 always refers to a well-formed request.
    """
    if not isinstance(payload, dict):
        raise CommandError(
            f"command must be an object, got {type(payload).__name__}"
        )
    kind = payload.get("kind")
    if kind not in _COMMAND_TYPES:
        raise CommandError(
            f"unknown command kind {kind!r}; "
            f"choose from {sorted(_COMMAND_TYPES)}"
        )
    allowed = set(_COMMAND_FIELDS[kind]) | {"kind"}
    unknown = set(payload) - allowed
    if unknown:
        raise CommandError(
            f"{kind}: unknown fields {sorted(unknown)}"
        )
    missing = [f for f in _REQUIRED_FIELDS[kind] if f not in payload]
    if missing:
        raise CommandError(f"{kind}: missing required fields {missing}")
    kwargs = {}
    for name in _COMMAND_FIELDS[kind]:
        if name not in payload:
            continue
        value = payload[name]
        try:
            kwargs[name] = (
                float(value) if name in _FLOAT_FIELDS else str(value)
            )
        except (TypeError, ValueError) as exc:
            raise CommandError(
                f"{kind}: field {name!r} is malformed: {exc}"
            ) from exc
    command = _COMMAND_TYPES[kind](**kwargs)
    command.validate()
    return command


def command_schemas() -> dict:
    """One draft-07-style JSON schema per command kind
    (``additionalProperties: false`` — the wire is strict)."""
    schemas = {}
    for kind, fields in _COMMAND_FIELDS.items():
        properties = {"kind": {"const": kind}}
        properties.update(fields)
        schemas[kind] = {
            "type": "object",
            "properties": properties,
            "required": ["kind", *_REQUIRED_FIELDS[kind]],
            "additionalProperties": False,
        }
    return {
        "commands": schemas,
        "outcome": CommandOutcome.schema(),
    }


# ---------------------------------------------------------------------------
# outcome
# ---------------------------------------------------------------------------

#: outcome statuses and the HTTP codes the front-end maps them to.
STATUS_APPLIED = "applied"      # 200 — state advanced (or snapshot read)
STATUS_REJECTED = "rejected"    # 409 — admission refused; state untouched
STATUS_INVALID = "invalid"      # 400 — malformed/unsatisfiable request
STATUS_ERROR = "error"          # 500 — internal failure

_STATUSES = (
    STATUS_APPLIED, STATUS_REJECTED, STATUS_INVALID, STATUS_ERROR,
)


@dataclass(frozen=True)
class CommandOutcome:
    """The daemon's typed response to one command.

    ``seq`` is the journal sequence the command consumed (the current
    head for snapshots and invalid requests). ``decision`` carries the
    admission core's verdict verbatim for lifecycle commands; fault
    probes and snapshots have none. ``digest`` is the post-command
    :meth:`~repro.sim.admission.AdmissionCore.state_digest` — two
    daemons that report equal digests will make byte-identical decisions
    from here on.
    """

    seq: int
    kind: str
    status: str
    decision: Optional[AdmissionDecision] = None
    error: str = ""
    digest: str = ""
    snapshot: Optional[dict] = None

    @property
    def applied(self) -> bool:
        return self.status == STATUS_APPLIED

    def as_dict(self) -> dict:
        out: dict = {
            "seq": self.seq,
            "kind": self.kind,
            "status": self.status,
        }
        if self.decision is not None:
            out["decision"] = self.decision.as_dict()
        if self.error:
            out["error"] = self.error
        if self.digest:
            out["digest"] = self.digest
        if self.snapshot is not None:
            out["snapshot"] = self.snapshot
        return out

    _FIELDS = frozenset({
        "seq", "kind", "status", "decision", "error", "digest", "snapshot",
    })

    @classmethod
    def from_dict(cls, payload: object) -> "CommandOutcome":
        if not isinstance(payload, dict):
            raise CommandError(
                f"outcome must be an object, got {type(payload).__name__}"
            )
        unknown = set(payload) - cls._FIELDS
        if unknown:
            raise CommandError(
                f"outcome carries unknown fields {sorted(unknown)}"
            )
        status = payload.get("status")
        if status not in _STATUSES:
            raise CommandError(
                f"outcome status {status!r} not in {sorted(_STATUSES)}"
            )
        decision = payload.get("decision")
        try:
            return cls(
                seq=int(payload["seq"]),
                kind=str(payload["kind"]),
                status=str(status),
                decision=(
                    AdmissionDecision.from_dict(decision)
                    if decision is not None else None
                ),
                error=str(payload.get("error", "")),
                digest=str(payload.get("digest", "")),
                snapshot=payload.get("snapshot"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CommandError(f"malformed outcome: {exc}") from exc

    @classmethod
    def schema(cls) -> dict:
        return {
            "type": "object",
            "properties": {
                "seq": {"type": "integer", "minimum": 0},
                "kind": {"type": "string"},
                "status": {"enum": sorted(_STATUSES)},
                "decision": {"type": "object"},
                "error": {"type": "string"},
                "digest": {"type": "string"},
                "snapshot": {"type": "object"},
            },
            "required": ["seq", "kind", "status"],
            "additionalProperties": False,
        }

    @classmethod
    def http_status(cls, status: str) -> int:
        return {
            STATUS_APPLIED: 200,
            STATUS_REJECTED: 409,
            STATUS_INVALID: 400,
            STATUS_ERROR: 500,
        }.get(status, 500)


__all__ = [
    "Arrive",
    "Scale",
    "Depart",
    "InjectFault",
    "Snapshot",
    "Command",
    "CommandOutcome",
    "MUTATING_KINDS",
    "STATUS_APPLIED",
    "STATUS_REJECTED",
    "STATUS_INVALID",
    "STATUS_ERROR",
    "command_schemas",
    "parse_command",
]
