"""Durability for the control-plane daemon: journal + checkpoints.

The daemon's persistence model is write-ahead-of-ack, not
write-ahead-of-apply: a mutating command is applied to the in-memory
:class:`~repro.sim.admission.AdmissionCore` first, then appended to the
journal and fsync'd, and only then acknowledged to the client. The
invariant a tenant can rely on is therefore *acknowledged ⇒ journaled ⇒
recovered*: a crash can lose at most commands that were still in flight
(never acknowledged), and recovery replays exactly the acknowledged
prefix. Because the core is deterministic given (config, command
sequence), replaying that prefix reconstructs a byte-identical rack.

* :class:`Journal` — append-only JSONL, one record per applied mutating
  command: ``{"seq": N, "command": {...}}`` with sorted keys. Records
  are strictly sequenced; a gap or out-of-order seq on read means the
  file was tampered with or torn, and recovery fails loudly rather than
  silently skipping. A trailing partial line (torn write during a crash)
  is tolerated and ignored — it can only belong to an unacknowledged
  command.
* :class:`CheckpointStore` — periodic pickles of the full daemon state
  (seq, admission core incl. the deployed rack and metrics registry,
  decisions, phases), written atomically (tmp + rename + dir fsync) so a
  crash mid-checkpoint leaves the previous checkpoint intact. Recovery
  loads the checkpoint and replays only journal records with
  ``seq > checkpoint.seq``.
"""

from __future__ import annotations

import json
import os
import pickle
from pathlib import Path
from typing import Iterator, List, Optional

from repro.exceptions import ServeError


class Journal:
    """Append-only, fsync'd JSONL command log."""

    def __init__(self, path: Path):
        self.path = Path(path)

    def append(self, seq: int, command: dict) -> None:
        """Durably append one applied command (fsync before return)."""
        record = json.dumps(
            {"seq": seq, "command": command}, sort_keys=True
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(record + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def records(self, after: int = 0) -> Iterator[dict]:
        """Yield journal records with ``seq > after``, in order.

        Raises :class:`~repro.exceptions.ServeError` on malformed or
        out-of-sequence records; tolerates exactly one torn trailing
        line (the signature of a crash mid-append).
        """
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            lines = fh.read().split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        expected = None
        for index, line in enumerate(lines):
            try:
                record = json.loads(line)
                seq = int(record["seq"])
                command = record["command"]
                if not isinstance(command, dict):
                    raise ValueError("command is not an object")
            except (json.JSONDecodeError, KeyError, TypeError,
                    ValueError) as exc:
                if index == len(lines) - 1:
                    # torn trailing write from a crash mid-append: the
                    # command was never acknowledged, so dropping it
                    # preserves the acked ⇒ recovered invariant.
                    return
                raise ServeError(
                    f"journal {self.path} record {index + 1} is "
                    f"malformed: {exc}"
                ) from exc
            if expected is not None and seq != expected:
                raise ServeError(
                    f"journal {self.path} is out of sequence at record "
                    f"{index + 1}: expected seq {expected}, got {seq}"
                )
            expected = seq + 1
            if seq > after:
                yield record

    def replay(self, after: int = 0) -> List[dict]:
        return list(self.records(after=after))

    def head_seq(self) -> int:
        """The last journaled sequence number (0 for an empty journal)."""
        seq = 0
        for record in self.records():
            seq = int(record["seq"])
        return seq


class CheckpointStore:
    """Atomic pickle checkpoints of the daemon's full state."""

    def __init__(self, path: Path):
        self.path = Path(path)

    def save(self, state: dict) -> None:
        """Write the checkpoint atomically: a crash mid-save leaves the
        previous checkpoint readable."""
        if "seq" not in state:
            raise ServeError("checkpoint state must carry 'seq'")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "wb") as fh:
            pickle.dump(state, fh, protocol=pickle.HIGHEST_PROTOCOL)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        # persist the rename itself
        dir_fd = os.open(self.path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    def load(self) -> Optional[dict]:
        """The latest checkpoint, or ``None`` if none was ever written."""
        if not self.path.exists():
            return None
        try:
            with open(self.path, "rb") as fh:
                state = pickle.load(fh)
        except (
            pickle.UnpicklingError,
            AttributeError,
            EOFError,
            OSError,
            ValueError,
        ) as exc:
            raise ServeError(
                f"checkpoint {self.path} is unreadable: {exc} "
                "(delete it to force full-journal recovery)"
            ) from exc
        if not isinstance(state, dict) or "seq" not in state:
            raise ServeError(
                f"checkpoint {self.path} has no 'seq' — not a daemon "
                "checkpoint"
            )
        return state


__all__ = ["CheckpointStore", "Journal"]
