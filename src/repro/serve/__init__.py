"""``repro.serve`` — the always-on control-plane daemon (``repro serve``).

The batch engines answer "what would this timeline have done?"; this
package answers the operator's question: a long-running service that
owns a live rack, admits arrive/scale/depart requests from concurrent
tenants through the shared :class:`~repro.sim.admission.AdmissionCore`,
applies day-2 fault probes, streams observability snapshots, and
survives a ``SIGKILL`` by journal + checkpoint crash recovery.

Layering::

    commands.py   typed Arrive/Scale/Depart/InjectFault/Snapshot +
                  CommandOutcome, strict JSON (de)serialization, schemas
    journal.py    fsync'd JSONL journal + atomic pickle checkpoints
    daemon.py     ServeConfig / ServeDaemon (the rack-owner worker) /
                  ServeReport
    http.py       stdlib ThreadingHTTPServer front-end (/v1/...)

See ``docs/control_plane.md`` for the wire schema, the journal and
checkpoint formats, and the recovery semantics.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
from pathlib import Path
from typing import Callable, Optional, Union

from repro.serve.commands import (
    Arrive,
    Command,
    CommandOutcome,
    Depart,
    InjectFault,
    Scale,
    Snapshot,
    command_schemas,
    parse_command,
)
from repro.serve.daemon import ServeConfig, ServeDaemon, ServeReport
from repro.serve.http import ControlPlaneServer
from repro.serve.journal import CheckpointStore, Journal


def run_server(
    config: ServeConfig,
    state_dir: Union[str, Path],
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    ready: Optional[Callable[[str], None]] = None,
) -> ServeReport:
    """Run the daemon in the foreground until shutdown; return its report.

    Starts (or crash-recovers) the daemon, brings up the HTTP front-end,
    calls ``ready(url)`` once accepting — the CLI prints the ready line
    from it — and blocks until ``POST /v1/shutdown`` or
    SIGTERM/SIGINT. Shutdown drains pending commands, checkpoints, and
    returns the final deterministic :class:`ServeReport`.
    """

    async def _main() -> ServeReport:
        loop = asyncio.get_running_loop()
        daemon = ServeDaemon(config, state_dir)
        await daemon.start()
        server = ControlPlaneServer(daemon, loop, host=host, port=port)
        server.start()
        for signum in (signal.SIGTERM, signal.SIGINT):
            # not available on every platform, and only allowed from the
            # main thread (tests host run_server in a worker thread)
            with contextlib.suppress(
                NotImplementedError, RuntimeError, ValueError
            ):
                loop.add_signal_handler(signum, daemon.request_shutdown)
        try:
            if ready is not None:
                ready(server.url)
            await daemon.shutdown_requested.wait()
        finally:
            server.stop()
            await daemon.stop()
        return daemon.report()

    return asyncio.run(_main())


__all__ = [
    "Arrive",
    "Command",
    "CommandOutcome",
    "ControlPlaneServer",
    "CheckpointStore",
    "Depart",
    "InjectFault",
    "Journal",
    "Scale",
    "ServeConfig",
    "ServeDaemon",
    "ServeReport",
    "Snapshot",
    "command_schemas",
    "parse_command",
    "run_server",
]
