"""Unit helpers.

All rates inside the library are plain floats in **Mbps**; all latencies are
floats in **microseconds**; CPU costs are **cycles per packet**. These helpers
exist so that configuration and tests can speak in natural units without
sprinkling magic constants.
"""

from __future__ import annotations

#: Simulated average packet size (bytes). The paper's testbed drives MTU-sized
#: frames; every pps<->bps conversion in the library uses this default unless
#: a caller overrides it.
DEFAULT_PACKET_BYTES = 1500

#: Bits per default packet.
DEFAULT_PACKET_BITS = DEFAULT_PACKET_BYTES * 8

#: Size of the packets the simulator's traffic synthesis emits
#: (:func:`repro.sim.runtime._chain_packet`). This is the single source of
#: truth for every delivered-Mbps conversion the traffic engine reports;
#: ``repro.sim.traffic.PACKET_BITS`` derives from it.
SIM_PACKET_BYTES = 512

#: Bits per synthesized simulator packet.
SIM_PACKET_BITS = SIM_PACKET_BYTES * 8


#: Relative slack applied to SLO rate comparisons so LP rates that sit
#: exactly on t_min don't flap on float rounding. Shared by the chaos
#: guard, the lifecycle/serve phase tables, and the traffic report.
SLO_RTOL = 1e-9


def mbps(value: float) -> float:
    """Identity, for readability at call sites: ``mbps(40_000)``."""
    return float(value)


def gbps(value: float) -> float:
    """Convert Gbps to the library's Mbps floats."""
    return float(value) * 1000.0


def mbps_to_gbps(value: float) -> float:
    """Convert an internal Mbps value back to Gbps for reporting."""
    return float(value) / 1000.0


def pps_to_mbps(pps: float, packet_bytes: int = DEFAULT_PACKET_BYTES) -> float:
    """Packets/sec to Mbps at a given packet size."""
    return pps * packet_bytes * 8 / 1e6


def mbps_to_pps(rate_mbps: float, packet_bytes: int = DEFAULT_PACKET_BYTES) -> float:
    """Mbps to packets/sec at a given packet size."""
    return rate_mbps * 1e6 / (packet_bytes * 8)


def cycles_to_rate_mbps(
    cycles: float,
    freq_hz: float,
    packet_bytes: int = DEFAULT_PACKET_BYTES,
) -> float:
    """Single-core rate of an NF costing ``cycles`` per packet (§3.2: f/c)."""
    if cycles <= 0:
        raise ValueError(f"cycle cost must be positive, got {cycles}")
    return pps_to_mbps(freq_hz / cycles, packet_bytes)


def us(value: float) -> float:
    """Identity for microseconds, for readability."""
    return float(value)


def ms(value: float) -> float:
    """Milliseconds to microseconds."""
    return float(value) * 1000.0


def seconds_to_us(value: float) -> float:
    """Seconds to microseconds."""
    return float(value) * 1e6
