"""Lemur reproduction: SLO-meeting cross-platform NFV (CoNEXT 2020).

Quickstart::

    from repro import Placer, chains_from_spec, SLO, gbps

    chains = chains_from_spec(
        "chain c1: ACL -> Encrypt -> IPv4Fwd",
        slos=[SLO(t_min=gbps(1), t_max=gbps(10))],
    )
    report = Placer().solve(PlacementRequest(chains))
    print(report.placement.describe())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.chain.graph import NFChain, NFGraph, chains_from_spec
from repro.chain.parser import parse_spec
from repro.chain.slo import SLO, SLOUseCase
from repro.chain.vocabulary import Vocabulary, default_vocabulary
from repro.core.cache import PlacementCache
from repro.core.placement import Placement
from repro.core.placer import (
    Placer,
    PlacerConfig,
    PlacementReport,
    PlacementRequest,
    available_strategies,
)
from repro.experiments.runner import SweepSpec, run_delta_sweep, run_sweep
from repro.hw.multirack import InterRackLink, MultiRackTopology
from repro.hw.platform import Platform
from repro.hw.spec import (
    RackSpec,
    TopologySpec,
    available_topologies,
    topology_for,
)
from repro.hw.topology import Topology, default_testbed, multi_server_testbed
from repro.metacompiler.compiler import CompiledArtifacts, MetaCompiler
from repro.profiles.defaults import ProfileDatabase, default_profiles
from repro.sim.testbed import TestbedSimulator
from repro.units import gbps, mbps, us

__version__ = "1.0.0"

__all__ = [
    "NFChain",
    "NFGraph",
    "chains_from_spec",
    "parse_spec",
    "SLO",
    "SLOUseCase",
    "Vocabulary",
    "default_vocabulary",
    "Placement",
    "Placer",
    "PlacerConfig",
    "PlacementRequest",
    "PlacementReport",
    "PlacementCache",
    "SweepSpec",
    "run_delta_sweep",
    "run_sweep",
    "available_strategies",
    "Platform",
    "Topology",
    "TopologySpec",
    "RackSpec",
    "InterRackLink",
    "MultiRackTopology",
    "available_topologies",
    "topology_for",
    "default_testbed",
    "multi_server_testbed",
    "MetaCompiler",
    "CompiledArtifacts",
    "ProfileDatabase",
    "default_profiles",
    "TestbedSimulator",
    "gbps",
    "mbps",
    "us",
    "__version__",
]
