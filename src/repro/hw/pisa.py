"""PISA (Tofino-class) switch resource model.

The paper's switch is an Edgecore 100BF-32X: a 32x100 G Barefoot Tofino. For
placement, what matters is: the switch processes any fitting pipeline at line
rate, and the pipeline must fit the stage budget under per-stage resource
limits (table slots, SRAM, TCAM) — the number of stages being the easiest
constraint to violate (§4.2). Actual stage packing is performed by the
compiler simulator in :mod:`repro.p4c`; this module only carries capacities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.platform import Device, Platform
from repro.units import gbps


@dataclass
class PISAStageResources:
    """Per-stage resource capacities.

    Calibrated (DESIGN.md) so that the paper's stage-pressure narratives hold:
    ~8 logical tables per stage, 1 400 KB SRAM and 64 KB TCAM per stage.
    """

    table_slots: int = 8
    sram_kb: float = 1400.0
    tcam_kb: float = 64.0

    def copy(self) -> "PISAStageResources":
        return PISAStageResources(self.table_slots, self.sram_kb, self.tcam_kb)


@dataclass
class PISASwitch(Device):
    """A PISA switch: N pipeline stages, per-stage resources, line rate."""

    name: str = "tofino0"
    platform: Platform = Platform.PISA
    num_stages: int = 12
    stage_resources: PISAStageResources = field(default_factory=PISAStageResources)
    num_ports: int = 32
    port_rate_mbps: float = field(default_factory=lambda: gbps(100))

    def __hash__(self) -> int:
        return hash((self.name, self.platform))

    @property
    def line_rate_mbps(self) -> float:
        """Per-port line rate; PISA NFs never bottleneck a chain (§3.1)."""
        return self.port_rate_mbps
