"""Geo-distributed fabric: several racks joined by inter-rack links.

The single-rack :class:`~repro.hw.topology.Topology` stays the unit the
per-rack Placer, meta-compiler, and deployed dataplane reason over; a
:class:`MultiRackTopology` is a *fabric* of those racks plus the
:class:`InterRackLink`\\ s between them. Links carry a capacity (Mbps, the
aggregate rate the partitioner may route across) and a one-way latency
(µs) that is charged against a chain's ``d_max`` when the chain is homed
away from its ingress rack.

Traffic enters the fabric at the **ingress rack** (the first declared
rack by default). A chain homed on any other rack is *remote*: its
packets cross the inter-rack link to the home rack and back, so the
round trip (2 × one-way latency) rides on every delivered packet and the
chain's floor rate consumes link capacity in both directions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import TopologyError
from repro.hw.topology import Topology


@dataclass
class InterRackLink:
    """A bidirectional rack-to-rack link (capacity Mbps, one-way µs)."""

    name: str
    a: str  # rack name
    b: str  # rack name
    capacity_mbps: float
    latency_us: float

    def __hash__(self) -> int:
        return hash(self.name)

    def other(self, rack: str) -> str:
        if rack == self.a:
            return self.b
        if rack == self.b:
            return self.a
        raise TopologyError(f"link {self.name} does not touch rack {rack!r}")


@dataclass
class MultiRackTopology:
    """The fabric: named racks (insertion-ordered) + inter-rack links.

    The first rack is the fabric's ingress unless ``ingress`` names
    another one. Rack names namespace their devices (rack builders prefix
    device names with ``<rack>.``), so fault timelines and reports can
    address ``r1.server0`` unambiguously.
    """

    racks: Dict[str, Topology] = field(default_factory=dict)
    links: List[InterRackLink] = field(default_factory=list)
    ingress: str = ""

    def __post_init__(self) -> None:
        if not self.racks:
            raise TopologyError("a fabric needs at least one rack")
        if not self.ingress:
            self.ingress = next(iter(self.racks))
        if self.ingress not in self.racks:
            raise TopologyError(
                f"ingress rack {self.ingress!r} is not in the fabric "
                f"({sorted(self.racks)})"
            )
        seen = set()
        for link in self.links:
            for end in (link.a, link.b):
                if end not in self.racks:
                    raise TopologyError(
                        f"link {link.name} references unknown rack {end!r}"
                    )
            if link.a == link.b:
                raise TopologyError(f"link {link.name} is a self-loop")
            if link.capacity_mbps <= 0:
                raise TopologyError(
                    f"link {link.name} needs capacity_mbps > 0"
                )
            if link.latency_us < 0:
                raise TopologyError(
                    f"link {link.name} needs latency_us >= 0"
                )
            key = frozenset((link.a, link.b))
            if key in seen:
                raise TopologyError(
                    f"duplicate link between {link.a} and {link.b}"
                )
            seen.add(key)
        if len(self.racks) > 1:
            self._check_connected()

    def _check_connected(self) -> None:
        reachable = {self.ingress}
        frontier = [self.ingress]
        while frontier:
            rack = frontier.pop()
            for link in self.links:
                if rack in (link.a, link.b):
                    other = link.other(rack)
                    if other not in reachable:
                        reachable.add(other)
                        frontier.append(other)
        stranded = sorted(set(self.racks) - reachable)
        if stranded:
            raise TopologyError(
                f"racks {stranded} are unreachable from the ingress rack "
                f"{self.ingress!r} — add inter-rack links"
            )

    # -- lookups ----------------------------------------------------------

    @property
    def rack_names(self) -> List[str]:
        return list(self.racks)

    def rack(self, name: str) -> Topology:
        try:
            return self.racks[name]
        except KeyError:
            raise TopologyError(
                f"no rack named {name!r} (have {sorted(self.racks)})"
            ) from None

    def link_between(self, a: str, b: str) -> Optional[InterRackLink]:
        for link in self.links:
            if {link.a, link.b} == {a, b}:
                return link
        return None

    def link_to_ingress(self, rack: str) -> Optional[InterRackLink]:
        """The direct link between a rack and the ingress (None for the
        ingress itself or an unlinked rack)."""
        if rack == self.ingress:
            return None
        return self.link_between(self.ingress, rack)

    def rack_of_device(self, device_name: str) -> str:
        """Which rack hosts a (possibly rack-prefixed) device name."""
        for name, topology in self.racks.items():
            try:
                topology.device(device_name)
                return name
            except TopologyError:
                continue
        raise TopologyError(f"no rack hosts a device named {device_name!r}")

    def total_server_cores(self) -> int:
        return sum(t.total_server_cores() for t in self.racks.values())

    def describe(self) -> str:
        lines = [f"fabric: {len(self.racks)} racks, ingress={self.ingress}"]
        for name, topology in self.racks.items():
            lines.append(
                f"  rack {name}: switch={topology.switch.name} "
                f"servers={len(topology.servers)} "
                f"cores={topology.total_server_cores()}"
            )
        for link in self.links:
            lines.append(
                f"  link {link.name}: {link.a}<->{link.b} "
                f"{link.capacity_mbps:g} Mbps {link.latency_us:g} µs one-way"
            )
        return "\n".join(lines)


__all__ = ["InterRackLink", "MultiRackTopology"]
