"""Platform taxonomy and device base class."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Platform(enum.Enum):
    """Where an NF can execute (Table 3's columns).

    ``SERVER`` is C++ on a BESS server, ``PISA`` is P4 on the programmable
    ToR, ``SMARTNIC`` is eBPF on a Netronome-class NIC, ``OPENFLOW`` is
    match/action rules on a fixed-function OF switch.
    """

    SERVER = "server"
    PISA = "pisa"
    SMARTNIC = "smartnic"
    OPENFLOW = "openflow"

    def __str__(self) -> str:  # nicer in reports
        return self.value


@dataclass
class Device:
    """A named hardware element in the topology."""

    name: str
    platform: Platform

    def __hash__(self) -> int:
        return hash((self.name, self.platform))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Device):
            return NotImplemented
        return self.name == other.name and self.platform == other.platform
