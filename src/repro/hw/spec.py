"""Declarative topology specification: the one way to describe a testbed.

The ad-hoc ``default_testbed()`` / ``multi_server_testbed()`` constructors
grew a flag per experiment (SmartNIC, OpenFlow ToR, server count, Metron
steering) and could not express more than one rack. A :class:`TopologySpec`
states the whole fabric as data — racks, their switch/server/SmartNIC
shapes, and the inter-rack links — with a JSON round-trip that rejects
unknown fields (the same wire discipline as ``FaultTimeline`` /
``LifecycleTimeline``), so a persisted spec rebuilds the *identical*
topology after a daemon restart.

``spec.build()`` returns a plain single-rack
:class:`~repro.hw.topology.Topology` for one rack (byte-compatible with
the legacy constructors, including device names) or a
:class:`~repro.hw.multirack.MultiRackTopology` for several (device names
prefixed ``<rack>.`` so fault targets stay unambiguous).

Named presets cover the recurring shapes::

    topology_for("paper-testbed")     # Tofino ToR + 2x8-core BESS server
    topology_for("two-rack")          # two paper racks, one 40G/50µs link
    topology_for("multi-server", servers=4)
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.exceptions import TopologyError
from repro.hw.multirack import InterRackLink, MultiRackTopology
from repro.hw.openflow import OpenFlowSwitchModel
from repro.hw.pisa import PISASwitch
from repro.hw.platform import Device
from repro.hw.server import eight_core_server, paper_nf_server
from repro.hw.smartnic import SmartNIC
from repro.hw.topology import Topology

SWITCH_KINDS = ("pisa", "openflow")
SERVER_MODELS = ("paper", "eight-core")

#: inter-rack defaults: a 40 G DCI wave with 50 µs one-way latency.
DEFAULT_LINK_CAPACITY_MBPS = 40_000.0
DEFAULT_LINK_LATENCY_US = 50.0


@dataclass(frozen=True)
class RackSpec:
    """One rack's shape: ToR kind, server inventory, SmartNIC flag."""

    name: str = "r0"
    switch: str = "pisa"  # "pisa" | "openflow"
    num_stages: int = 12
    servers: int = 1
    server_model: str = "paper"  # "paper" | "eight-core"
    smartnic: bool = False
    metron_steering: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("every rack needs a name")
        if self.switch not in SWITCH_KINDS:
            raise TopologyError(
                f"rack {self.name}: switch must be one of "
                f"{SWITCH_KINDS}, got {self.switch!r}"
            )
        if self.server_model not in SERVER_MODELS:
            raise TopologyError(
                f"rack {self.name}: server_model must be one of "
                f"{SERVER_MODELS}, got {self.server_model!r}"
            )
        if self.servers < 1:
            raise TopologyError(
                f"rack {self.name}: need at least one server"
            )
        if self.num_stages < 1:
            raise TopologyError(
                f"rack {self.name}: num_stages must be >= 1"
            )

    def build(self, prefix: str = "") -> Topology:
        """Instantiate the rack. With an empty prefix the device names
        match the legacy constructors exactly (``tofino0``, ``server0``,
        ``agilio0``); a multi-rack build passes ``prefix="<rack>."``."""
        servers = []
        for index in range(self.servers):
            name = f"{prefix}server{index}"
            if self.server_model == "paper":
                server = paper_nf_server(name)
            else:
                server = eight_core_server(name)
            servers.append(server)
        if self.metron_steering:
            for server in servers:
                server.reserved_cores = 0  # the demux core is freed
        smartnics = []
        if self.smartnic:
            smartnics.append(SmartNIC(
                name=f"{prefix}agilio0", host_server=servers[0].name,
            ))
        switch: Device
        if self.switch == "openflow":
            switch = OpenFlowSwitchModel(name=f"{prefix}of0")
        else:
            switch = PISASwitch(
                name=f"{prefix}tofino0", num_stages=self.num_stages,
            )
        return Topology(
            switch=switch, servers=servers, smartnics=smartnics,
            metron_steering=self.metron_steering,
        )


@dataclass(frozen=True)
class InterRackLinkSpec:
    """A rack-to-rack link: aggregate capacity + one-way latency."""

    a: str
    b: str
    capacity_mbps: float = DEFAULT_LINK_CAPACITY_MBPS
    latency_us: float = DEFAULT_LINK_LATENCY_US

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise TopologyError(f"link {self.a}<->{self.b} is a self-loop")
        if self.capacity_mbps <= 0:
            raise TopologyError(
                f"link {self.a}<->{self.b}: capacity_mbps must be > 0"
            )
        if self.latency_us < 0:
            raise TopologyError(
                f"link {self.a}<->{self.b}: latency_us must be >= 0"
            )

    @property
    def name(self) -> str:
        return f"{self.a}~{self.b}"


@dataclass(frozen=True)
class TopologySpec:
    """The whole fabric as data: racks + inter-rack links.

    Frozen (hashable, picklable) so experiment specs can carry it and
    worker processes can rebuild the identical topology from it.
    """

    racks: Tuple[RackSpec, ...] = (RackSpec(),)
    links: Tuple[InterRackLinkSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.racks:
            raise TopologyError("a topology spec needs at least one rack")
        # tolerate lists from hand-built specs
        if not isinstance(self.racks, tuple):
            object.__setattr__(self, "racks", tuple(self.racks))
        if not isinstance(self.links, tuple):
            object.__setattr__(self, "links", tuple(self.links))
        names = [rack.name for rack in self.racks]
        if len(set(names)) != len(names):
            raise TopologyError(f"duplicate rack names: {names}")
        known = set(names)
        for link in self.links:
            for end in (link.a, link.b):
                if end not in known:
                    raise TopologyError(
                        f"link {link.name} references unknown rack {end!r}"
                    )
        if len(self.racks) == 1 and self.links:
            raise TopologyError(
                "a single-rack topology cannot carry inter-rack links"
            )
        # fabric connectivity is validated by MultiRackTopology at build
        # time; validate eagerly here so a bad spec fails at parse time.
        if len(self.racks) > 1:
            self.build()

    @property
    def is_multi_rack(self) -> bool:
        return len(self.racks) > 1

    @property
    def rack_names(self) -> List[str]:
        return [rack.name for rack in self.racks]

    def rack(self, name: str) -> RackSpec:
        for rack in self.racks:
            if rack.name == name:
                return rack
        raise TopologyError(f"no rack named {name!r} in the spec")

    def build(self) -> Union[Topology, MultiRackTopology]:
        """Instantiate the spec. Single rack -> :class:`Topology` with the
        legacy (unprefixed) device names; several racks ->
        :class:`MultiRackTopology` with ``<rack>.``-prefixed devices."""
        if not self.is_multi_rack:
            return self.racks[0].build(prefix="")
        racks = {
            rack.name: rack.build(prefix=f"{rack.name}.")
            for rack in self.racks
        }
        links = [
            InterRackLink(
                name=link.name, a=link.a, b=link.b,
                capacity_mbps=link.capacity_mbps,
                latency_us=link.latency_us,
            )
            for link in self.links
        ]
        return MultiRackTopology(
            racks=racks, links=links, ingress=self.racks[0].name,
        )

    # -- convenience constructors ------------------------------------------

    @classmethod
    def single(cls, rack: Optional[RackSpec] = None) -> "TopologySpec":
        return cls(racks=(rack or RackSpec(),))

    @classmethod
    def star(
        cls,
        num_racks: int,
        *,
        rack_template: Optional[RackSpec] = None,
        capacity_mbps: float = DEFAULT_LINK_CAPACITY_MBPS,
        latency_us: float = DEFAULT_LINK_LATENCY_US,
    ) -> "TopologySpec":
        """``num_racks`` identical racks, each satellite linked to ``r0``
        (the shape ``--racks N`` generates)."""
        if num_racks < 1:
            raise TopologyError("need at least one rack")
        template = rack_template or RackSpec()
        racks = tuple(
            replace(template, name=f"r{i}") for i in range(num_racks)
        )
        links = tuple(
            InterRackLinkSpec(
                a="r0", b=f"r{i}",
                capacity_mbps=capacity_mbps, latency_us=latency_us,
            )
            for i in range(1, num_racks)
        )
        return cls(racks=racks, links=links)

    @classmethod
    def from_flags(
        cls,
        *,
        with_smartnic: bool = False,
        with_openflow: bool = False,
        servers: int = 0,
        metron: bool = False,
        racks: int = 0,
    ) -> "TopologySpec":
        """Bridge from the legacy CLI/spec flag vocabulary.

        ``servers > 0`` selects the N×8-core shape (the old
        ``multi_server_testbed``); otherwise the paper testbed with its
        option flags. ``racks > 1`` replicates that rack into a star
        fabric.
        """
        if servers and servers > 0:
            rack = RackSpec(servers=servers, server_model="eight-core")
        else:
            rack = RackSpec(
                switch="openflow" if with_openflow else "pisa",
                smartnic=with_smartnic,
                metron_steering=metron,
            )
        if racks and racks > 1:
            return cls.star(racks, rack_template=rack)
        return cls(racks=(rack,))

    # -- (de)serialization --------------------------------------------------

    #: the exhaustive wire fields; anything else is rejected so schema
    #: typos fail loudly instead of silently defaulting.
    _TOP_FIELDS = frozenset({"racks", "links"})
    _RACK_FIELDS = frozenset({
        "name", "switch", "num_stages", "servers", "server_model",
        "smartnic", "metron_steering",
    })
    _LINK_FIELDS = frozenset({"a", "b", "capacity_mbps", "latency_us"})

    def as_dict(self) -> dict:
        return {
            "racks": [
                {
                    "name": rack.name,
                    "switch": rack.switch,
                    "num_stages": rack.num_stages,
                    "servers": rack.servers,
                    "server_model": rack.server_model,
                    "smartnic": rack.smartnic,
                    "metron_steering": rack.metron_steering,
                }
                for rack in self.racks
            ],
            "links": [
                {
                    "a": link.a,
                    "b": link.b,
                    "capacity_mbps": link.capacity_mbps,
                    "latency_us": link.latency_us,
                }
                for link in self.links
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "TopologySpec":
        if not isinstance(payload, dict):
            raise TopologyError(
                f"topology spec must be an object, "
                f"got {type(payload).__name__}"
            )
        unknown = set(payload) - cls._TOP_FIELDS
        if unknown:
            raise TopologyError(
                f"topology spec carries unknown fields {sorted(unknown)}"
            )
        try:
            racks = []
            for entry in payload.get("racks", ()):
                bad = set(entry) - cls._RACK_FIELDS
                if bad:
                    raise TopologyError(
                        f"rack spec carries unknown fields {sorted(bad)}"
                    )
                racks.append(RackSpec(
                    name=str(entry["name"]),
                    switch=str(entry.get("switch", "pisa")),
                    num_stages=int(entry.get("num_stages", 12)),
                    servers=int(entry.get("servers", 1)),
                    server_model=str(entry.get("server_model", "paper")),
                    smartnic=bool(entry.get("smartnic", False)),
                    metron_steering=bool(
                        entry.get("metron_steering", False)
                    ),
                ))
            links = []
            for entry in payload.get("links", ()):
                bad = set(entry) - cls._LINK_FIELDS
                if bad:
                    raise TopologyError(
                        f"link spec carries unknown fields {sorted(bad)}"
                    )
                links.append(InterRackLinkSpec(
                    a=str(entry["a"]),
                    b=str(entry["b"]),
                    capacity_mbps=float(
                        entry.get(
                            "capacity_mbps", DEFAULT_LINK_CAPACITY_MBPS
                        )
                    ),
                    latency_us=float(
                        entry.get("latency_us", DEFAULT_LINK_LATENCY_US)
                    ),
                ))
        except (KeyError, TypeError, ValueError) as exc:
            raise TopologyError(
                f"malformed topology spec: {exc}"
            ) from exc
        return cls(racks=tuple(racks), links=tuple(links))

    @classmethod
    def parse_json(cls, text: str) -> "TopologySpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TopologyError(
                f"topology spec is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(payload)

    @classmethod
    def json_schema(cls) -> dict:
        """A JSON-schema document for the wire format (CI lint check)."""
        return {
            "$schema": "https://json-schema.org/draft/2020-12/schema",
            "title": "TopologySpec",
            "type": "object",
            "additionalProperties": False,
            "required": ["racks"],
            "properties": {
                "racks": {
                    "type": "array",
                    "minItems": 1,
                    "items": {
                        "type": "object",
                        "additionalProperties": False,
                        "required": ["name"],
                        "properties": {
                            "name": {"type": "string", "minLength": 1},
                            "switch": {"enum": list(SWITCH_KINDS)},
                            "num_stages": {
                                "type": "integer", "minimum": 1,
                            },
                            "servers": {
                                "type": "integer", "minimum": 1,
                            },
                            "server_model": {
                                "enum": list(SERVER_MODELS),
                            },
                            "smartnic": {"type": "boolean"},
                            "metron_steering": {"type": "boolean"},
                        },
                    },
                },
                "links": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "additionalProperties": False,
                        "required": ["a", "b"],
                        "properties": {
                            "a": {"type": "string", "minLength": 1},
                            "b": {"type": "string", "minLength": 1},
                            "capacity_mbps": {
                                "type": "number",
                                "exclusiveMinimum": 0,
                            },
                            "latency_us": {
                                "type": "number", "minimum": 0,
                            },
                        },
                    },
                },
            },
        }


# ---------------------------------------------------------------------------
# named presets
# ---------------------------------------------------------------------------

_PRESETS: Dict[str, Callable[[], TopologySpec]] = {}


def register_topology(name: str,
                      factory: Callable[[], TopologySpec]) -> None:
    """Register (or replace) a named topology preset."""
    _PRESETS[name] = factory


def available_topologies() -> List[str]:
    return sorted(_PRESETS)


def topology_for(name: str, **overrides) -> TopologySpec:
    """A preset :class:`TopologySpec` by name.

    Single-rack presets accept rack-field overrides (``servers=4``,
    ``smartnic=True``, …) applied to their one rack.
    """
    factory = _PRESETS.get(name)
    if factory is None:
        raise TopologyError(
            f"unknown topology preset {name!r}; "
            f"choose from {available_topologies()}"
        )
    spec = factory()
    if not overrides:
        return spec
    if spec.is_multi_rack:
        raise TopologyError(
            f"preset {name!r} is multi-rack; rack overrides are ambiguous "
            "— build a TopologySpec explicitly"
        )
    return TopologySpec(racks=(replace(spec.racks[0], **overrides),))


register_topology(
    "paper-testbed", lambda: TopologySpec(racks=(RackSpec(),))
)
register_topology(
    "paper-smartnic",
    lambda: TopologySpec(racks=(RackSpec(smartnic=True),)),
)
register_topology(
    "paper-openflow",
    lambda: TopologySpec(racks=(RackSpec(switch="openflow"),)),
)
register_topology(
    "metron",
    lambda: TopologySpec(racks=(RackSpec(metron_steering=True),)),
)
register_topology(
    "multi-server",
    lambda: TopologySpec(
        racks=(RackSpec(servers=2, server_model="eight-core"),)
    ),
)
register_topology("two-rack", lambda: TopologySpec.star(2))
register_topology(
    "two-rack-wide",
    lambda: TopologySpec.star(
        2,
        rack_template=RackSpec(servers=2, server_model="eight-core"),
    ),
)
register_topology("three-rack", lambda: TopologySpec.star(3))


__all__ = [
    "DEFAULT_LINK_CAPACITY_MBPS",
    "DEFAULT_LINK_LATENCY_US",
    "InterRackLinkSpec",
    "RackSpec",
    "SERVER_MODELS",
    "SWITCH_KINDS",
    "TopologySpec",
    "available_topologies",
    "register_topology",
    "topology_for",
]
