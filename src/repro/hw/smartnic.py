"""SmartNIC model: a Netronome Agilio CX 1x40 Gbps running eBPF/XDP.

The constraints (§A.3) are the eBPF offload verifier's: 512-byte stack,
4096-instruction program limit, no back-edges, no function calls. The NIC
processes offloaded NFs at a rate set by per-NF NIC cycle profiles (our
profiles make ChaCha >10x faster than the server, matching §5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.platform import Device, Platform
from repro.units import gbps


@dataclass
class SmartNIC(Device):
    """eBPF-capable SmartNIC attached to a server."""

    name: str = "agilio0"
    platform: Platform = Platform.SMARTNIC
    rate_mbps: float = field(default_factory=lambda: gbps(40))
    host_server: str = "server0"
    socket: int = 0
    #: eBPF offload verifier limits (§A.3).
    max_instructions: int = 4096
    stack_bytes: int = 512
    #: Processing clock used for cycle→rate conversion of NIC profiles.
    freq_hz: float = 1.2e9
    #: Number of packet-processing engines running the eBPF program in
    #: parallel (Netronome NFP flow-processing cores); rates scale with it.
    engines: int = 54

    def __hash__(self) -> int:
        return hash((self.name, self.platform))
