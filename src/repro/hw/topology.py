"""Rack topology: ToR switch + servers + SmartNICs + links.

The placement problem's input includes "a single PISA switch connected to
several servers, each of which may have one or more attached smart NICs"
(§3.1). Links carry capacities the rate-assignment LP must respect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import TopologyError
from repro.hw.openflow import OpenFlowSwitchModel
from repro.hw.pisa import PISASwitch
from repro.hw.platform import Device, Platform
from repro.hw.server import Server, paper_nf_server, eight_core_server
from repro.hw.smartnic import SmartNIC
from repro.units import gbps


@dataclass
class Link:
    """A full-duplex link between the ToR and a server NIC."""

    name: str
    a: str  # device name (switch)
    b: str  # device name (server)
    nic_name: str
    capacity_mbps: float

    def __hash__(self) -> int:
        return hash(self.name)


@dataclass
class Topology:
    """The rack: one coordinating switch, servers, optional SmartNICs."""

    switch: Device
    servers: List[Server] = field(default_factory=list)
    smartnics: List[SmartNIC] = field(default_factory=list)
    links: List[Link] = field(default_factory=list)
    #: Latency parameters (§5.3): one switch<->server bounce round trip,
    #: covering propagation, transmission, DPDK and switch queueing.
    bounce_rtt_us: float = 4.0
    #: Metron-style steering (§3.2/§4.2 future work): the ToR tags packets
    #: so the NIC steers them directly to the right core, eliminating the
    #: software demultiplexer (its core and its per-packet LB cycles).
    metron_steering: bool = False
    failed_devices: set = field(default_factory=set)

    def __post_init__(self) -> None:
        names = [self.switch.name] + [s.name for s in self.servers] + [
            n.name for n in self.smartnics
        ]
        if len(set(names)) != len(names):
            raise TopologyError(f"duplicate device names in topology: {names}")
        for nic_dev in self.smartnics:
            if nic_dev.host_server not in {s.name for s in self.servers}:
                raise TopologyError(
                    f"SmartNIC {nic_dev.name} attached to unknown server "
                    f"{nic_dev.host_server!r}"
                )
        if not self.links:
            self.links = self._default_links()

    def _default_links(self) -> List[Link]:
        links = []
        for server in self.servers:
            for nic in server.nics:
                links.append(
                    Link(
                        name=f"{self.switch.name}-{server.name}-{nic.name}",
                        a=self.switch.name,
                        b=server.name,
                        nic_name=nic.name,
                        capacity_mbps=nic.rate_mbps,
                    )
                )
        return links

    # -- lookups ----------------------------------------------------------

    def server(self, name: str) -> Server:
        for server in self.servers:
            if server.name == name:
                return server
        raise TopologyError(f"no server named {name!r}")

    def smartnic(self, name: str) -> SmartNIC:
        for nic_dev in self.smartnics:
            if nic_dev.name == name:
                return nic_dev
        raise TopologyError(f"no SmartNIC named {name!r}")

    def device(self, name: str) -> Device:
        if name == self.switch.name:
            return self.switch
        for server in self.servers:
            if server.name == name:
                return server
        for nic_dev in self.smartnics:
            if nic_dev.name == name:
                return nic_dev
        raise TopologyError(f"no device named {name!r}")

    def devices_for(self, platform: Platform) -> List[Device]:
        """All live devices of a given platform type."""
        out: List[Device] = []
        if self.switch.platform == platform:
            out.append(self.switch)
        if platform == Platform.SERVER:
            out.extend(self.servers)
        if platform == Platform.SMARTNIC:
            out.extend(self.smartnics)
        return [d for d in out if d.name not in self.failed_devices]

    def link_for(self, server_name: str, nic_name: Optional[str] = None) -> Link:
        for link in self.links:
            if link.b == server_name and (nic_name is None or link.nic_name == nic_name):
                return link
        raise TopologyError(f"no link to server {server_name!r} (nic={nic_name!r})")

    def mark_failed(self, device_name: str) -> None:
        """Take a device out of service (§7 failure handling)."""
        self.device(device_name)  # validates existence
        self.failed_devices.add(device_name)

    def total_server_cores(self) -> int:
        return sum(
            s.allocatable_cores
            for s in self.servers
            if s.name not in self.failed_devices
        )


# ---------------------------------------------------------------------------
# deprecated constructors — thin shims over repro.hw.spec.TopologySpec
# ---------------------------------------------------------------------------

#: shim names that have already warned (each warns exactly once per
#: process; tests reset via :func:`_reset_topology_deprecations`).
_WARNED: set = set()


def _warn_once(name: str, replacement: str) -> None:
    if name in _WARNED:
        return
    _WARNED.add(name)
    import warnings

    warnings.warn(
        f"{name}() is deprecated; build the topology from a declarative "
        f"spec instead: {replacement}",
        DeprecationWarning,
        stacklevel=3,
    )


def _reset_topology_deprecations() -> None:
    """Test hook: make every shim warn again."""
    _WARNED.clear()


def default_testbed(
    num_stages: int = 12,
    with_smartnic: bool = False,
    with_openflow: bool = False,
    metron_steering: bool = False,
) -> Topology:
    """Deprecated: the paper's main testbed (Tofino ToR + one 2x8-core
    BESS server). Use ``topology_for("paper-testbed").build()`` or a
    :class:`~repro.hw.spec.TopologySpec`; this shim warns once and
    delegates to the spec builder (device names are unchanged)."""
    _warn_once(
        "default_testbed",
        'repro.hw.spec.topology_for("paper-testbed").build()',
    )
    from repro.hw.spec import RackSpec

    return RackSpec(
        switch="openflow" if with_openflow else "pisa",
        num_stages=num_stages,
        smartnic=with_smartnic,
        metron_steering=metron_steering,
    ).build()


def multi_server_testbed(num_servers: int = 2, num_stages: int = 12) -> Topology:
    """Deprecated: N single-socket 8-core servers behind the Tofino ToR
    (Fig. 3a). Use ``topology_for("multi-server", servers=N).build()``;
    this shim warns once and delegates to the spec builder."""
    _warn_once(
        "multi_server_testbed",
        'repro.hw.spec.topology_for("multi-server", servers=N).build()',
    )
    from repro.hw.spec import RackSpec

    return RackSpec(
        servers=num_servers,
        server_model="eight-core",
        num_stages=num_stages,
    ).build()
