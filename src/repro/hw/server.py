"""Commodity x86 server model: sockets, cores, NUMA, NICs.

The paper's NF server is a dual-socket 8-core (total 16) 1.7 GHz Xeon Bronze
3106 with one 40 Gbps Intel XL710 NIC attached to socket 0. NUMA matters:
profiles measured cross-socket are a few percent costlier (Table 4), and the
NIC's socket gets the demultiplexer core (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.exceptions import TopologyError
from repro.hw.platform import Device, Platform
from repro.units import gbps


@dataclass
class NIC:
    """A conventional NIC: full-duplex capacity, socket affinity."""

    name: str = "xl710"
    rate_mbps: float = field(default_factory=lambda: gbps(40))
    socket: int = 0

    def __hash__(self) -> int:
        return hash(self.name)


@dataclass
class CPUSocket:
    """One CPU socket: core count and clock."""

    index: int
    cores: int = 8
    freq_hz: float = 1.7e9


@dataclass
class Server(Device):
    """An NF server with one or more sockets and NICs."""

    name: str = "server0"
    platform: Platform = Platform.SERVER
    sockets: List[CPUSocket] = field(
        default_factory=lambda: [CPUSocket(0), CPUSocket(1)]
    )
    nics: List[NIC] = field(default_factory=lambda: [NIC()])
    #: Cores reserved off the top (the NSH demultiplexer runs on one core,
    #: §4.2 / §A.1.2).
    reserved_cores: int = 1

    def __hash__(self) -> int:
        return hash((self.name, self.platform))

    def __post_init__(self) -> None:
        if not self.sockets:
            raise TopologyError(f"server {self.name} has no CPU sockets")
        if not self.nics:
            raise TopologyError(f"server {self.name} has no NICs")
        for nic in self.nics:
            if nic.socket >= len(self.sockets):
                raise TopologyError(
                    f"NIC {nic.name} on server {self.name} references socket "
                    f"{nic.socket}, but only {len(self.sockets)} sockets exist"
                )

    @property
    def total_cores(self) -> int:
        return sum(s.cores for s in self.sockets)

    @property
    def allocatable_cores(self) -> int:
        """Cores the Placer may hand to NF subgroups."""
        return max(0, self.total_cores - self.reserved_cores)

    @property
    def freq_hz(self) -> float:
        """Clock rate used for cycle→rate conversion (homogeneous sockets)."""
        return self.sockets[0].freq_hz

    def nic_by_name(self, name: str) -> NIC:
        for nic in self.nics:
            if nic.name == name:
                return nic
        raise TopologyError(f"server {self.name} has no NIC named {name!r}")

    def primary_nic(self) -> NIC:
        return self.nics[0]


def paper_nf_server(name: str = "server0") -> Server:
    """The paper's BESS NF server: 2x8 cores @1.7 GHz, one 40 G NIC."""
    return Server(name=name)


def eight_core_server(name: str, nic_rate_mbps: Optional[float] = None) -> Server:
    """A single-socket 8-core server (used in the multi-server experiment)."""
    return Server(
        name=name,
        sockets=[CPUSocket(0, cores=8, freq_hz=1.7e9)],
        nics=[NIC(name=f"{name}-nic", rate_mbps=nic_rate_mbps or gbps(40))],
    )
