"""Hardware models: the rack-scale topology Lemur places NF chains onto.

One PISA (Tofino-class) ToR switch connects several x86 servers, each with
one or more NICs (possibly eBPF-capable SmartNICs); an OpenFlow switch may
stand in for the PISA switch (§5.3). These are *capacity and constraint*
models — the executable behaviour lives in :mod:`repro.bess`,
:mod:`repro.p4c`, :mod:`repro.ebpf` and :mod:`repro.openflow`.
"""

from repro.hw.platform import Platform, Device
from repro.hw.pisa import PISASwitch, PISAStageResources
from repro.hw.server import Server, NIC, CPUSocket
from repro.hw.smartnic import SmartNIC
from repro.hw.openflow import OpenFlowSwitchModel, OFTableSpec
from repro.hw.topology import Topology, Link, default_testbed, multi_server_testbed
from repro.hw.multirack import InterRackLink, MultiRackTopology
from repro.hw.spec import (
    InterRackLinkSpec,
    RackSpec,
    TopologySpec,
    available_topologies,
    register_topology,
    topology_for,
)

__all__ = [
    "Platform",
    "Device",
    "PISASwitch",
    "PISAStageResources",
    "Server",
    "NIC",
    "CPUSocket",
    "SmartNIC",
    "OpenFlowSwitchModel",
    "OFTableSpec",
    "Topology",
    "Link",
    "default_testbed",
    "multi_server_testbed",
    "InterRackLink",
    "MultiRackTopology",
    "InterRackLinkSpec",
    "RackSpec",
    "TopologySpec",
    "available_topologies",
    "register_topology",
    "topology_for",
]
