"""OpenFlow switch model (Edgecore AS5712-54X class).

Unlike a PISA switch, an OF switch has a *fixed* table order, so the Placer
must check that the NFs mapped to it can execute in the order its pipeline
tables appear (§5.3). It also lacks NSH support: Lemur encodes SPI/SI in the
12-bit VLAN vid, limiting the number of chains x hops that fit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.hw.platform import Device, Platform
from repro.units import gbps


@dataclass
class OFTableSpec:
    """One fixed-pipeline table: what NF kinds it can host, and capacity."""

    index: int
    name: str
    supported_nfs: frozenset
    max_rules: int = 2048


def _default_of_pipeline() -> List[OFTableSpec]:
    """A typical fixed pipeline: VLAN -> ACL -> L3 fwd -> stats.

    The supported-NF sets follow Table 3's OF column: Tunnel/Detunnel
    (VLAN table), ACL, IPv4Fwd (L3), Monitor (stats).
    """
    return [
        OFTableSpec(0, "vlan", frozenset({"Tunnel", "Detunnel"}), max_rules=4094),
        OFTableSpec(1, "acl", frozenset({"ACL"}), max_rules=2048),
        OFTableSpec(2, "l3", frozenset({"IPv4Fwd"}), max_rules=16384),
        OFTableSpec(3, "stats", frozenset({"Monitor"}), max_rules=4096),
    ]


@dataclass
class OpenFlowSwitchModel(Device):
    """An OF switch: fixed table order, VLAN-vid chain encoding, line rate."""

    name: str = "of0"
    platform: Platform = Platform.OPENFLOW
    tables: List[OFTableSpec] = field(default_factory=_default_of_pipeline)
    port_rate_mbps: float = field(default_factory=lambda: gbps(10))
    #: SPI/SI live in the 12-bit VLAN vid (§5.3): limits chains x indices.
    vid_bits: int = 12

    def __hash__(self) -> int:
        return hash((self.name, self.platform))

    def table_for_nf(self, nf_name: str):
        """First pipeline table able to host ``nf_name``, or None."""
        for table in self.tables:
            if nf_name in table.supported_nfs:
                return table
        return None

    def supports_order(self, nf_names: List[str]) -> bool:
        """Can the fixed pipeline execute ``nf_names`` in this order?

        Each NF must map to a table, and table indices must be
        non-decreasing along the chain (a packet traverses the fixed
        pipeline once, front to back).
        """
        last_index = -1
        for name in nf_names:
            table = self.table_for_nf(name)
            if table is None:
                return False
            if table.index < last_index:
                return False
            last_index = table.index
        return True
