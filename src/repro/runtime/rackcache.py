"""Worker-side caches: artifact bundles, warm racks, and serve sessions.

Everything in this module below :func:`bundle_fingerprint` executes inside
a pool worker process (module-level state is per-worker). Two caching
regimes coexist:

* **Warm racks** (:func:`rack_for`) — shared, slot-keyed racks for
  stateless-per-dispatch callers (traffic shards). A cache hit calls
  :meth:`DeployedRack.reset_state`, so every dispatch observes a
  just-deployed rack and results stay byte-identical with the per-run
  pools; a fingerprint change applies :meth:`DeployedRack.redeploy`
  (per-device delta) before the reset instead of rebuilding the rack
  object wholesale. ``runtime.rack_builds{mode=cold|warm|delta}`` counts
  what happened, recorded in the dispatch's scoped registry so the
  parent's merge sees it.

* **Sessions** (:func:`session_call`) — dedicated, *cumulative* racks for
  the serve daemon. A session rack mirrors exactly the rack an in-process
  daemon would own: state persists across phases, redeploys are deltas
  that preserve stateful-NF state on unchanged devices, fault probes
  apply in command order, and the rack can be pickled out for a
  checkpoint and restored after a crash. All ops for one session ride the
  same pool affinity key, so they execute FIFO on one worker.
"""

from __future__ import annotations

import hashlib
import pickle
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import WorkerPoolError
from repro.obs import scoped_registry
from repro.sim.runtime import DeployedRack

#: bounded worker-side caches (racks/bundles/sessions are few but heavy).
_MAX_BUNDLES = 8
_MAX_RACKS = 4
_MAX_SESSIONS = 4


class StaleArtifactsError(WorkerPoolError):
    """The worker lacks a fingerprint's payload (restart raced the parent's
    shipped-set bookkeeping); re-dispatch with the payload attached."""


def bundle_fingerprint(payload_bytes: bytes) -> str:
    """Canonical fingerprint of a pickled (topology, artifacts, profiles)
    bundle — the worker cache key and the ship-once protocol token."""
    return hashlib.sha256(payload_bytes).hexdigest()


@dataclass
class ArtifactBundle:
    """A deployable artifact set, shipped by value exactly once per worker.

    ``payload`` is the pickled ``(topology, artifacts, profiles)`` tuple
    (``None`` when the parent believes this worker already caches the
    fingerprint).
    """

    fingerprint: str
    payload: Optional[bytes] = None


# -- worker-side state (per worker process) ---------------------------------

_bundles: "OrderedDict[str, tuple]" = OrderedDict()
_racks: "OrderedDict[tuple, list]" = OrderedDict()
_sessions: "OrderedDict[str, _Session]" = OrderedDict()


def _trim(cache: OrderedDict, limit: int) -> None:
    while len(cache) > limit:
        cache.popitem(last=False)


def resolve_bundle(bundle: ArtifactBundle) -> tuple:
    """The worker's cached unpickled payload for a fingerprint.

    Traffic bundles are ``(topology, artifacts, profiles, placement)``;
    session bundles omit the trailing placement. :func:`rack_for` only
    touches the leading three elements, so both shapes share the cache.
    """
    hit = _bundles.get(bundle.fingerprint)
    if hit is not None:
        _bundles.move_to_end(bundle.fingerprint)
        return hit
    if bundle.payload is None:
        raise StaleArtifactsError(
            f"worker has no artifacts for fingerprint "
            f"{bundle.fingerprint[:12]} (restarted worker?); "
            "re-dispatch with the payload"
        )
    resolved = pickle.loads(bundle.payload)
    _bundles[bundle.fingerprint] = resolved
    _trim(_bundles, _MAX_BUNDLES)
    return resolved


def rack_for(slot: str, bundle: ArtifactBundle, seed: int,
             registry) -> DeployedRack:
    """A deployed rack for ``(slot, seed)``, warm when possible.

    * no cached rack → **cold**: deploy from the (cached or shipped)
      artifact bundle;
    * cached rack, same fingerprint → **warm**: reset to just-deployed
      state (fresh NF/RNG state, fresh instruments on ``registry``);
    * cached rack, different fingerprint → **delta**: per-device
      :meth:`~repro.sim.runtime.DeployedRack.redeploy` against the new
      artifacts, then the same reset — the stale rack is never reused
      as-is.
    """
    key = (slot, seed)
    entry = _racks.get(key)
    if entry is None:
        topology, artifacts, profiles = resolve_bundle(bundle)[:3]
        rack = DeployedRack(topology, artifacts, profiles, seed=seed,
                            registry=registry)
        mode = "cold"
        _racks[key] = [bundle.fingerprint, rack]
    else:
        _racks.move_to_end(key)
        if entry[0] == bundle.fingerprint:
            rack = entry[1]
            rack.reset_state(registry=registry)
            mode = "warm"
        else:
            artifacts = resolve_bundle(bundle)[1]
            rack = entry[1]
            rack.redeploy(artifacts)
            rack.reset_state(registry=registry)
            entry[0] = bundle.fingerprint
            mode = "delta"
    _trim(_racks, _MAX_RACKS)
    registry.counter("runtime.rack_builds", mode=mode).inc()
    return rack


# ---------------------------------------------------------------------------
# pooled traffic shards
# ---------------------------------------------------------------------------


@dataclass
class PooledShardTask:
    """One worker's share of a pooled sharded replay."""

    shard_index: int
    chain_names: List[str]
    packets_per_chain: int
    #: carries the placement as its fourth payload element, so per-phase
    #: tasks ship only the fingerprint plus a few scalars.
    bundle: ArtifactBundle
    seed: int
    flows_per_chain: int
    batch_size: int
    vectorized: bool
    #: optional shared-memory descriptor carrying the flow-signature
    #: schedule column (key ``"sig"``) every chain replays.
    sig_shm: Optional[object] = None
    #: queueing-delay model the warm rack stamps (``none`` or ``mm1``).
    queueing: str = "none"


def run_traffic_shard(task: PooledShardTask) -> Tuple[int, list, dict, float]:
    """Pool entry point: replay this shard's chains on a warm rack.

    Same contract as the per-run ``_run_traffic_shard``: ships back
    ``(shard index, chain rows, registry dump, replay wall)`` so the
    parent merges observability state in shard-index order.
    """
    import time

    from repro.sim.traffic import TrafficEngine, configure_rack_queueing

    sig_schedule = None
    handle = None
    if task.sig_shm is not None:
        arrays, handle = task.sig_shm.attach()
        sig_schedule = arrays.get("sig")
    try:
        with scoped_registry() as registry:
            placement = resolve_bundle(task.bundle)[3]
            rack = rack_for("traffic", task.bundle, task.seed, registry)
            # reset_state cleared any prior queueing; re-derive it from
            # this dispatch's placement so warm racks match cold ones.
            configure_rack_queueing(rack, placement, task.queueing)
            engine = TrafficEngine(
                rack, placement,
                flows_per_chain=task.flows_per_chain,
                batch_size=task.batch_size,
                vectorized=task.vectorized,
            )
            started = time.perf_counter()
            rows = [
                engine._run_chain(cp, task.packets_per_chain,
                                  sig_schedule=sig_schedule)
                for cp in placement.chains
                if cp.name in task.chain_names
            ]
            wall = time.perf_counter() - started
            state = registry.dump_state()
    finally:
        if task.sig_shm is not None:
            task.sig_shm.detach(handle)
    return task.shard_index, rows, state, wall


# ---------------------------------------------------------------------------
# serve sessions
# ---------------------------------------------------------------------------


@dataclass
class _Session:
    """One serve daemon's live rack inside this worker."""

    rack: DeployedRack
    placement: object
    flows_per_chain: int
    batch_size: int
    engine: object = None
    queueing: str = "none"


@dataclass
class SessionTask:
    """One serialized operation against a serve session."""

    session: str
    op: str  # build | restore | redeploy | fault | phase | fetch | drop
    bundle: Optional[ArtifactBundle] = None
    placement: object = None
    artifacts: object = None
    rack_bytes: Optional[bytes] = None
    seed: int = 23
    flows_per_chain: int = 32
    batch_size: int = 32
    action: str = ""
    target: str = ""
    severity: float = 1.0
    cursors: Dict[str, int] = field(default_factory=dict)
    packets_per_chain: int = 0
    queueing: str = "none"


def _session(task: SessionTask) -> "_Session":
    session = _sessions.get(task.session)
    if session is None:
        raise WorkerPoolError(
            f"unknown serve session {task.session!r} (worker restarted?); "
            "the daemon must rebuild it from a checkpoint"
        )
    _sessions.move_to_end(task.session)
    return session


def _session_engine(session: "_Session"):
    from repro.sim.traffic import TrafficEngine

    if session.engine is None:
        session.engine = TrafficEngine(
            session.rack, session.placement,
            flows_per_chain=session.flows_per_chain,
            batch_size=session.batch_size,
        )
    session.engine.placement = session.placement
    return session.engine


def session_call(task: SessionTask) -> Tuple[object, Optional[dict]]:
    """Apply one session op; returns ``(result, registry dump or None)``.

    Ops that touch instruments (build/redeploy/phase) run under a scoped
    registry whose state the daemon merges back, so pooled serve metrics
    match the in-process mode counter for counter.
    """
    from repro.sim.traffic import configure_rack_queueing

    op = task.op
    if op == "build":
        with scoped_registry() as registry:
            topology, artifacts, profiles = resolve_bundle(task.bundle)
            rack = DeployedRack(topology, artifacts, profiles,
                                seed=task.seed, registry=registry)
            configure_rack_queueing(rack, task.placement, task.queueing)
            state = registry.dump_state()
        _sessions[task.session] = _Session(
            rack=rack, placement=task.placement,
            flows_per_chain=task.flows_per_chain,
            batch_size=task.batch_size,
            queueing=task.queueing,
        )
        _trim(_sessions, _MAX_SESSIONS)
        return rack._next_seq, state
    if op == "restore":
        rack = pickle.loads(task.rack_bytes)
        configure_rack_queueing(rack, task.placement, task.queueing)
        _sessions[task.session] = _Session(
            rack=rack, placement=task.placement,
            flows_per_chain=task.flows_per_chain,
            batch_size=task.batch_size,
            queueing=task.queueing,
        )
        _trim(_sessions, _MAX_SESSIONS)
        return rack._next_seq, None
    if op == "drop":
        _sessions.pop(task.session, None)
        return None, None

    session = _session(task)
    if op == "redeploy":
        with scoped_registry() as registry:
            session.rack.rebind_registry(registry)
            delta = session.rack.redeploy(task.artifacts)
            # rates changed with the placement: re-derive utilization
            configure_rack_queueing(
                session.rack, task.placement, session.queueing
            )
            state = registry.dump_state()
        session.placement = task.placement
        return delta, state
    if op == "fault":
        rack = session.rack
        if task.action == "fail":
            rack.set_device_failed(task.target)
        elif task.action == "recover":
            rack.set_device_failed(task.target, False)
        elif task.action == "degrade_link":
            rack.set_drop_fraction(task.target, task.severity)
        elif task.action == "restore_link":
            rack.set_drop_fraction(task.target, 0.0)
        else:
            raise WorkerPoolError(
                f"unknown session fault action {task.action!r}"
            )
        return None, None
    if op == "phase":
        with scoped_registry() as registry:
            session.rack.rebind_registry(registry)
            engine = _session_engine(session)
            delivered: Dict[str, int] = {}
            latencies: Dict[str, List[float]] = {}
            cursors = dict(task.cursors)
            for cp in session.placement.chains:
                count, cursors[cp.name], samples = engine.replay_batch(
                    cp, cursors.get(cp.name, 0), task.packets_per_chain
                )
                delivered[cp.name] = count
                latencies[cp.name] = samples
            state = registry.dump_state()
        return (delivered, cursors, session.rack._next_seq, latencies), state
    if op == "fetch":
        return pickle.dumps(session.rack), None
    raise WorkerPoolError(f"unknown session op {op!r}")


__all__ = [
    "ArtifactBundle",
    "PooledShardTask",
    "SessionTask",
    "StaleArtifactsError",
    "bundle_fingerprint",
    "rack_for",
    "resolve_bundle",
    "run_traffic_shard",
    "session_call",
]
