"""The persistent worker pool behind every parallel execution path.

Every parallel caller used to spawn a fresh ``ProcessPoolExecutor`` per
run — traffic shards, sweep cells, chaos/lifecycle replica cross-checks,
and the serve daemon's per-command phases each paid pool-spawn plus task
re-pickling plus a from-scratch rack rebuild in every worker, which is
exactly the overhead that dominates short, repeated phases under a
long-running control plane. :class:`WorkerPool` keeps a small set of
worker *processes* alive for the lifetime of the parent:

* **dispatch** is a synchronous fan-out of ``(fn, arg)`` tasks over the
  workers, with results restored to submission order — the same
  deterministic-merge contract the per-run pools had;
* **affinity** pins all tasks that share a key to one worker in FIFO
  order, which is what lets a serve session keep cumulative rack state
  in a single worker across commands;
* **payload planning** (:meth:`plan` + :meth:`needs_payload`) lets
  callers ship a heavy artifact bundle to each worker exactly once and
  send only its fingerprint afterwards — workers cache the bundle and
  the deployed rack (see :mod:`repro.runtime.rackcache`).

Workers are daemonic, survive across dispatches, watch for parent death
(a SIGKILLed parent cannot close them down gracefully), and are respawned
transparently if one dies — respawn clears the parent's shipped-payload
bookkeeping so the fingerprint protocol stays sound. Results travel over
a dedicated pipe per worker rather than one shared queue: a shared queue
guards its pipe with a cross-process semaphore, and a worker killed in
the instant between writing a result and releasing that semaphore would
poison the queue for every respawned worker (POSIX semaphores are not
released on process death). One writer per pipe needs no lock, and a
dead worker's pipe EOFs, which doubles as instant death detection.

Parent-side observability: ``runtime.workers`` gauge,
``runtime.tasks{kind}`` counter, ``runtime.dispatch.seconds{kind}``
latency histogram, ``runtime.pool.restarts`` counter. Worker-side rack
cache counters (``runtime.rack_builds{mode}``) ride back inside each
task's registry dump where the caller merges state.
"""

from __future__ import annotations

import atexit
import multiprocessing
from multiprocessing import connection as mp_connection
import os
import pickle
import queue as queue_mod
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.exceptions import WorkerPoolError
from repro.obs import get_registry

#: how long a worker sleeps on an empty queue before re-checking that its
#: parent is still alive (seconds).
_ORPHAN_POLL_SECONDS = 5.0

#: how long the parent waits between liveness checks while collecting.
_COLLECT_POLL_SECONDS = 1.0


def _pool_context():
    """Prefer fork (cheap spawn, inherited imports) where available."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def default_worker_count(requested: Optional[int] = None) -> int:
    """Cap a requested worker count at the machine's core count."""
    cores = os.cpu_count() or 1
    if requested is None or requested < 1:
        return cores
    return max(1, min(requested, cores))


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------

_IN_WORKER = False


def in_worker() -> bool:
    """True inside a pool worker process (no nested pools there)."""
    return _IN_WORKER


def _worker_main(index: int, parent_pid: int, task_q, result_conn) -> None:
    global _IN_WORKER
    _IN_WORKER = True
    while True:
        try:
            item = task_q.get(timeout=_ORPHAN_POLL_SECONDS)
        except queue_mod.Empty:
            if os.getppid() != parent_pid:
                return  # orphaned by a killed parent
            continue
        if item is None:
            return
        job_id, fn, arg = item
        try:
            result = fn(arg)
            # Pickle eagerly so serialization failures surface as this
            # task's error instead of corrupting the result stream.
            payload = pickle.dumps((True, result))
        except BaseException as exc:  # noqa: BLE001 — workers must survive
            payload = pickle.dumps((False, (
                type(exc).__name__, str(exc), traceback.format_exc(),
            )))
        try:
            result_conn.send_bytes(pickle.dumps((job_id, payload)))
        except (BrokenPipeError, OSError):
            return  # parent went away


@dataclass
class PoolCall:
    """One task of a dispatch wave."""

    fn: Callable
    arg: object
    #: tasks sharing an affinity key run on one worker, in FIFO order.
    affinity: Optional[str] = None
    #: explicit worker index (from :meth:`WorkerPool.plan`); overrides
    #: affinity and round-robin.
    worker: Optional[int] = None


class _RemoteTaskError(Exception):
    """Internal wrapper for a worker-side exception (re-raised typed)."""

    def __init__(self, name: str, message: str, trace: str):
        super().__init__(f"{name}: {message}")
        self.name = name
        self.message = message
        self.trace = trace


class WorkerPool:
    """A long-lived pool of worker processes with deterministic dispatch."""

    def __init__(self, max_workers: Optional[int] = None):
        self.max_workers = default_worker_count(max_workers)
        self._ctx = _pool_context()
        #: parent-side read end of each worker's private result pipe.
        self._result_conns: List[object] = []
        self._task_qs: List[object] = []
        self._procs: List[object] = []
        self._rr = 0
        self._next_job = 0
        self._affinity: Dict[str, int] = {}
        #: worker index -> artifact fingerprints already shipped there.
        self._shipped: Dict[int, Set[str]] = {}
        self._lock = threading.Lock()
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    @property
    def alive(self) -> bool:
        return not self._closed

    def _spawn(self, index: int) -> None:
        task_q = self._ctx.Queue()
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(index, os.getpid(), task_q, send_conn),
            name=f"repro-worker-{index}",
            daemon=True,
        )
        proc.start()
        # Drop the parent's copy of the write end so the pipe EOFs the
        # moment the worker dies.
        send_conn.close()
        if index < len(self._procs):
            self._close_conn(self._result_conns[index])
            self._result_conns[index] = recv_conn
            self._task_qs[index] = task_q
            self._procs[index] = proc
        else:
            self._result_conns.append(recv_conn)
            self._task_qs.append(task_q)
            self._procs.append(proc)
        self._shipped[index] = set()

    @staticmethod
    def _close_conn(conn) -> None:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def _ensure_workers(self) -> None:
        if self._closed:
            raise WorkerPoolError("worker pool is shut down")
        while len(self._procs) < self.max_workers:
            self._spawn(len(self._procs))
        for index, proc in enumerate(self._procs):
            if not proc.is_alive():
                get_registry().counter("runtime.pool.restarts").inc()
                self._spawn(index)
        get_registry().gauge("runtime.workers").set(len(self._procs))

    def shutdown(self) -> None:
        """Stop every worker; the pool cannot be used afterwards."""
        if self._closed:
            return
        self._closed = True
        for task_q in self._task_qs:
            try:
                task_q.put(None)
            except (OSError, ValueError):  # pragma: no cover
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
        for conn in self._result_conns:
            self._close_conn(conn)
        self._procs.clear()
        self._task_qs.clear()
        self._result_conns.clear()
        self._shipped.clear()
        get_registry().gauge("runtime.workers").set(0)

    # -- payload planning ----------------------------------------------------

    def plan(self, count: int,
             affinity: Optional[str] = None) -> List[int]:
        """Worker indices the next ``count`` tasks would land on.

        With ``affinity`` every slot is the pinned worker; otherwise the
        assignment is round-robin from the current cursor. Dispatch the
        planned calls with explicit ``worker=`` to make the plan binding.
        """
        with self._lock:
            self._ensure_workers()
            if affinity is not None:
                return [self._pin(affinity)] * count
            start = self._rr
            self._rr += count
            return [(start + i) % self.max_workers for i in range(count)]

    def _pin(self, affinity: str) -> int:
        """The worker an affinity key is (or becomes) pinned to."""
        pinned = self._affinity.get(affinity)
        if pinned is None:
            pinned = self._rr % self.max_workers
            self._rr += 1
            self._affinity[affinity] = pinned
        return pinned

    def needs_payload(self, worker: int, fingerprint: str) -> bool:
        """True when ``worker`` has not yet been shipped ``fingerprint``.

        Marks it shipped optimistically; on a worker restart the shipped
        set is cleared, and the worker-side cache raises a typed stale
        error the caller resolves by re-dispatching with the payload.
        """
        with self._lock:
            shipped = self._shipped.setdefault(worker, set())
            if fingerprint in shipped:
                return False
            shipped.add(fingerprint)
            return True

    # -- dispatch ------------------------------------------------------------

    def dispatch(self, calls: Sequence[PoolCall], *,
                 return_exceptions: bool = False,
                 timeout: Optional[float] = None) -> List[object]:
        """Run ``calls`` across the workers; results in submission order.

        Tasks with the same affinity key (or the same explicit worker)
        execute sequentially in submission order on one worker; the rest
        spread round-robin. With ``return_exceptions`` worker-side errors
        come back as :class:`WorkerPoolError` instances in the result
        slots instead of raising on the first failure.
        """
        if not calls:
            return []
        registry = get_registry()
        kind = calls[0].fn.__name__
        started = time.perf_counter()
        with self._lock:
            self._ensure_workers()
            jobs: Dict[int, int] = {}  # job id -> result slot
            for slot, call in enumerate(calls):
                if call.worker is not None:
                    index = call.worker % len(self._procs)
                elif call.affinity is not None:
                    index = self._pin(call.affinity)
                else:
                    index = self._rr % self.max_workers
                    self._rr += 1
                job_id = self._next_job
                self._next_job += 1
                jobs[job_id] = slot
                self._task_qs[index].put((job_id, call.fn, call.arg))
            registry.counter("runtime.tasks", kind=kind).inc(len(calls))
            results: List[object] = [None] * len(calls)
            outcomes = self._collect(jobs, results, timeout)
        registry.histogram(
            "runtime.dispatch.seconds", kind=kind
        ).observe(time.perf_counter() - started)
        if not return_exceptions:
            for outcome in outcomes:
                if isinstance(outcome, WorkerPoolError):
                    raise outcome
        return outcomes

    def _collect(self, jobs: Dict[int, int], results: List[object],
                 timeout: Optional[float]) -> List[object]:
        pending = set(jobs)
        deadline = None if timeout is None else time.monotonic() + timeout
        while pending:
            ready = mp_connection.wait(
                self._result_conns, timeout=_COLLECT_POLL_SECONDS
            )
            if not ready:
                if deadline is not None and time.monotonic() > deadline:
                    raise WorkerPoolError(
                        f"pool dispatch timed out with {len(pending)} "
                        "tasks outstanding"
                    ) from None
                continue
            for conn in ready:
                try:
                    job_id, payload = pickle.loads(conn.recv_bytes())
                except (EOFError, OSError):
                    # EOF: the worker died (possibly mid-message).
                    index = self._result_conns.index(conn)
                    raise WorkerPoolError(
                        f"worker {index} died mid-dispatch "
                        f"({len(pending)} tasks outstanding)"
                    ) from None
                if job_id not in jobs:  # pragma: no cover - stale result
                    continue
                pending.discard(job_id)
                ok, value = pickle.loads(payload)
                if ok:
                    results[jobs[job_id]] = value
                else:
                    name, message, trace = value
                    error = WorkerPoolError(
                        f"worker task failed: {name}: {message}"
                    )
                    error.remote_type = name
                    error.remote_trace = trace
                    results[jobs[job_id]] = error
        return results

    def call(self, fn: Callable, arg: object, *,
             affinity: Optional[str] = None) -> object:
        """Dispatch a single task and return its result (or raise)."""
        return self.dispatch([PoolCall(fn, arg, affinity=affinity)])[0]


# ---------------------------------------------------------------------------
# process-wide shared pool
# ---------------------------------------------------------------------------

_shared_pool: Optional[WorkerPool] = None


def get_pool(max_workers: Optional[int] = None) -> WorkerPool:
    """The process-wide persistent pool (created on first use).

    ``max_workers`` only grows the pool (capped at the core count);
    an existing larger pool is reused as-is. Raises inside a pool worker
    — nested pools are forbidden, callers should run serially there.
    """
    global _shared_pool
    if in_worker():
        raise WorkerPoolError(
            "nested worker pools are not allowed inside a pool worker"
        )
    if _shared_pool is None or not _shared_pool.alive:
        _shared_pool = WorkerPool(max_workers)
    elif max_workers is not None:
        wanted = default_worker_count(max_workers)
        if wanted > _shared_pool.max_workers:
            _shared_pool.max_workers = wanted
    return _shared_pool


def shutdown_pool() -> None:
    """Tear down the shared pool (tests; atexit)."""
    global _shared_pool
    if _shared_pool is not None:
        _shared_pool.shutdown()
        _shared_pool = None


atexit.register(shutdown_pool)

__all__ = [
    "PoolCall",
    "WorkerPool",
    "default_worker_count",
    "get_pool",
    "in_worker",
    "shutdown_pool",
]
