"""Shared-memory transport for columnar numpy payloads.

The persistent worker runtime moves :class:`~repro.sim.columns.PacketColumns`
inputs to workers through one ``multiprocessing.shared_memory`` segment per
dispatch instead of pickling the arrays into the task payload: the parent
packs the arrays once (:meth:`ShmArrays.pack`), the picklable descriptor —
segment name plus per-array dtype/shape/offset — rides in the task, and the
worker attaches zero-copy views (:meth:`ShmArrays.attach`). The parent
unlinks the segment after the dispatch wave completes.

Fallback rules: when the platform has no usable shared memory (the
``SharedMemory`` constructor raising at pack time), or when the payload
is too small for a segment to beat a pickle (``shm_open`` + ``mmap`` +
unlink cost milliseconds; below :data:`SHM_MIN_BYTES` the copy is
cheaper than the mapping), the payload degrades to an in-band pickle of
the same arrays — workers never need to know which transport carried
the bytes (:meth:`ShmArrays.arrays` hides it).

Observability: ``runtime.shm.bytes`` (gauge — bytes currently sitting in
live segments) and ``runtime.shm.segments`` / ``runtime.shm.fallbacks``
counters, all on the parent registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs import get_registry

try:  # pragma: no cover - exercised indirectly; import always works on 3.8+
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - ancient/exotic platform
    _shm = None

#: payloads smaller than this ride inline — a shared segment costs a
#: few syscall round trips (create, attach, unlink) that only amortise
#: over large columns.
SHM_MIN_BYTES = 64 * 1024


def _align(offset: int, alignment: int = 64) -> int:
    return (offset + alignment - 1) // alignment * alignment


def _suppress_tracking(open_segment):
    """Run ``open_segment()`` without resource_tracker registration."""
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover - exotic platform
        return open_segment()
    original = resource_tracker.register

    def _register(name, rtype):
        if rtype != "shared_memory":
            original(name, rtype)

    resource_tracker.register = _register
    try:
        return open_segment()
    finally:
        resource_tracker.register = original


@dataclass
class ShmArrays:
    """A picklable descriptor for a dict of numpy arrays.

    Exactly one of ``segment``/``inline`` carries the bytes: ``segment``
    names a ``SharedMemory`` block (zero-copy attach), ``inline`` is the
    pickle fallback. ``fields`` stores ``(key, dtype-str, shape, offset)``
    per array, in pack order.
    """

    fields: Tuple[Tuple[str, str, Tuple[int, ...], int], ...]
    total_bytes: int
    segment: Optional[str] = None
    inline: Optional[bytes] = None
    #: parent-side handle, never pickled to workers (see __getstate__).
    _owner: object = field(default=None, repr=False, compare=False)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_owner"] = None
        return state

    # -- parent side --------------------------------------------------------

    @classmethod
    def pack(cls, arrays: Dict[str, np.ndarray], *,
             min_bytes: int = SHM_MIN_BYTES) -> "ShmArrays":
        """Copy ``arrays`` into one shared segment (or the inline fallback)."""
        fields: List[Tuple[str, str, Tuple[int, ...], int]] = []
        offset = 0
        contiguous = {
            key: np.ascontiguousarray(arr) for key, arr in arrays.items()
        }
        for key, arr in contiguous.items():
            offset = _align(offset)
            fields.append((key, arr.dtype.str, tuple(arr.shape), offset))
            offset += arr.nbytes
        total = max(offset, 1)
        registry = get_registry()
        if _shm is None or total < min_bytes:
            segment = None
        else:
            try:
                segment = _shm.SharedMemory(create=True, size=total)
            except (OSError, ValueError):
                segment = None
        if segment is None:
            reason = "small" if total < min_bytes else "platform"
            registry.counter("runtime.shm.fallbacks", reason=reason).inc()
            payload = bytearray(total)
            for (key, dtype, shape, off), arr in zip(
                fields, contiguous.values()
            ):
                payload[off:off + arr.nbytes] = arr.tobytes()
            return cls(fields=tuple(fields), total_bytes=total,
                       inline=bytes(payload))
        for (key, dtype, shape, off), arr in zip(
            fields, contiguous.values()
        ):
            view = np.ndarray(shape, dtype=dtype,
                              buffer=segment.buf, offset=off)
            view[...] = arr
        registry.counter("runtime.shm.segments").inc()
        registry.gauge("runtime.shm.bytes").inc(total)
        return cls(fields=tuple(fields), total_bytes=total,
                   segment=segment.name, _owner=segment)

    def release(self) -> None:
        """Parent-side teardown: close and unlink the live segment."""
        owner = self._owner
        if owner is None:
            return
        self._owner = None
        get_registry().gauge("runtime.shm.bytes").dec(self.total_bytes)
        try:
            owner.close()
            owner.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover - racy OS
            pass

    # -- worker side --------------------------------------------------------

    def attach(self) -> Tuple[Dict[str, np.ndarray], Optional[object]]:
        """Open the segment and return ``(arrays, handle)``.

        The arrays are zero-copy views over the shared buffer; the caller
        must keep ``handle`` alive while using them and pass it to
        :meth:`detach` afterwards. The inline fallback returns copies and a
        ``None`` handle.
        """
        if self.segment is None:
            buffer = self.inline or b""
            handle = None
        else:
            # The parent owns the segment's lifecycle. Attaching normally
            # registers the name with the (fork-shared) resource tracker a
            # second time, which the parent's unlink then double-removes —
            # so suppress registration for the duration of the open.
            handle = _suppress_tracking(
                lambda: _shm.SharedMemory(name=self.segment)
            )
            buffer = handle.buf
        arrays = {
            key: np.ndarray(shape, dtype=dtype, buffer=buffer, offset=off)
            for key, dtype, shape, off in self.fields
        }
        return arrays, handle

    @staticmethod
    def detach(handle: Optional[object]) -> None:
        """Worker-side teardown for a handle returned by :meth:`attach`."""
        if handle is not None:
            try:
                handle.close()
            except OSError:  # pragma: no cover - racy OS
                pass

    def arrays(self) -> Dict[str, np.ndarray]:
        """Attach, copy out, and detach — for callers that want owned
        arrays rather than views (the descriptor may be released by the
        parent as soon as the dispatch completes)."""
        views, handle = self.attach()
        owned = {key: np.array(view) for key, view in views.items()}
        ShmArrays.detach(handle)
        return owned


__all__ = ["ShmArrays"]
