"""Persistent dataplane worker runtime.

One process-wide :class:`WorkerPool` shared by every parallel caller
(traffic shards, experiment sweeps, chaos/lifecycle replicas, the serve
daemon), with worker-side warm-rack caching keyed by artifact fingerprint
and zero-copy shared-memory transport for columnar payloads.
"""

from repro.runtime.pool import (
    PoolCall,
    WorkerPool,
    default_worker_count,
    get_pool,
    in_worker,
    shutdown_pool,
)
from repro.runtime.rackcache import (
    ArtifactBundle,
    PooledShardTask,
    SessionTask,
    StaleArtifactsError,
    bundle_fingerprint,
    rack_for,
    run_traffic_shard,
    session_call,
)
from repro.runtime.shm import ShmArrays

__all__ = [
    "ArtifactBundle",
    "PoolCall",
    "PooledShardTask",
    "SessionTask",
    "ShmArrays",
    "StaleArtifactsError",
    "WorkerPool",
    "bundle_fingerprint",
    "default_worker_count",
    "get_pool",
    "in_worker",
    "rack_for",
    "run_traffic_shard",
    "session_call",
    "shutdown_pool",
]
