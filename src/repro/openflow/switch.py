"""OpenFlow switch runtime.

Packets traverse the fixed pipeline front-to-back (a table can ``goto`` a
later table only). VLAN vid carries the chain coordinate in place of NSH:
the high bits hold the SPI and the low bits the SI (§5.3) — "specifically,
the 12-bit vid field as SPI-SI to demultiplex packets for different
subgroups".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import OpenFlowError
from repro.hw.openflow import OpenFlowSwitchModel
from repro.net.packet import Packet
from repro.openflow.tables import FlowRule, FlowTable

#: vid split: 6 bits of SPI, 6 bits of SI.
SPI_BITS = 6
SI_BITS = 6


def encode_vid(spi: int, si: int) -> int:
    """Pack (SPI, SI) into a 12-bit VLAN vid."""
    if not 0 <= spi < (1 << SPI_BITS):
        raise OpenFlowError(
            f"SPI {spi} does not fit the {SPI_BITS}-bit VLAN encoding — "
            f"too many chains/paths for an OpenFlow deployment"
        )
    if not 0 <= si < (1 << SI_BITS):
        raise OpenFlowError(f"SI {si} does not fit {SI_BITS} bits")
    return (spi << SI_BITS) | si


def decode_vid(vid: int) -> Tuple[int, int]:
    """Unpack a VLAN vid into (SPI, SI)."""
    if not 0 <= vid < 4096:
        raise OpenFlowError(f"not a 12-bit vid: {vid}")
    return vid >> SI_BITS, vid & ((1 << SI_BITS) - 1)


@dataclass
class OFResult:
    """Outcome of one pipeline traversal."""

    packet: Packet
    output_port: Optional[int] = None
    dropped: bool = False


class OpenFlowRuntime:
    """Executable fixed-pipeline switch built from a hardware model."""

    def __init__(self, model: OpenFlowSwitchModel):
        self.model = model
        self.tables: List[FlowTable] = [
            FlowTable(table_id=spec.index, name=spec.name,
                      max_rules=spec.max_rules)
            for spec in model.tables
        ]
        self.rx = 0
        self.tx = 0
        self.drops = 0
        #: When set (columnar probe), every rule match appends
        #: ``(rule, len(packet) at match time)`` so the probe can undo the
        #: counters :meth:`FlowTable.lookup` charged and replay them
        #: arithmetically across a whole column.
        self._match_trace: Optional[List[Tuple[FlowRule, int]]] = None

    def table(self, table_id: int) -> FlowTable:
        for table in self.tables:
            if table.table_id == table_id:
                return table
        raise OpenFlowError(f"no table id {table_id}")

    def install(self, table_id: int, rule: FlowRule) -> None:
        self.table(table_id).add(rule)

    def install_all(self, rules: List[Tuple[int, FlowRule]]) -> None:
        for table_id, rule in rules:
            self.install(table_id, rule)

    def process(self, packet: Packet) -> OFResult:
        """Run one packet through the pipeline, honoring goto ordering."""
        self.rx += 1
        table_index = 0
        output_port: Optional[int] = None
        while table_index < len(self.tables):
            table = self.tables[table_index]
            rule = table.lookup(packet)
            next_index = table_index + 1
            if rule is not None:
                if self._match_trace is not None:
                    # packet length is still the match-time length here —
                    # header-mutating actions run below
                    self._match_trace.append((rule, len(packet)))
                stop = False
                for action in rule.actions:
                    kind = action[0]
                    if kind == "drop":
                        self.drops += 1
                        return OFResult(packet=packet, dropped=True)
                    if kind == "output":
                        output_port = int(action[1])
                        stop = True
                    elif kind == "set_vlan":
                        vlan = packet.vlan
                        if vlan is None:
                            packet.push_vlan(int(action[1]))
                        else:
                            vlan.vid = int(action[1])
                            packet.commit()
                    elif kind == "push_vlan":
                        packet.push_vlan(int(action[1]))
                    elif kind == "pop_vlan":
                        packet.pop_vlan()
                    elif kind == "count":
                        pass  # counters updated in FlowRule.lookup
                    elif kind == "goto":
                        target = int(action[1])
                        if target <= table.table_id:
                            raise OpenFlowError(
                                "goto must move forward in the fixed "
                                f"pipeline (from {table.table_id} to {target})"
                            )
                        next_index = self._index_of(target)
                if stop:
                    break
            table_index = next_index
        self.tx += 1
        return OFResult(packet=packet, output_port=output_port)

    def process_batch(self, packets: List[Packet]) -> List[OFResult]:
        """Run a batch through the pipeline, one result per input.

        Rule matching and per-rule counters are inherently per packet
        (tables may match 5-tuple fields); the batch form exists so callers
        cross the runtime boundary once per batch.
        """
        process = self.process
        return [process(packet) for packet in packets]

    def _index_of(self, table_id: int) -> int:
        for index, table in enumerate(self.tables):
            if table.table_id == table_id:
                return index
        raise OpenFlowError(f"goto references unknown table {table_id}")
