"""OpenFlow flow tables: priority-ordered match/action rules."""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import OpenFlowError
from repro.net.packet import Packet


@dataclass
class FlowRule:
    """One flow rule: match fields + action list.

    Match fields: ``vlan_vid``, ``src_ip``/``dst_ip`` (CIDR), ``src_port``,
    ``dst_port``, ``proto``. Actions: ``("drop",)``, ``("output", port)``,
    ``("set_vlan", vid)``, ``("push_vlan", vid)``, ``("pop_vlan",)``,
    ``("count",)``, ``("goto", table_id)``.
    """

    priority: int = 100
    match: Dict[str, object] = field(default_factory=dict)
    actions: List[tuple] = field(default_factory=list)
    packets: int = 0
    bytes: int = 0

    def matches(self, packet: Packet) -> bool:
        m = self.match
        if "vlan_vid" in m:
            vlan = packet.vlan
            if vlan is None or vlan.vid != m["vlan_vid"]:
                return False
        five = packet.five_tuple()
        if five is None:
            return not any(
                k in m for k in
                ("src_ip", "dst_ip", "src_port", "dst_port", "proto")
            )
        src, dst, sport, dport, proto = five
        if "src_ip" in m and ipaddress.ip_address(src) not in \
                ipaddress.ip_network(str(m["src_ip"]), strict=False):
            return False
        if "dst_ip" in m and ipaddress.ip_address(dst) not in \
                ipaddress.ip_network(str(m["dst_ip"]), strict=False):
            return False
        if "src_port" in m and sport != m["src_port"]:
            return False
        if "dst_port" in m and dport != m["dst_port"]:
            return False
        if "proto" in m and proto != m["proto"]:
            return False
        return True

    def render(self, table_id: int) -> str:
        """ovs-ofctl-style text rendering."""
        match_s = ",".join(f"{k}={v}" for k, v in sorted(self.match.items()))
        actions_s = ",".join(
            ":".join(str(part) for part in action) for action in self.actions
        )
        return (f"table={table_id},priority={self.priority},{match_s} "
                f"actions={actions_s}")


@dataclass
class FlowTable:
    """One pipeline table with a capacity limit (fixed-function ASIC)."""

    table_id: int
    name: str
    max_rules: int = 2048
    rules: List[FlowRule] = field(default_factory=list)

    def add(self, rule: FlowRule) -> None:
        if len(self.rules) >= self.max_rules:
            raise OpenFlowError(
                f"table {self.name} full ({self.max_rules} rules)"
            )
        self.rules.append(rule)
        self.rules.sort(key=lambda r: -r.priority)

    def lookup(self, packet: Packet) -> Optional[FlowRule]:
        for rule in self.rules:
            if rule.matches(packet):
                rule.packets += 1
                rule.bytes += len(packet)
                return rule
        return None
