"""OpenFlow switch substrate (§5.3).

A fixed-table-order match/action pipeline: Lemur can offload header-only
NFs (ACL, Tunnel/Detunnel, IPv4Fwd, Monitor) to it, and encodes SPI/SI in
the 12-bit VLAN vid because OF switches lack NSH support.
"""

from repro.openflow.tables import FlowRule, FlowTable
from repro.openflow.switch import OpenFlowRuntime, encode_vid, decode_vid

__all__ = [
    "FlowRule",
    "FlowTable",
    "OpenFlowRuntime",
    "encode_vid",
    "decode_vid",
]
