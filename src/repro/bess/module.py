"""Module framework: the BESS dataflow abstraction.

Modules process packets and emit them on output gates; gates connect to
downstream modules' input gates. A :class:`Pipeline` owns the module graph
and pushes packets through it (run-to-completion, as BESS does within one
core's schedule slot).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.exceptions import DataplaneError
from repro.net.packet import Packet
from repro.profiles.defaults import NFProfile, ProfileDatabase


@dataclass
class PacketBatch:
    """A batch of packets (BESS processes packets in batches)."""

    packets: List[Packet] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.packets)

    def __iter__(self):
        return iter(self.packets)


class Module:
    """Base dataflow module.

    Subclasses implement :meth:`process`, returning ``(ogate, packet)``
    pairs (an empty list drops the packet). Cycle accounting happens in
    :meth:`account`: each processed packet is charged the module's profiled
    cost, sampled within the profile's variance band so run-to-run wobble
    matches Table 4.
    """

    nf_class: Optional[str] = None

    #: Whether the columnar dataplane may *probe* this module: run one
    #: representative clone through it and replay the observed effect across
    #: a whole column of byte-identical packets. Safe only when
    #: :meth:`process` is replayable — identical input bytes/metadata always
    #: produce identical output, and module state depends on the set of
    #: distinct inputs seen, never on the call count (so stateful NFs like
    #: NAT/LB/Monitor and per-packet counters like UrlFilter stay False and
    #: take the scalar fallback).
    vector_safe: bool = False

    def __init__(
        self,
        name: str,
        params: Optional[dict] = None,
        database: Optional[ProfileDatabase] = None,
        numa_same: bool = False,
        seed: object = 0,
    ):
        self.name = name
        self.params = params or {}
        self.database = database
        self.numa_same = numa_same
        self._rng = random.Random(f"{seed}/{name}")
        self._ogates: Dict[int, Tuple["Module", int]] = {}
        self.rx_packets = 0
        self.tx_packets = 0
        self.dropped_packets = 0
        self.cycles_charged = 0
        #: Memoized (database, (low, worst)) sampling bounds — the profiled
        #: cost is a pure function of (nf_class, params, numa_same), so it is
        #: resolved once and reused for every packet.
        self._cost_cache: Optional[Tuple[ProfileDatabase, Tuple[float, float]]] = None

    # -- wiring -------------------------------------------------------------

    def connect(self, downstream: "Module", ogate: int = 0, igate: int = 0
                ) -> "Module":
        """Wire an output gate to a downstream module; returns downstream
        so calls chain like a BESS script (a -> b -> c)."""
        if ogate in self._ogates:
            raise DataplaneError(
                f"{self.name}: output gate {ogate} already connected"
            )
        self._ogates[ogate] = (downstream, igate)
        return downstream

    def downstream(self, ogate: int = 0) -> Optional["Module"]:
        entry = self._ogates.get(ogate)
        return entry[0] if entry else None

    # -- processing -----------------------------------------------------------

    def process(self, packet: Packet) -> List[Tuple[int, Packet]]:
        """Transform one packet; default is a pass-through on gate 0."""
        return [(0, packet)]

    def _cost_bounds(self) -> Tuple[float, float]:
        """The (low, worst) uniform-sampling band for this module's cost."""
        cache = self._cost_cache
        if cache is not None and cache[0] is self.database:
            return cache[1]
        profile = self.database.get(self.nf_class)
        worst = profile.cost(self.params, numa_same=self.numa_same)
        mean = worst / (1.0 + profile.variance)
        bounds = (mean * (1 - profile.variance), worst)
        self._cost_cache = (self.database, bounds)
        return bounds

    def account(self, packet: Packet, scale: float = 1.0) -> None:
        """Charge this module's per-packet cycle cost to the packet."""
        if self.database is None or self.nf_class is None:
            return
        low, worst = self._cost_bounds()
        sampled = self._rng.uniform(low, worst)
        charged = int(sampled * scale)
        packet.metadata.cycles_consumed += charged
        self.cycles_charged += charged

    def receive(self, packet: Packet) -> List[Tuple[int, Packet]]:
        """Bookkeeping wrapper around :meth:`process`."""
        self.rx_packets += 1
        self.account(packet)
        outputs = self.process(packet)
        live = [
            (gate, pkt) for gate, pkt in outputs if not pkt.metadata.drop_flag
        ]
        self.dropped_packets += len(outputs) - len(live)
        if not outputs:
            self.dropped_packets += 1
        self.tx_packets += len(live)
        return live

    def process_batch(self, packets: List[Packet]) -> List[List[Tuple[int, Packet]]]:
        """Transform a batch; returns one output list per input packet.

        The default preserves serial semantics exactly (per-packet
        :meth:`process` in arrival order). Stateless modules may override it
        to hoist per-batch work — overrides must keep the per-packet output
        lists identical to serial processing.
        """
        process = self.process
        return [process(packet) for packet in packets]

    def receive_batch(self, packets: List[Packet]) -> List[Tuple[int, Packet]]:
        """Batched :meth:`receive` with per-batch aggregated bookkeeping.

        Behaviourally identical to calling :meth:`receive` on each packet in
        order: cycle accounting stays interleaved with processing per packet
        (stateful modules like Dedup scale their charge by state that the
        previous packet just updated), so the module's RNG stream and state
        evolve exactly as in the serial path.
        """
        self.rx_packets += len(packets)
        if self.database is not None and self.nf_class is not None:
            account = self.account
            process = self.process
            out_lists = []
            for packet in packets:
                account(packet)
                out_lists.append(process(packet))
        else:
            # No cycle accounting — batch-amortized processing is safe.
            out_lists = self.process_batch(packets)
        live: List[Tuple[int, Packet]] = []
        dropped = 0
        for outputs in out_lists:
            if not outputs:
                dropped += 1
                continue
            for gate_pkt in outputs:
                if gate_pkt[1].metadata.drop_flag:
                    dropped += 1
                else:
                    live.append(gate_pkt)
        self.dropped_packets += dropped
        self.tx_packets += len(live)
        return live

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class Pipeline:
    """A module graph with named entry points.

    ``push()`` run-to-completion-processes a packet from an entry module
    and returns the packets that exited the graph (reached a module whose
    output gate is unconnected), along with the exit module.
    """

    def __init__(self, name: str = "pipeline"):
        self.name = name
        self.modules: Dict[str, Module] = {}
        self.entries: Dict[str, Module] = {}

    def add(self, module: Module, entry: bool = False) -> Module:
        if module.name in self.modules:
            raise DataplaneError(f"duplicate module name {module.name!r}")
        self.modules[module.name] = module
        if entry:
            self.entries[module.name] = module
        return module

    def module(self, name: str) -> Module:
        module = self.modules.get(name)
        if module is None:
            raise DataplaneError(f"no module named {name!r} in {self.name}")
        return module

    def push(
        self, packet: Packet, entry: Optional[str] = None
    ) -> List[Tuple[Module, Packet]]:
        """Process a packet to completion; returns (exit module, packet)."""
        if entry is None:
            if len(self.entries) != 1:
                raise DataplaneError(
                    f"{self.name}: specify an entry (have "
                    f"{sorted(self.entries)})"
                )
            start = next(iter(self.entries.values()))
        else:
            start = self.module(entry)
        exits: List[Tuple[Module, Packet]] = []
        work: List[Tuple[Module, Packet]] = [(start, packet)]
        hops = 0
        max_hops = 10_000
        while work:
            module, pkt = work.pop()
            hops += 1
            if hops > max_hops:
                raise DataplaneError(
                    f"{self.name}: packet exceeded {max_hops} hops (loop?)"
                )
            for gate, out in module.receive(pkt):
                nxt = module.downstream(gate)
                if nxt is None:
                    exits.append((module, out))
                else:
                    work.append((nxt, out))
        return exits

    def push_batch(
        self, batch: Iterable[Packet], entry: Optional[str] = None
    ) -> List[Tuple[Module, Packet]]:
        """Stage-wise batched traversal of the module graph.

        Packets advance through the graph a *module at a time* instead of a
        packet at a time: each module receives every packet queued at it in
        one :meth:`Module.receive_batch` call, preserving per-module arrival
        order (and therefore per-module RNG streams and state) exactly as the
        serial :meth:`push` loop would.
        """
        packets = list(batch)
        if not packets:
            return []
        if entry is None:
            if len(self.entries) != 1:
                raise DataplaneError(
                    f"{self.name}: specify an entry (have "
                    f"{sorted(self.entries)})"
                )
            start = next(iter(self.entries.values()))
        else:
            start = self.module(entry)
        exits: List[Tuple[Module, Packet]] = []
        work: List[Tuple[Module, List[Packet]]] = [(start, packets)]
        steps = 0
        max_steps = 10_000 * len(packets)
        while work:
            module, pkts = work.pop()
            steps += len(pkts)
            if steps > max_steps:
                raise DataplaneError(
                    f"{self.name}: batch exceeded {max_steps} hops (loop?)"
                )
            grouped: Dict[int, List[Packet]] = {}
            order: List[int] = []
            for gate, out in module.receive_batch(pkts):
                bucket = grouped.get(gate)
                if bucket is None:
                    bucket = grouped[gate] = []
                    order.append(gate)
                bucket.append(out)
            for gate in reversed(order):
                nxt = module.downstream(gate)
                if nxt is None:
                    exits.extend((module, p) for p in grouped[gate])
                else:
                    work.append((nxt, grouped[gate]))
        return exits

    def stats(self) -> Dict[str, Dict[str, int]]:
        return {
            name: {
                "rx": m.rx_packets,
                "tx": m.tx_packets,
                "dropped": m.dropped_packets,
                "cycles": m.cycles_charged,
            }
            for name, m in self.modules.items()
        }
