"""Shared pipeline modules the meta-compiler injects (§A.1.2).

Every generated BESS pipeline begins with ``PortInc -> NSHdecap ->
SubgroupDemux`` and ends with ``NSHencap -> PortOut``: packets arrive from
the ToR tagged with NSH, are decapsulated and steered to the right
run-to-completion subgroup (and subgroup *instance* when replicated), and
are re-tagged with the next hop's SPI/SI before returning to the switch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bess.module import Module
from repro.exceptions import DataplaneError
from repro.net.packet import Packet
from repro.profiles.defaults import DEMUX_LB_CYCLES, NSH_ENCAP_DECAP_CYCLES


class PortInc(Module):
    """Pulls packets from a NIC port in poll mode (entry point)."""

    vector_safe = True

    def process(self, packet: Packet):
        packet.metadata.ingress_port = int(self.params.get("port", 0))
        return [(0, packet)]


class PortOut(Module):
    """Pushes packets to the NIC (exit point); collects them for the
    testbed simulator."""

    vector_safe = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.emitted: List[Packet] = []

    def process(self, packet: Packet):
        self.emitted.append(packet)
        return []  # leaves the pipeline

    def drain(self) -> List[Packet]:
        out, self.emitted = self.emitted, []
        return out


class NSHDecap(Module):
    """Strips NSH and records SPI/SI in metadata (custom module, §A.1.2)."""

    vector_safe = True

    def process(self, packet: Packet):
        packet.pop_nsh()
        packet.metadata.cycles_consumed += NSH_ENCAP_DECAP_CYCLES // 2
        self.cycles_charged += NSH_ENCAP_DECAP_CYCLES // 2
        return [(0, packet)]


class NSHEncap(Module):
    """Re-inserts NSH with the next (SPI, SI) so the downstream platform
    knows which NF comes next (§A.1.2).

    ``spi``/``si`` parameters set fixed values; when absent, the values
    already in packet metadata are used (set by the subgroup's exit code).
    """

    vector_safe = True

    def process(self, packet: Packet):
        spi = self.params.get("spi", packet.metadata.spi)
        si = self.params.get("si", packet.metadata.si)
        if spi is None or si is None:
            raise DataplaneError(
                f"{self.name}: no SPI/SI available for NSH encap"
            )
        packet.push_nsh(int(spi), int(si))
        packet.metadata.cycles_consumed += NSH_ENCAP_DECAP_CYCLES // 2
        self.cycles_charged += NSH_ENCAP_DECAP_CYCLES // 2
        return [(0, packet)]


class SubgroupDemux(Module):
    """Steers packets to run-to-completion subgroups by (SPI, SI), and to a
    specific instance when the subgroup is replicated (§4.2).

    The demux runs on its own core; instance selection is a per-flow hash
    (so stateful members never see a flow split across instances) and costs
    ~:data:`DEMUX_LB_CYCLES` cycles when fanning out (§5.3).

    Output gates are allocated with :meth:`register`, one per (spi, si)
    target, with ``instances`` consecutive gates for replicated subgroups.
    """

    vector_safe = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._routes: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._next_gate = 0

    def register(self, spi: int, si: int, instances: int = 1) -> List[int]:
        """Allocate gates for one subgroup; returns the gate numbers."""
        if instances < 1:
            raise DataplaneError("subgroup needs at least one instance")
        if (spi, si) in self._routes:
            raise DataplaneError(
                f"{self.name}: (spi={spi}, si={si}) already registered"
            )
        gates = list(range(self._next_gate, self._next_gate + instances))
        self._routes[(spi, si)] = (self._next_gate, instances)
        self._next_gate += instances
        return gates

    def process(self, packet: Packet):
        spi, si = packet.metadata.spi, packet.metadata.si
        if spi is None or si is None:
            packet.metadata.drop_flag = True
            return []
        route = self._routes.get((spi, si))
        if route is None:
            packet.metadata.drop_flag = True
            return []
        base_gate, instances = route
        if instances == 1:
            return [(base_gate, packet)]
        packet.metadata.cycles_consumed += DEMUX_LB_CYCLES
        self.cycles_charged += DEMUX_LB_CYCLES
        digest = packet.flow_digest()
        return [(base_gate + digest % instances, packet)]


class SubgroupMux(Module):
    """Funnels replicated instances back into one stream before encap."""

    vector_safe = True

    def process(self, packet: Packet):
        return [(0, packet)]


class SIUpdate(Module):
    """Sets the next service path coordinates after a subgroup completes
    (§4.1: "the meta-compiler must insert code to increment the SI value";
    with subgroup concatenation the update happens once per service path).

    ``next_map`` maps the *incoming* (spi, si) — recorded at NSH decap —
    to the outgoing (spi, si), supporting subgroups shared by several
    service paths. Fixed ``next_spi``/``next_si`` params override; with
    neither, SI simply decrements.
    """

    vector_safe = True

    def process(self, packet: Packet):
        next_map = self.params.get("next_map")
        if next_map is not None:
            key = (packet.metadata.spi, packet.metadata.si)
            nxt = next_map.get(key)
            if nxt is None:
                packet.metadata.drop_flag = True
                return []
            packet.metadata.spi, packet.metadata.si = int(nxt[0]), int(nxt[1])
            return [(0, packet)]
        next_spi = self.params.get("next_spi")
        next_si = self.params.get("next_si")
        if next_spi is not None:
            packet.metadata.spi = int(next_spi)
        if next_si is not None:
            packet.metadata.si = int(next_si)
        elif packet.metadata.si is not None:
            packet.metadata.si = max(0, packet.metadata.si - 1)
        return [(0, packet)]
