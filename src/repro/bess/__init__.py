"""BESS-like software dataplane simulator.

Stands in for the paper's DPDK/BESS servers. Two layers:

* **functional** — every NF is a real packet-processing module
  (:mod:`repro.bess.modules`): ACLs drop, NATs rewrite, Dedup eliminates
  redundancy, so generated routing can be validated end-to-end on packets;
* **performance** — per-packet cycle accounting plus a hierarchical
  per-core scheduler tree (:mod:`repro.bess.scheduler`) feed the
  cycle-budget throughput simulation (:mod:`repro.bess.perfsim`).
"""

from repro.bess.module import Module, Pipeline, PacketBatch
from repro.bess.modules import make_nf_module, MODULE_CLASSES
from repro.bess.nsh_modules import (
    NSHDecap,
    NSHEncap,
    PortInc,
    PortOut,
    SubgroupDemux,
)
from repro.bess.scheduler import (
    LeafTask,
    RateLimitNode,
    RoundRobinNode,
    SchedulerTree,
)
from repro.bess.perfsim import ServerPerfModel, SubgroupLoad
from repro.bess.runner import ServerRunner, SubgroupReport

__all__ = [
    "Module",
    "Pipeline",
    "PacketBatch",
    "make_nf_module",
    "MODULE_CLASSES",
    "PortInc",
    "PortOut",
    "NSHDecap",
    "NSHEncap",
    "SubgroupDemux",
    "SchedulerTree",
    "RoundRobinNode",
    "RateLimitNode",
    "LeafTask",
    "ServerPerfModel",
    "SubgroupLoad",
    "ServerRunner",
    "SubgroupReport",
]
