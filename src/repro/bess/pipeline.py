"""Instantiate an executable BESS pipeline from generated IR.

Builds the module graph the meta-compiler's script describes (§A.1):
``PortInc → NSHdecap → SubgroupDemux → [NF chain per subgroup instance] →
SIUpdate → NSHencap → PortOut`` and the per-core scheduler tree.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.bess.module import Pipeline
from repro.bess.modules import make_nf_module
from repro.bess.nsh_modules import (
    NSHDecap,
    NSHEncap,
    PortInc,
    PortOut,
    SIUpdate,
    SubgroupDemux,
)
from repro.bess.scheduler import LeafTask, SchedulerTree
from repro.exceptions import DataplaneError
from repro.metacompiler.bessgen import BessScriptIR
from repro.profiles.defaults import ProfileDatabase, default_profiles


def build_bess_pipeline(
    ir: BessScriptIR,
    profiles: Optional[ProfileDatabase] = None,
    seed: object = 0,
    freq_hz: float = 1.7e9,
) -> Tuple[Pipeline, PortInc, PortOut, SchedulerTree]:
    """Build the executable pipeline + scheduler for one server."""
    profiles = profiles or default_profiles()
    pipeline = Pipeline(name=f"bess@{ir.server}")

    port_inc = PortInc(name="port_inc")
    nsh_decap = NSHDecap(name="nsh_decap")
    demux = SubgroupDemux(name="demux")
    nsh_encap = NSHEncap(name="nsh_encap")
    port_out = PortOut(name="port_out")
    for module in (port_inc, nsh_decap, demux, nsh_encap, port_out):
        pipeline.add(module, entry=module is port_inc)
    port_inc.connect(nsh_decap)
    nsh_decap.connect(demux)
    nsh_encap.connect(port_out)

    scheduler = SchedulerTree(freq_hz=freq_hz)

    for sg in ir.subgroups:
        next_map = {
            (entry.spi, entry.si): (entry.next_spi, entry.next_si)
            for entry in sg.entries
        }
        instance_heads = []
        for instance in range(sg.instances):
            prev = None
            head = None
            for spec in sg.modules:
                module = make_nf_module(
                    spec.nf_class,
                    spec.params,
                    name=f"{spec.module_name}_i{instance}",
                    database=profiles,
                    seed=f"{seed}/{ir.server}/{sg.sg_id}/{instance}",
                )
                pipeline.add(module)
                if prev is not None:
                    prev.connect(module)
                else:
                    head = module
                prev = module
            si_update = SIUpdate(
                name=f"si_update_{sg.sg_id.replace('/', '_')}_i{instance}",
                params={"next_map": next_map},
            )
            pipeline.add(si_update)
            if prev is None:
                raise DataplaneError(f"subgroup {sg.sg_id} has no modules")
            prev.connect(si_update)
            si_update.connect(nsh_encap, igate=0)
            instance_heads.append(head)
            core = sg.cores[instance] if instance < len(sg.cores) else 0
            scheduler.assign(
                core,
                LeafTask(
                    name=f"{sg.sg_id}/i{instance}",
                    work_fn=lambda: 0,  # driven by the rack event loop
                ),
                rate_limit_mbps=sg.rate_limit_mbps,
            )

        for entry in sg.entries:
            gates = demux.register(entry.spi, entry.si, sg.instances)
            for gate, head in zip(gates, instance_heads):
                demux.connect(head, ogate=gate)

    return pipeline, port_inc, port_out, scheduler
