"""Time-stepped server execution: the scheduler tree driving real work.

:mod:`repro.bess.perfsim` answers "what rate *can* this server sustain"
analytically; this module *runs* the server: packets arrive in the demux
core's ingress queue, are steered to per-instance subgroup queues, and
each core's scheduler tree (round-robin over leaves, token-bucket rate
limiters for t_max, §A.1.3) spends its cycle budget per tick processing
batches through the functional module pipeline.

Used to validate the analytic model against an executing system and to
demonstrate scheduler behaviour (t_max enforcement, round-robin sharing of
a core between subgroups).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.bess.module import Module, Pipeline
from repro.bess.nsh_modules import PortOut
from repro.bess.scheduler import LeafTask, RateLimitNode, SchedulerTree
from repro.exceptions import DataplaneError
from repro.net.packet import Packet

#: BESS's default batch size.
BATCH_SIZE = 32


@dataclass
class SubgroupWorker:
    """One subgroup instance: an input queue + its module chain."""

    name: str
    head: Module
    queue: Deque[Packet] = field(default_factory=deque)
    processed: int = 0
    emitted_bits: int = 0
    max_queue: int = 1024
    drops: int = 0

    def enqueue(self, packet: Packet) -> None:
        if len(self.queue) >= self.max_queue:
            self.drops += 1
            return
        self.queue.append(packet)

    def work_batch(self) -> int:
        """Process up to one batch; returns cycles consumed (0 if idle)."""
        if not self.queue:
            return 0
        cycles = 0
        for _ in range(min(BATCH_SIZE, len(self.queue))):
            packet = self.queue.popleft()
            before = packet.metadata.cycles_consumed
            module: Optional[Module] = self.head
            current = packet
            delivered = True
            while module is not None:
                outs = module.receive(current)
                if not outs:
                    delivered = False
                    break
                _gate, current = outs[0]
                module = module.downstream(0)
            cycles += current.metadata.cycles_consumed - before
            if delivered:
                self.processed += 1
                self.emitted_bits += len(current) * 8
        return max(cycles, 1)


class ServerRunner:
    """Executes one server for a simulated duration.

    Construction wiring:

    * ``add_subgroup(name, modules, cores, rate_limit_mbps)`` — one worker
      per instance, each a :class:`LeafTask` on its own core (or sharing a
      core round-robin when cores collide);
    * ``run(offered, duration_us)`` — drives an arrival process (packets
      per subgroup, spread uniformly) and ticks every core's scheduler.

    The demux core's steering cost is charged implicitly by the arrival
    process (it is not the bottleneck in any of our scenarios).
    """

    def __init__(self, freq_hz: float = 1.7e9, tick_us: float = 50.0):
        if tick_us <= 0:
            raise DataplaneError("tick must be positive")
        self.freq_hz = freq_hz
        self.tick_us = tick_us
        self.scheduler = SchedulerTree(freq_hz=freq_hz)
        self.workers: Dict[str, List[SubgroupWorker]] = {}
        self._limiters: List[RateLimitNode] = []

    def add_subgroup(
        self,
        name: str,
        make_modules: Callable[[int], Module],
        cores: List[int],
        rate_limit_mbps: Optional[float] = None,
    ) -> None:
        """Register a subgroup: ``make_modules(i)`` builds instance i's
        module-chain head; instance i is scheduled on ``cores[i]``."""
        if name in self.workers:
            raise DataplaneError(f"duplicate subgroup {name!r}")
        instances: List[SubgroupWorker] = []
        for index, core in enumerate(cores):
            worker = SubgroupWorker(
                name=f"{name}/i{index}", head=make_modules(index)
            )
            instances.append(worker)
            if rate_limit_mbps is not None:
                limiter = RateLimitNode(
                    f"{worker.name}.limit", rate_limit_mbps,
                    burst_bits=rate_limit_mbps * 1000,  # ~1 ms of burst
                )
                leaf = LeafTask(
                    name=worker.name,
                    work_fn=_limited_work(worker, limiter),
                )
                limiter.add(leaf)
                self.scheduler.core(core).root.add(limiter)
                self._limiters.append(limiter)
            else:
                leaf = LeafTask(name=worker.name, work_fn=worker.work_batch)
                self.scheduler.core(core).root.add(leaf)
        self.workers[name] = instances

    def run(
        self,
        offered_pps: Dict[str, float],
        duration_us: float,
        packet_bytes: int = 1500,
        build_packet: Optional[Callable[[str, int], Packet]] = None,
    ) -> Dict[str, "SubgroupReport"]:
        """Drive arrivals and schedule work for ``duration_us``."""
        ticks = max(1, int(duration_us / self.tick_us))
        carry: Dict[str, float] = {name: 0.0 for name in offered_pps}
        sequence = 0
        for tick in range(ticks):
            now_us = tick * self.tick_us
            # arrivals, spread round-robin across instances
            for name, pps in offered_pps.items():
                instances = self.workers.get(name)
                if not instances:
                    raise DataplaneError(f"unknown subgroup {name!r}")
                carry[name] += pps * self.tick_us / 1e6
                count = int(carry[name])
                carry[name] -= count
                for i in range(count):
                    if build_packet is not None:
                        packet = build_packet(name, sequence)
                    else:
                        packet = Packet.build(
                            src_port=1024 + sequence % 40_000,
                            total_bytes=packet_bytes,
                        )
                    packet.metadata.timestamp_us = now_us
                    instances[sequence % len(instances)].enqueue(packet)
                    sequence += 1
            # token refill + one scheduling quantum per core; the budget
            # is cumulative (freq x elapsed minus cycles already spent),
            # so batch-granularity overshoot in one tick is paid back in
            # the next — long-run throughput respects the clock rate.
            for limiter in self._limiters:
                limiter.advance(self.tick_us)
            elapsed_us = (tick + 1) * self.tick_us
            allowed = int(self.freq_hz * elapsed_us / 1e6)
            for core in self.scheduler.cores.values():
                remaining = allowed - core.cycles_spent
                if remaining > 0:
                    core.run_quantum(max_cycles=remaining)

        reports: Dict[str, SubgroupReport] = {}
        for name, instances in self.workers.items():
            processed = sum(w.processed for w in instances)
            bits = sum(w.emitted_bits for w in instances)
            drops = sum(w.drops for w in instances)
            backlog = sum(len(w.queue) for w in instances)
            reports[name] = SubgroupReport(
                subgroup=name,
                processed=processed,
                dropped=drops,
                backlog=backlog,
                throughput_mbps=bits / duration_us,
                duration_us=duration_us,
            )
        return reports


def _limited_work(worker: SubgroupWorker, limiter: RateLimitNode
                  ) -> Callable[[], int]:
    """Wrap a worker so processed bits are debited from its token bucket
    (the scheduler skips the subtree while the bucket is in debt)."""

    def work() -> int:
        bits_before = worker.emitted_bits
        cycles = worker.work_batch()
        limiter.debit(worker.emitted_bits - bits_before)
        return cycles

    return work


@dataclass
class SubgroupReport:
    """Outcome of one subgroup over a :meth:`ServerRunner.run` window."""

    subgroup: str
    processed: int
    dropped: int
    backlog: int
    throughput_mbps: float
    duration_us: float

    @property
    def processed_pps(self) -> float:
        return self.processed / (self.duration_us / 1e6)
