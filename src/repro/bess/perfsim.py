"""Cycle-accounting performance model for BESS servers.

The Placer predicts throughput from worst-case, NUMA-different profiles
(§3.2); the real testbed usually does a bit better — subgroups land on the
NIC's socket, and NFs see lower cycle counts than the profiled worst case
(§5.2 "Predictions are conservative"). This model reproduces that: it
assigns subgroup cores to sockets (NIC socket first), samples effective
per-packet costs inside each profile's variance band, and water-fills NIC
capacity across chains.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hw.server import Server
from repro.profiles.defaults import (
    DEMUX_LB_CYCLES,
    NSH_ENCAP_DECAP_CYCLES,
    ProfileDatabase,
)
from repro.units import DEFAULT_PACKET_BITS


@dataclass
class SubgroupLoad:
    """One subgroup's demand on a server, as the perf model sees it.

    ``nf_costs`` lists (nf_class, params, traffic_fraction) so effective
    cycles can be re-sampled per run.
    """

    sg_id: str
    chain_name: str
    cores: int
    nf_costs: List[Tuple[str, Optional[dict], float]] = field(
        default_factory=list
    )
    numa_same: bool = False
    #: False under Metron-style ToR steering (no software demux LB cost).
    demux_penalty: bool = True

    def effective_cycles(self, profiles: ProfileDatabase,
                         rng: random.Random) -> float:
        """Sample this run's per-ingress-packet cycles."""
        total = float(NSH_ENCAP_DECAP_CYCLES)
        for nf_class, params, fraction in self.nf_costs:
            profile = profiles.get(nf_class)
            worst = profile.cost(params, numa_same=self.numa_same)
            mean = worst / (1.0 + profile.variance)
            total += fraction * rng.uniform(
                mean * (1.0 - profile.variance / 2), worst
            )
        if self.cores > 1 and self.demux_penalty:
            total += DEMUX_LB_CYCLES
        return total


class ServerPerfModel:
    """Per-server socket assignment + sampled subgroup capacities.

    ``cache_contention`` optionally models ResQ-style last-level-cache
    interference (§5.2 "Cache effects"): each subgroup's effective cycles
    inflate by ``cache_contention`` per co-resident subgroup on the
    server. The paper verified its packet queues are short enough that
    variability stays within ~3%, so the default is 0 (off); ~0.01
    reproduces the bounded interference ResQ reports for such setups.
    """

    def __init__(self, server: Server, profiles: ProfileDatabase,
                 seed: int = 23, cache_contention: float = 0.0):
        if not 0.0 <= cache_contention < 0.5:
            raise ValueError(
                f"implausible cache contention factor {cache_contention}"
            )
        self.server = server
        self.profiles = profiles
        self.cache_contention = cache_contention
        self._co_resident = 1
        self.rng = random.Random(f"{seed}/{server.name}")

    def assign_sockets(self, loads: Sequence[SubgroupLoad]) -> None:
        """Pack subgroup cores onto sockets, NIC socket first.

        Subgroups fully resident on the NIC's socket run NUMA-same —
        "If a subgroup is replicated on cores on the same socket as the
        NIC, our measured rates will be higher than predicted" (§5.2).
        """
        nic_socket = self.server.primary_nic().socket
        capacities = {s.index: s.cores for s in self.server.sockets}
        # the demux core lives on the NIC socket
        capacities[nic_socket] -= self.server.reserved_cores
        socket_order = [nic_socket] + [
            s.index for s in self.server.sockets if s.index != nic_socket
        ]
        for load in sorted(loads, key=lambda l: -l.cores):
            placed_same = False
            for socket in socket_order:
                if capacities[socket] >= load.cores:
                    capacities[socket] -= load.cores
                    placed_same = socket == nic_socket
                    break
            else:
                # split across sockets: definitely crosses NUMA
                remaining = load.cores
                for socket in socket_order:
                    take = min(capacities[socket], remaining)
                    capacities[socket] -= take
                    remaining -= take
                placed_same = False
            load.numa_same = placed_same
        self._co_resident = max(1, len(loads))

    def subgroup_capacity_mbps(
        self, load: SubgroupLoad,
        packet_bits: int = DEFAULT_PACKET_BITS,
    ) -> float:
        cycles = load.effective_cycles(self.profiles, self.rng)
        cycles *= 1.0 + self.cache_contention * (self._co_resident - 1)
        pps = load.cores * self.server.freq_hz / cycles
        return pps * packet_bits / 1e6


def waterfill_nic(
    demands: Dict[str, float],
    visits: Dict[str, float],
    capacity_mbps: float,
) -> Dict[str, float]:
    """Max-min fair scaling of chain rates onto a shared NIC.

    ``demands`` are the chains' unconstrained achievable rates;
    ``visits`` the per-chain NIC traversal multiplicity. Chains that do not
    touch this NIC pass through unchanged.
    """
    users = {c: v for c, v in visits.items() if v > 0 and c in demands}
    result = dict(demands)
    if not users:
        return result
    remaining = capacity_mbps
    active = dict(users)
    while active:
        total_weight = sum(active.values())
        share = remaining / total_weight
        satisfied = {
            c for c, v in active.items() if result[c] <= share + 1e-12
        }
        if satisfied:
            for c in satisfied:
                remaining -= result[c] * active[c]
                del active[c]
            continue
        for c in active:
            result[c] = share
        break
    return result
