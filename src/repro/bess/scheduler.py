"""Hierarchical per-core scheduler tree (§A.1.3).

BESS "separates the module graph from the scheduler tree, which is a
per-core tree of logical (interior nodes) or physical (leaf nodes)
schedulable entities akin to Linux tc". Interior nodes implement policies
(round-robin, rate limiting); leaves are run-to-completion subgroup tasks.
The meta-compiler's code generator builds one tree per allocated core and
uses rate-limit nodes to enforce t_max (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.exceptions import DataplaneError


@dataclass
class LeafTask:
    """A schedulable leaf: one subgroup instance's work queue.

    ``work_fn`` processes one batch and returns the cycles it consumed
    (0 = no pending work).
    """

    name: str
    work_fn: Callable[[], int]
    cycles_used: int = 0
    runs: int = 0

    def run(self) -> int:
        cycles = self.work_fn()
        if cycles > 0:
            self.cycles_used += cycles
            self.runs += 1
        return cycles


class SchedulerNode:
    """Base interior node."""

    def __init__(self, name: str):
        self.name = name
        self.children: List[object] = []

    def add(self, child) -> "SchedulerNode":
        self.children.append(child)
        return self

    def next_task(self) -> Optional[LeafTask]:
        raise NotImplementedError


class RoundRobinNode(SchedulerNode):
    """Fair rotation over children (BESS's default root policy)."""

    def __init__(self, name: str):
        super().__init__(name)
        self._cursor = 0

    def next_task(self) -> Optional[LeafTask]:
        if not self.children:
            return None
        for _ in range(len(self.children)):
            child = self.children[self._cursor]
            self._cursor = (self._cursor + 1) % len(self.children)
            task = child if isinstance(child, LeafTask) else child.next_task()
            if task is not None:
                return task
        return None


class RateLimitNode(SchedulerNode):
    """Token-bucket gate over a subtree — enforces t_max (§4.2).

    Tokens are bits; :meth:`advance` refills with simulated time. When the
    bucket is empty the subtree is skipped that round.
    """

    def __init__(self, name: str, rate_mbps: float,
                 burst_bits: float = 8e6):
        super().__init__(name)
        if rate_mbps <= 0:
            raise DataplaneError(f"{name}: rate must be positive")
        self.rate_mbps = rate_mbps
        self.burst_bits = burst_bits
        self._tokens = burst_bits
        self._inner = RoundRobinNode(f"{name}.rr")

    def add(self, child) -> "RateLimitNode":
        self._inner.add(child)
        self.children = self._inner.children
        return self

    def advance(self, dt_us: float) -> None:
        self._tokens = min(
            self.burst_bits, self._tokens + dt_us * self.rate_mbps
        )

    def consume(self, bits: float) -> bool:
        if self._tokens >= bits:
            self._tokens -= bits
            return True
        return False

    def debit(self, bits: float) -> None:
        """Post-hoc charge for work already done (batch granularity means
        the bucket may briefly go negative; refills pay the debt)."""
        self._tokens -= bits

    def next_task(self) -> Optional[LeafTask]:
        if self._tokens <= 0:
            return None
        return self._inner.next_task()


@dataclass
class CoreSchedule:
    """One core's tree + cycle budget accounting."""

    core_id: int
    root: SchedulerNode
    freq_hz: float = 1.7e9
    cycles_spent: int = 0

    def run_quantum(self, max_cycles: int) -> int:
        """Run tasks until the cycle budget for this quantum is exhausted
        or no task has pending work. Returns cycles actually spent."""
        spent = 0
        idle_rounds = 0
        while spent < max_cycles and idle_rounds < 2:
            task = self.root.next_task()
            if task is None:
                break
            used = task.run()
            if used == 0:
                idle_rounds += 1
                continue
            idle_rounds = 0
            spent += used
        self.cycles_spent += spent
        return spent


class SchedulerTree:
    """All cores of one server: core id -> schedule."""

    def __init__(self, freq_hz: float = 1.7e9):
        self.freq_hz = freq_hz
        self.cores: Dict[int, CoreSchedule] = {}

    def core(self, core_id: int) -> CoreSchedule:
        if core_id not in self.cores:
            self.cores[core_id] = CoreSchedule(
                core_id=core_id,
                root=RoundRobinNode(f"core{core_id}.root"),
                freq_hz=self.freq_hz,
            )
        return self.cores[core_id]

    def assign(self, core_id: int, leaf: LeafTask,
               rate_limit_mbps: Optional[float] = None) -> None:
        """Attach a subgroup task to a core, optionally under a limiter."""
        core = self.core(core_id)
        if rate_limit_mbps is not None:
            limiter = RateLimitNode(f"{leaf.name}.limit", rate_limit_mbps)
            limiter.add(leaf)
            core.root.add(limiter)
        else:
            core.root.add(leaf)

    def utilization(self, duration_s: float) -> Dict[int, float]:
        """Fraction of each core's cycle budget spent over a window."""
        budget = self.freq_hz * duration_s
        return {
            cid: min(1.0, core.cycles_spent / budget)
            for cid, core in self.cores.items()
        }
