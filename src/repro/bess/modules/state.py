"""Stateful accounting NFs: Monitor, Limiter, Dedup."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict

from repro.bess.module import Module
from repro.net.packet import Packet


@dataclass
class FlowStats:
    packets: int = 0
    bytes: int = 0
    first_seen_us: float = 0.0
    last_seen_us: float = 0.0


class MonitorModule(Module):
    """Per-flow statistics (Table 3): packet/byte counters per 5-tuple."""

    nf_class = "Monitor"
    # NOT vector_safe (inherits False): per-packet state evolution.

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.flows: Dict[tuple, FlowStats] = {}

    def process(self, packet: Packet):
        five = packet.five_tuple()
        if five is not None:
            stats = self.flows.get(five)
            now = packet.metadata.timestamp_us
            if stats is None:
                stats = FlowStats(first_seen_us=now)
                self.flows[five] = stats
            stats.packets += 1
            stats.bytes += len(packet)
            stats.last_seen_us = now
        packet.metadata.processed_by.append(self.name)
        return [(0, packet)]

    def top_flows(self, n: int = 10):
        """Heaviest flows by bytes (operator-facing stats API)."""
        ranked = sorted(
            self.flows.items(), key=lambda kv: -kv[1].bytes
        )
        return ranked[:n]


class LimiterModule(Module):
    """Token-bucket rate limiter (Table 3) — stateful, non-replicable.

    ``rate_mbps`` refills the bucket; ``burst_bytes`` bounds it. Packet
    timestamps (metadata.timestamp_us) drive refill, so the limiter is
    deterministic under simulated time. Lemur also uses rate limiting to
    enforce t_max at chain entry (§4.2 / §7).
    """

    nf_class = "Limiter"
    # NOT vector_safe (inherits False): per-packet state evolution.

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.rate_mbps = float(self.params.get("rate_mbps", 10_000.0))
        self.burst_bytes = int(self.params.get("burst_bytes", 512 * 1024))
        self._tokens = float(self.burst_bytes)
        self._last_us = 0.0
        self.conforming = 0
        self.exceeded = 0

    def process(self, packet: Packet):
        now = packet.metadata.timestamp_us
        if now > self._last_us:
            refill = (now - self._last_us) * self.rate_mbps / 8.0
            self._tokens = min(self.burst_bytes, self._tokens + refill)
            self._last_us = now
        size = len(packet)
        if self._tokens >= size:
            self._tokens -= size
            self.conforming += 1
            packet.metadata.processed_by.append(self.name)
            return [(0, packet)]
        self.exceeded += 1
        packet.metadata.drop_flag = True
        return []


class DedupModule(Module):
    """Network redundancy elimination (EndRE-style, Table 3).

    Payloads are split into fixed-size chunks; chunk fingerprints are
    cached, and previously-seen chunks are replaced by a short token, so
    the NF's egress byte-rate is below its ingress rate on redundant
    traffic (§5.2 "data-dependent NFs"). The fingerprint store is the
    per-flow state that makes Dedup stateful.
    """

    nf_class = "Dedup"
    # NOT vector_safe (inherits False): per-packet state evolution.

    CHUNK = 64
    TOKEN_MAGIC = b"\xde\xd0"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.max_entries = int(self.params.get("entries", 65536))
        self._store: Dict[bytes, int] = {}
        self._next_token = 0
        self.hits = 0
        self.misses = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def process(self, packet: Packet):
        payload = packet.payload
        self.bytes_in += len(payload)
        if len(payload) >= self.CHUNK:
            out = bytearray()
            for offset in range(0, len(payload) - self.CHUNK + 1, self.CHUNK):
                chunk = bytes(payload[offset:offset + self.CHUNK])
                digest = hashlib.blake2b(chunk, digest_size=8).digest()
                token = self._store.get(digest)
                if token is not None:
                    self.hits += 1
                    out += self.TOKEN_MAGIC + token.to_bytes(4, "big")
                else:
                    self.misses += 1
                    if len(self._store) < self.max_entries:
                        self._store[digest] = self._next_token
                        self._next_token += 1
                    out += chunk
            tail_start = (len(payload) // self.CHUNK) * self.CHUNK
            out += payload[tail_start:]
            packet.payload = bytes(out)
        self.bytes_out += len(packet.payload)
        packet.metadata.processed_by.append(self.name)
        return [(0, packet)]

    @property
    def compression_ratio(self) -> float:
        """bytes_out / bytes_in (1.0 = no redundancy eliminated)."""
        if self.bytes_in == 0:
            return 1.0
        return self.bytes_out / self.bytes_in

    def account(self, packet: Packet, scale: float = 1.0) -> None:
        """Dedup's cycle cost is content-dependent (§5.2): cache hits are
        cheaper than misses (no store insertion). We scale the profiled
        cost down slightly for mostly-duplicate packets."""
        total = self.hits + self.misses
        hit_ratio = self.hits / total if total else 0.0
        super().account(packet, scale=scale * (1.0 - 0.25 * hit_ratio))
